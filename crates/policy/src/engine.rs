//! The UCON-style decision engine.
//!
//! [`PolicyEngine::evaluate`] implements both *pre-authorization* (before an
//! access) and *ongoing authorization* (re-evaluated whenever time passes,
//! the policy changes, or another access happens) — the distinguishing
//! feature of usage control over access control. Deny decisions carry
//! machine-readable [`DenyReason`]s so the TEE can map them to enforcement
//! actions (e.g. `RetentionExceeded` → delete the copy).

use duc_sim::SimTime;

use crate::model::{Action, Constraint, Effect, Purpose, Rule, UsagePolicy};
use crate::taxonomy::PurposeTaxonomy;

/// The facts about one (attempted or ongoing) use of a resource copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageContext {
    /// WebID of the consumer.
    pub consumer: String,
    /// The action being performed.
    pub action: Action,
    /// The declared purpose.
    pub purpose: Purpose,
    /// Current instant.
    pub now: SimTime,
    /// When the copy was acquired.
    pub acquired_at: SimTime,
    /// Accesses performed so far (including this one).
    pub access_count: u64,
}

/// Why a request was denied.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DenyReason {
    /// No permit rule covers the action.
    NoMatchingPermit(Action),
    /// A prohibition explicitly forbids the action.
    Prohibited(Action),
    /// The copy has been held longer than the retention limit.
    RetentionExceeded,
    /// The absolute expiry instant has passed.
    Expired,
    /// The declared purpose is not among the allowed ones.
    PurposeNotAllowed(Purpose),
    /// The access count limit is exhausted.
    AccessCountExhausted {
        /// Permitted maximum.
        limit: u64,
    },
    /// The consumer is not an allowed recipient.
    RecipientNotAllowed(String),
    /// Outside the permitted time window.
    OutsideTimeWindow,
}

impl std::fmt::Display for DenyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenyReason::NoMatchingPermit(a) => write!(f, "no permit rule covers action {a}"),
            DenyReason::Prohibited(a) => write!(f, "action {a} is prohibited"),
            DenyReason::RetentionExceeded => f.write_str("retention limit exceeded"),
            DenyReason::Expired => f.write_str("policy expiry passed"),
            DenyReason::PurposeNotAllowed(p) => write!(f, "purpose {p} not allowed"),
            DenyReason::AccessCountExhausted { limit } => {
                write!(f, "access count limit {limit} exhausted")
            }
            DenyReason::RecipientNotAllowed(who) => write!(f, "recipient {who} not allowed"),
            DenyReason::OutsideTimeWindow => f.write_str("outside permitted time window"),
        }
    }
}

/// The outcome of an evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The use is allowed.
    Permit,
    /// The use is denied for the listed reasons (non-empty).
    Deny(Vec<DenyReason>),
}

impl Decision {
    /// Whether this is a permit.
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::Permit)
    }

    /// The deny reasons (empty for permits).
    pub fn reasons(&self) -> &[DenyReason] {
        match self {
            Decision::Permit => &[],
            Decision::Deny(rs) => rs,
        }
    }
}

/// Evaluates usage contexts against policies under a purpose taxonomy.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    taxonomy: PurposeTaxonomy,
}

impl Default for PolicyEngine {
    /// An engine with the [`PurposeTaxonomy::standard`] hierarchy.
    fn default() -> Self {
        PolicyEngine {
            taxonomy: PurposeTaxonomy::standard(),
        }
    }
}

impl PolicyEngine {
    /// An engine with a custom taxonomy.
    pub fn with_taxonomy(taxonomy: PurposeTaxonomy) -> Self {
        PolicyEngine { taxonomy }
    }

    /// The taxonomy in use.
    pub fn taxonomy(&self) -> &PurposeTaxonomy {
        &self.taxonomy
    }

    /// Evaluates `ctx` against `policy`.
    ///
    /// Semantics (deny-overrides, in UCON terms pre+ongoing authorization):
    /// 1. any prohibition covering the action denies;
    /// 2. otherwise some permit rule must cover the action *and* have all
    ///    its constraints satisfied;
    /// 3. if no rule matches at all, the default is deny.
    pub fn evaluate(&self, policy: &UsagePolicy, ctx: &UsageContext) -> Decision {
        let mut reasons = Vec::new();
        for rule in &policy.rules {
            if rule.effect == Effect::Prohibit && rule.covers(ctx.action) {
                return Decision::Deny(vec![DenyReason::Prohibited(ctx.action)]);
            }
        }
        let mut any_permit_covers = false;
        for rule in &policy.rules {
            if rule.effect != Effect::Permit || !rule.covers(ctx.action) {
                continue;
            }
            any_permit_covers = true;
            match self.check_constraints(rule, ctx) {
                Ok(()) => return Decision::Permit,
                Err(mut rs) => reasons.append(&mut rs),
            }
        }
        if !any_permit_covers {
            reasons.push(DenyReason::NoMatchingPermit(ctx.action));
        }
        reasons.dedup();
        Decision::Deny(reasons)
    }

    fn check_constraints(&self, rule: &Rule, ctx: &UsageContext) -> Result<(), Vec<DenyReason>> {
        let mut reasons = Vec::new();
        for c in &rule.constraints {
            match c {
                Constraint::MaxRetention(limit) => {
                    if ctx.now.saturating_since(ctx.acquired_at) > *limit {
                        reasons.push(DenyReason::RetentionExceeded);
                    }
                }
                Constraint::ExpiresAt(at) => {
                    if ctx.now >= *at {
                        reasons.push(DenyReason::Expired);
                    }
                }
                Constraint::Purpose(allowed) => {
                    if !self.taxonomy.satisfies_any(&ctx.purpose, allowed) {
                        reasons.push(DenyReason::PurposeNotAllowed(ctx.purpose.clone()));
                    }
                }
                Constraint::MaxAccessCount(limit) => {
                    if ctx.access_count > *limit {
                        reasons.push(DenyReason::AccessCountExhausted { limit: *limit });
                    }
                }
                Constraint::AllowedRecipients(agents) => {
                    if !agents.contains(&ctx.consumer) {
                        reasons.push(DenyReason::RecipientNotAllowed(ctx.consumer.clone()));
                    }
                }
                Constraint::TimeWindow {
                    not_before,
                    not_after,
                } => {
                    if ctx.now < *not_before || ctx.now >= *not_after {
                        reasons.push(DenyReason::OutsideTimeWindow);
                    }
                }
            }
        }
        if reasons.is_empty() {
            Ok(())
        } else {
            Err(reasons)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Duty;
    use duc_sim::SimDuration;

    fn ctx() -> UsageContext {
        UsageContext {
            consumer: "urn:alice".into(),
            action: Action::Read,
            purpose: Purpose::new("medical-research"),
            now: SimTime::from_secs(1000),
            acquired_at: SimTime::from_secs(500),
            access_count: 1,
        }
    }

    fn engine() -> PolicyEngine {
        PolicyEngine::default()
    }

    fn policy_with(rule: Rule) -> UsagePolicy {
        UsagePolicy::builder("p", "urn:r", "urn:owner")
            .permit(rule)
            .build()
    }

    #[test]
    fn empty_policy_denies_by_default() {
        let p = UsagePolicy::builder("p", "urn:r", "urn:o").build();
        let d = engine().evaluate(&p, &ctx());
        assert!(!d.is_permit());
        assert_eq!(d.reasons(), &[DenyReason::NoMatchingPermit(Action::Read)]);
    }

    #[test]
    fn unconstrained_permit_permits() {
        let p = policy_with(Rule::permit([Action::Use]));
        assert!(engine().evaluate(&p, &ctx()).is_permit());
    }

    #[test]
    fn prohibition_overrides_permit() {
        let p = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(Rule::permit([Action::Use, Action::Distribute]))
            .rule(Rule::prohibit([Action::Distribute]))
            .build();
        let mut c = ctx();
        c.action = Action::Distribute;
        let d = engine().evaluate(&p, &c);
        assert_eq!(d.reasons(), &[DenyReason::Prohibited(Action::Distribute)]);
        // Other actions are unaffected.
        assert!(engine().evaluate(&p, &ctx()).is_permit());
    }

    #[test]
    fn retention_constraint_enforced() {
        let p = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_secs(100))),
        );
        let mut c = ctx();
        c.acquired_at = SimTime::from_secs(500);
        c.now = SimTime::from_secs(599);
        assert!(engine().evaluate(&p, &c).is_permit(), "within window");
        c.now = SimTime::from_secs(601);
        assert_eq!(
            engine().evaluate(&p, &c).reasons(),
            &[DenyReason::RetentionExceeded]
        );
    }

    #[test]
    fn expiry_constraint_enforced() {
        let p = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(700))),
        );
        let mut c = ctx();
        c.now = SimTime::from_secs(699);
        assert!(engine().evaluate(&p, &c).is_permit());
        c.now = SimTime::from_secs(700);
        assert_eq!(engine().evaluate(&p, &c).reasons(), &[DenyReason::Expired]);
    }

    #[test]
    fn purpose_constraint_uses_taxonomy() {
        let p = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")])),
        );
        assert!(
            engine().evaluate(&p, &ctx()).is_permit(),
            "medical-research < medical"
        );
        let mut c = ctx();
        c.purpose = Purpose::new("marketing");
        match &engine().evaluate(&p, &c).reasons()[0] {
            DenyReason::PurposeNotAllowed(pp) => assert_eq!(pp.as_str(), "marketing"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn access_count_constraint() {
        let p =
            policy_with(Rule::permit([Action::Use]).with_constraint(Constraint::MaxAccessCount(3)));
        let mut c = ctx();
        c.access_count = 3;
        assert!(engine().evaluate(&p, &c).is_permit(), "at limit is fine");
        c.access_count = 4;
        assert_eq!(
            engine().evaluate(&p, &c).reasons(),
            &[DenyReason::AccessCountExhausted { limit: 3 }]
        );
    }

    #[test]
    fn recipient_constraint() {
        let p = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::AllowedRecipients(vec!["urn:bob".into()])),
        );
        let d = engine().evaluate(&p, &ctx());
        assert_eq!(
            d.reasons(),
            &[DenyReason::RecipientNotAllowed("urn:alice".into())]
        );
    }

    #[test]
    fn time_window_constraint() {
        let p = policy_with(
            Rule::permit([Action::Use]).with_constraint(Constraint::TimeWindow {
                not_before: SimTime::from_secs(900),
                not_after: SimTime::from_secs(1100),
            }),
        );
        assert!(engine().evaluate(&p, &ctx()).is_permit());
        let mut c = ctx();
        c.now = SimTime::from_secs(1100);
        assert_eq!(
            engine().evaluate(&p, &c).reasons(),
            &[DenyReason::OutsideTimeWindow]
        );
        c.now = SimTime::from_secs(899);
        assert_eq!(
            engine().evaluate(&p, &c).reasons(),
            &[DenyReason::OutsideTimeWindow]
        );
    }

    #[test]
    fn time_window_edges_are_half_open() {
        // The window is `[not_before, not_after)`: the start instant is
        // included, the end instant excluded — checked to the nanosecond.
        let not_before = SimTime::from_secs(900);
        let not_after = SimTime::from_secs(1100);
        let p = policy_with(
            Rule::permit([Action::Use]).with_constraint(Constraint::TimeWindow {
                not_before,
                not_after,
            }),
        );
        let e = engine();
        let at = |now: SimTime| {
            let mut c = ctx();
            c.now = now;
            e.evaluate(&p, &c)
        };
        // One nanosecond before the window opens: denied.
        assert_eq!(
            at(SimTime::from_nanos(not_before.as_nanos() - 1)).reasons(),
            &[DenyReason::OutsideTimeWindow]
        );
        // Exactly at the opening instant: permitted (inclusive).
        assert!(at(not_before).is_permit());
        // One nanosecond before the window closes: still permitted.
        assert!(at(SimTime::from_nanos(not_after.as_nanos() - 1)).is_permit());
        // Exactly at the closing instant: denied (exclusive).
        assert_eq!(at(not_after).reasons(), &[DenyReason::OutsideTimeWindow]);
    }

    #[test]
    fn retention_and_expiry_edges_to_the_nanosecond() {
        // Retention is inclusive at the bound (`elapsed > limit` denies);
        // expiry is exclusive at the instant (`now >= at` denies).
        let p = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_secs(100)))
                .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(700))),
        );
        let e = engine();
        let mut c = ctx();
        c.acquired_at = SimTime::from_secs(500);
        c.now = SimTime::from_secs(600); // exactly at the retention bound
        assert!(e.evaluate(&p, &c).is_permit());
        c.now = SimTime::from_nanos(SimTime::from_secs(600).as_nanos() + 1);
        assert_eq!(
            e.evaluate(&p, &c).reasons(),
            &[DenyReason::RetentionExceeded]
        );
        c.acquired_at = SimTime::from_secs(650);
        c.now = SimTime::from_nanos(SimTime::from_secs(700).as_nanos() - 1);
        assert!(e.evaluate(&p, &c).is_permit());
        c.now = SimTime::from_secs(700);
        assert_eq!(e.evaluate(&p, &c).reasons(), &[DenyReason::Expired]);
    }

    #[test]
    fn alternative_permit_rules_are_tried() {
        // Rule 1 requires purpose marketing; rule 2 allows research reads.
        let p = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("marketing")])),
            )
            .permit(
                Rule::permit([Action::Read])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("research")])),
            )
            .build();
        assert!(
            engine().evaluate(&p, &ctx()).is_permit(),
            "second rule matches"
        );
    }

    #[test]
    fn multiple_violated_constraints_all_reported() {
        let p = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxAccessCount(0))
                .with_constraint(Constraint::Purpose(vec![Purpose::new("marketing")])),
        );
        let d = engine().evaluate(&p, &ctx());
        assert_eq!(d.reasons().len(), 2);
    }

    #[test]
    fn ongoing_reevaluation_flips_after_policy_change() {
        // The paper's scenario: Alice shortens retention from 30d to 7d;
        // Bob's 10-day-old copy becomes non-compliant immediately.
        let original = policy_with(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(30))),
        );
        let mut c = ctx();
        c.acquired_at = SimTime::from_secs(0);
        c.now = SimTime::ZERO + SimDuration::from_days(10);
        assert!(engine().evaluate(&original, &c).is_permit());
        let amended = original.amended(
            vec![Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
            vec![Duty::DeleteWithin(SimDuration::from_days(7))],
        );
        assert_eq!(
            engine().evaluate(&amended, &c).reasons(),
            &[DenyReason::RetentionExceeded]
        );
    }

    #[test]
    fn deny_reason_display() {
        assert!(DenyReason::RetentionExceeded
            .to_string()
            .contains("retention"));
        assert!(DenyReason::AccessCountExhausted { limit: 2 }
            .to_string()
            .contains('2'));
    }
}
