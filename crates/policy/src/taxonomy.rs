//! Purpose hierarchy.
//!
//! The motivating scenario changes Bob's allowed purpose from "medical" to
//! "academic pursuits" and expects Alice — using a medical-research
//! application *for a university hospital* — to keep her grant. That only
//! works if purposes are hierarchical: `medical-research` is both medical
//! and academic. [`PurposeTaxonomy`] is a DAG of purpose → parents edges
//! with a `satisfies` relation (reachability).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::model::Purpose;

/// A purpose DAG with `is-a` edges toward broader purposes.
#[derive(Debug, Clone, Default)]
pub struct PurposeTaxonomy {
    parents: HashMap<Purpose, Vec<Purpose>>,
}

impl PurposeTaxonomy {
    /// An empty taxonomy (only exact matches and `any` satisfy).
    pub fn empty() -> Self {
        PurposeTaxonomy::default()
    }

    /// The default taxonomy used across the workspace:
    ///
    /// ```text
    ///                      any
    ///          ┌────────────┼────────────┐
    ///      research     commercial    personal
    ///     ┌────┴─────────┐    │
    /// medical-res.  academic-res. marketing
    ///     └──── university-hospital-research (both medical & academic)
    /// ```
    pub fn standard() -> Self {
        let mut t = PurposeTaxonomy::empty();
        t.add("research", &["any"]);
        t.add("commercial", &["any"]);
        t.add("personal", &["any"]);
        t.add("medical", &["research"]);
        t.add("medical-research", &["medical", "research"]);
        t.add("academic-research", &["research", "academic"]);
        t.add("academic", &["any"]);
        t.add("marketing", &["commercial"]);
        t.add("web-analytics", &["commercial", "research"]);
        t.add(
            "university-hospital-research",
            &["medical-research", "academic-research"],
        );
        t
    }

    /// Declares `child` to be a kind of each parent.
    pub fn add(&mut self, child: &str, parents: &[&str]) {
        self.parents
            .entry(Purpose::new(child))
            .or_default()
            .extend(parents.iter().map(|p| Purpose::new(*p)));
    }

    /// Whether a request declaring `declared` satisfies a policy allowing
    /// `allowed`: true when equal, when `allowed` is `any`, or when
    /// `allowed` is reachable from `declared` by `is-a` edges.
    pub fn satisfies(&self, declared: &Purpose, allowed: &Purpose) -> bool {
        if declared == allowed || allowed == &Purpose::any() {
            return true;
        }
        // BFS up the DAG from `declared`.
        let mut seen: HashSet<&Purpose> = HashSet::new();
        let mut queue: VecDeque<&Purpose> = VecDeque::new();
        queue.push_back(declared);
        while let Some(current) = queue.pop_front() {
            if !seen.insert(current) {
                continue;
            }
            if let Some(parents) = self.parents.get(current) {
                for parent in parents {
                    if parent == allowed {
                        return true;
                    }
                    queue.push_back(parent);
                }
            }
        }
        false
    }

    /// Whether `declared` satisfies *any* of the allowed purposes.
    pub fn satisfies_any(&self, declared: &Purpose, allowed: &[Purpose]) -> bool {
        allowed.iter().any(|a| self.satisfies(declared, a))
    }

    /// Every purpose the taxonomy mentions — children and parents — in
    /// deterministic order. Policy compilation iterates this to bake the
    /// reachability closure into a lookup table
    /// ([`crate::compile::PolicyProgram`]).
    pub fn purposes(&self) -> std::collections::BTreeSet<Purpose> {
        let mut all: std::collections::BTreeSet<Purpose> = self.parents.keys().cloned().collect();
        for parents in self.parents.values() {
            all.extend(parents.iter().cloned());
        }
        all
    }

    /// All ancestors of a purpose (not including itself).
    pub fn ancestors(&self, purpose: &Purpose) -> HashSet<Purpose> {
        let mut out = HashSet::new();
        let mut queue: VecDeque<Purpose> = VecDeque::new();
        queue.push_back(purpose.clone());
        while let Some(current) = queue.pop_front() {
            if let Some(parents) = self.parents.get(&current) {
                for parent in parents {
                    if out.insert(parent.clone()) {
                        queue.push_back(parent.clone());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Purpose {
        Purpose::new(s)
    }

    #[test]
    fn exact_match_always_satisfies() {
        let t = PurposeTaxonomy::empty();
        assert!(t.satisfies(&p("x"), &p("x")));
        assert!(!t.satisfies(&p("x"), &p("y")));
    }

    #[test]
    fn any_is_wildcard() {
        let t = PurposeTaxonomy::empty();
        assert!(t.satisfies(&p("whatever"), &Purpose::any()));
    }

    #[test]
    fn child_satisfies_ancestor() {
        let t = PurposeTaxonomy::standard();
        assert!(t.satisfies(&p("medical-research"), &p("medical")));
        assert!(t.satisfies(&p("medical-research"), &p("research")));
        assert!(t.satisfies(&p("medical-research"), &Purpose::any()));
    }

    #[test]
    fn ancestor_does_not_satisfy_child() {
        let t = PurposeTaxonomy::standard();
        assert!(!t.satisfies(&p("research"), &p("medical-research")));
        assert!(!t.satisfies(&p("medical"), &p("medical-research")));
    }

    #[test]
    fn siblings_do_not_satisfy() {
        let t = PurposeTaxonomy::standard();
        assert!(!t.satisfies(&p("marketing"), &p("research")));
        assert!(!t.satisfies(&p("medical-research"), &p("commercial")));
    }

    #[test]
    fn diamond_membership_the_paper_scenario() {
        // Bob switches his policy from medical to academic purposes; Alice's
        // university-hospital research satisfies both.
        let t = PurposeTaxonomy::standard();
        let alice = p("university-hospital-research");
        assert!(t.satisfies(&alice, &p("medical")));
        assert!(t.satisfies(&alice, &p("academic")));
        assert!(t.satisfies(&alice, &p("research")));
        // Plain medical research is NOT academic, so it would lose access.
        assert!(!t.satisfies(&p("medical-research"), &p("academic")));
    }

    #[test]
    fn satisfies_any_over_lists() {
        let t = PurposeTaxonomy::standard();
        assert!(t.satisfies_any(&p("marketing"), &[p("research"), p("commercial")]));
        assert!(!t.satisfies_any(&p("marketing"), &[p("research"), p("personal")]));
        assert!(!t.satisfies_any(&p("marketing"), &[]));
    }

    #[test]
    fn ancestors_are_transitive() {
        let t = PurposeTaxonomy::standard();
        let a = t.ancestors(&p("university-hospital-research"));
        for expected in [
            "medical-research",
            "academic-research",
            "medical",
            "academic",
            "research",
            "any",
        ] {
            assert!(a.contains(&p(expected)), "missing ancestor {expected}");
        }
        assert!(
            !a.contains(&p("university-hospital-research")),
            "not its own ancestor"
        );
    }

    #[test]
    fn cycles_terminate() {
        let mut t = PurposeTaxonomy::empty();
        t.add("a", &["b"]);
        t.add("b", &["a"]);
        assert!(!t.satisfies(&p("a"), &p("c")));
        assert!(t.satisfies(&p("a"), &p("b")));
    }
}
