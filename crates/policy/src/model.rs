//! The usage-policy data model.
//!
//! A [`UsagePolicy`] governs one resource. It contains [`Rule`]s —
//! permissions or prohibitions over [`Action`]s, each qualified by
//! [`Constraint`]s — plus policy-level [`Duty`]s (UCON *obligations*) that a
//! compliant consumer device must discharge (e.g. delete the copy after the
//! retention window).

use std::fmt;

use duc_codec::{Decode, DecodeError, Encode, Reader};
use duc_sim::{SimDuration, SimTime};

/// An action a consumer may perform on a resource copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// Any use at all (the ODRL umbrella action).
    Use,
    /// Read / display the content.
    Read,
    /// Derive or modify local copies.
    Modify,
    /// Delete the local copy.
    Delete,
    /// Share the content onward to third parties.
    Distribute,
}

impl Action {
    /// All actions, for iteration in tests and benches.
    pub const ALL: [Action; 5] = [
        Action::Use,
        Action::Read,
        Action::Modify,
        Action::Delete,
        Action::Distribute,
    ];

    /// Whether `self` subsumes `other` (`Use` covers everything except
    /// `Distribute`, which must always be granted explicitly).
    pub fn subsumes(self, other: Action) -> bool {
        self == other || (self == Action::Use && other != Action::Distribute)
    }

    /// Stable wire tag.
    fn tag(self) -> u8 {
        match self {
            Action::Use => 0,
            Action::Read => 1,
            Action::Modify => 2,
            Action::Delete => 3,
            Action::Distribute => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Action> {
        Some(match tag {
            0 => Action::Use,
            1 => Action::Read,
            2 => Action::Modify,
            3 => Action::Delete,
            4 => Action::Distribute,
            _ => return None,
        })
    }

    /// The DSL keyword for this action.
    pub fn keyword(self) -> &'static str {
        match self {
            Action::Use => "use",
            Action::Read => "read",
            Action::Modify => "modify",
            Action::Delete => "delete",
            Action::Distribute => "distribute",
        }
    }

    /// Parses a DSL keyword.
    pub fn from_keyword(kw: &str) -> Option<Action> {
        Some(match kw {
            "use" => Action::Use,
            "read" => Action::Read,
            "modify" => Action::Modify,
            "delete" => Action::Delete,
            "distribute" => Action::Distribute,
            _ => return None,
        })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl Encode for Action {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
    }
}

impl Decode for Action {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.read_u8()?;
        Action::from_tag(tag).ok_or(DecodeError::InvalidTag {
            tag,
            type_name: "Action",
        })
    }
}

/// A usage purpose (e.g. `medical-research`). Purposes form a hierarchy via
/// [`crate::taxonomy::PurposeTaxonomy`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Purpose(String);

impl Purpose {
    /// Creates a purpose from its identifier.
    pub fn new(id: impl Into<String>) -> Purpose {
        Purpose(id.into())
    }

    /// The wildcard purpose that any request satisfies.
    pub fn any() -> Purpose {
        Purpose::new("any")
    }

    /// The identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Encode for Purpose {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Purpose {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Purpose(String::decode(r)?))
    }
}

/// Permit or prohibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effect {
    /// The rule grants the listed actions (subject to constraints).
    Permit,
    /// The rule forbids the listed actions outright.
    Prohibit,
}

impl Encode for Effect {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(matches!(self, Effect::Prohibit) as u8);
    }
}

impl Decode for Effect {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(Effect::Permit),
            1 => Ok(Effect::Prohibit),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "Effect",
            }),
        }
    }
}

/// A condition limiting when a permit rule applies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// The copy may be kept at most this long after acquisition.
    MaxRetention(SimDuration),
    /// The copy may not be used at or after this absolute instant.
    ExpiresAt(SimTime),
    /// Usage must declare one of these purposes (or a descendant).
    Purpose(Vec<Purpose>),
    /// At most this many accesses in total.
    MaxAccessCount(u64),
    /// Only these WebIDs may exercise the rule.
    AllowedRecipients(Vec<String>),
    /// Usage only within `[not_before, not_after)`.
    TimeWindow {
        /// Earliest permitted instant.
        not_before: SimTime,
        /// First forbidden instant.
        not_after: SimTime,
    },
}

const CONSTRAINT_MAX_RETENTION: u8 = 0;
const CONSTRAINT_EXPIRES_AT: u8 = 1;
const CONSTRAINT_PURPOSE: u8 = 2;
const CONSTRAINT_MAX_ACCESS: u8 = 3;
const CONSTRAINT_RECIPIENTS: u8 = 4;
const CONSTRAINT_TIME_WINDOW: u8 = 5;

impl Encode for Constraint {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Constraint::MaxRetention(d) => {
                buf.push(CONSTRAINT_MAX_RETENTION);
                d.as_nanos().encode(buf);
            }
            Constraint::ExpiresAt(t) => {
                buf.push(CONSTRAINT_EXPIRES_AT);
                t.as_nanos().encode(buf);
            }
            Constraint::Purpose(ps) => {
                buf.push(CONSTRAINT_PURPOSE);
                ps.encode(buf);
            }
            Constraint::MaxAccessCount(n) => {
                buf.push(CONSTRAINT_MAX_ACCESS);
                n.encode(buf);
            }
            Constraint::AllowedRecipients(agents) => {
                buf.push(CONSTRAINT_RECIPIENTS);
                agents.encode(buf);
            }
            Constraint::TimeWindow {
                not_before,
                not_after,
            } => {
                buf.push(CONSTRAINT_TIME_WINDOW);
                not_before.as_nanos().encode(buf);
                not_after.as_nanos().encode(buf);
            }
        }
    }
}

impl Decode for Constraint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.read_u8()?;
        Ok(match tag {
            CONSTRAINT_MAX_RETENTION => {
                Constraint::MaxRetention(SimDuration::from_nanos(u64::decode(r)?))
            }
            CONSTRAINT_EXPIRES_AT => Constraint::ExpiresAt(SimTime::from_nanos(u64::decode(r)?)),
            CONSTRAINT_PURPOSE => Constraint::Purpose(Vec::decode(r)?),
            CONSTRAINT_MAX_ACCESS => Constraint::MaxAccessCount(u64::decode(r)?),
            CONSTRAINT_RECIPIENTS => Constraint::AllowedRecipients(Vec::decode(r)?),
            CONSTRAINT_TIME_WINDOW => Constraint::TimeWindow {
                not_before: SimTime::from_nanos(u64::decode(r)?),
                not_after: SimTime::from_nanos(u64::decode(r)?),
            },
            _ => {
                return Err(DecodeError::InvalidTag {
                    tag,
                    type_name: "Constraint",
                })
            }
        })
    }
}

/// An obligation the consumer's trusted environment must discharge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Duty {
    /// Delete the copy within this duration of acquisition.
    DeleteWithin(SimDuration),
    /// Notify the owner of each access within this duration.
    NotifyOwnerWithin(SimDuration),
    /// Record every access in the local usage log (monitoring evidence).
    LogAccesses,
}

const DUTY_DELETE_WITHIN: u8 = 0;
const DUTY_NOTIFY: u8 = 1;
const DUTY_LOG: u8 = 2;

impl Encode for Duty {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Duty::DeleteWithin(d) => {
                buf.push(DUTY_DELETE_WITHIN);
                d.as_nanos().encode(buf);
            }
            Duty::NotifyOwnerWithin(d) => {
                buf.push(DUTY_NOTIFY);
                d.as_nanos().encode(buf);
            }
            Duty::LogAccesses => buf.push(DUTY_LOG),
        }
    }
}

impl Decode for Duty {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.read_u8()?;
        Ok(match tag {
            DUTY_DELETE_WITHIN => Duty::DeleteWithin(SimDuration::from_nanos(u64::decode(r)?)),
            DUTY_NOTIFY => Duty::NotifyOwnerWithin(SimDuration::from_nanos(u64::decode(r)?)),
            DUTY_LOG => Duty::LogAccesses,
            _ => {
                return Err(DecodeError::InvalidTag {
                    tag,
                    type_name: "Duty",
                })
            }
        })
    }
}

/// One rule: an effect over actions, gated by constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Permit or prohibit.
    pub effect: Effect,
    /// The actions the rule covers.
    pub actions: Vec<Action>,
    /// Conditions limiting a permit (ignored for prohibitions' matching).
    pub constraints: Vec<Constraint>,
}

impl Rule {
    /// A permit rule over the given actions.
    pub fn permit(actions: impl IntoIterator<Item = Action>) -> Rule {
        Rule {
            effect: Effect::Permit,
            actions: actions.into_iter().collect(),
            constraints: Vec::new(),
        }
    }

    /// A prohibition over the given actions.
    pub fn prohibit(actions: impl IntoIterator<Item = Action>) -> Rule {
        Rule {
            effect: Effect::Prohibit,
            actions: actions.into_iter().collect(),
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint (builder style).
    pub fn with_constraint(mut self, c: Constraint) -> Rule {
        self.constraints.push(c);
        self
    }

    /// Whether this rule's action list covers `action`.
    pub fn covers(&self, action: Action) -> bool {
        self.actions.iter().any(|a| a.subsumes(action))
    }
}

impl Encode for Rule {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.effect.encode(buf);
        self.actions.encode(buf);
        self.constraints.encode(buf);
    }
}

impl Decode for Rule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Rule {
            effect: Effect::decode(r)?,
            actions: Vec::decode(r)?,
            constraints: Vec::decode(r)?,
        })
    }
}

/// A usage policy for one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsagePolicy {
    /// Policy identifier (unique per resource version stream).
    pub id: String,
    /// IRI of the governed resource.
    pub resource: String,
    /// WebID of the data owner (the only agent allowed to modify it).
    pub owner: String,
    /// Monotonically increasing version, bumped on every modification.
    pub version: u64,
    /// The rules.
    pub rules: Vec<Rule>,
    /// Policy-level obligations.
    pub duties: Vec<Duty>,
}

impl UsagePolicy {
    /// Starts building a policy (version 1, no rules).
    pub fn builder(
        id: impl Into<String>,
        resource: impl Into<String>,
        owner: impl Into<String>,
    ) -> UsagePolicyBuilder {
        UsagePolicyBuilder {
            policy: UsagePolicy {
                id: id.into(),
                resource: resource.into(),
                owner: owner.into(),
                version: 1,
                rules: Vec::new(),
                duties: Vec::new(),
            },
        }
    }

    /// A permissive default policy: permit `Use` to any authenticated agent,
    /// log accesses. This is the policy a pod manager attaches at pod
    /// initiation (paper process 1).
    pub fn default_for(resource: impl Into<String>, owner: impl Into<String>) -> UsagePolicy {
        let resource = resource.into();
        UsagePolicy::builder(format!("{resource}#default-policy"), resource, owner)
            .permit(Rule::permit([Action::Use]))
            .duty(Duty::LogAccesses)
            .build()
    }

    /// Returns a copy with `rules`/`duties` replaced and the version bumped —
    /// the policy-modification process (paper process 5) uses this.
    pub fn amended(&self, rules: Vec<Rule>, duties: Vec<Duty>) -> UsagePolicy {
        UsagePolicy {
            id: self.id.clone(),
            resource: self.resource.clone(),
            owner: self.owner.clone(),
            version: self.version + 1,
            rules,
            duties,
        }
    }

    /// The effective retention bound, if any: the minimum across
    /// `MaxRetention` constraints and `DeleteWithin` duties.
    pub fn retention_bound(&self) -> Option<SimDuration> {
        let mut bound: Option<SimDuration> = None;
        let mut consider = |d: SimDuration| {
            bound = Some(match bound {
                Some(b) if b <= d => b,
                _ => d,
            });
        };
        for rule in &self.rules {
            for c in &rule.constraints {
                if let Constraint::MaxRetention(d) = c {
                    consider(*d);
                }
            }
        }
        for duty in &self.duties {
            if let Duty::DeleteWithin(d) = duty {
                consider(*d);
            }
        }
        bound
    }

    /// The absolute expiry bound, if any (minimum across `ExpiresAt`).
    pub fn expiry_bound(&self) -> Option<SimTime> {
        self.rules
            .iter()
            .flat_map(|r| &r.constraints)
            .filter_map(|c| match c {
                Constraint::ExpiresAt(t) => Some(*t),
                _ => None,
            })
            .min()
    }
}

impl Encode for UsagePolicy {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.resource.encode(buf);
        self.owner.encode(buf);
        self.version.encode(buf);
        self.rules.encode(buf);
        self.duties.encode(buf);
    }
}

impl Decode for UsagePolicy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(UsagePolicy {
            id: String::decode(r)?,
            resource: String::decode(r)?,
            owner: String::decode(r)?,
            version: u64::decode(r)?,
            rules: Vec::decode(r)?,
            duties: Vec::decode(r)?,
        })
    }
}

/// Builder for [`UsagePolicy`].
#[derive(Debug, Clone)]
pub struct UsagePolicyBuilder {
    policy: UsagePolicy,
}

impl UsagePolicyBuilder {
    /// Adds a rule (any effect).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.policy.rules.push(rule);
        self
    }

    /// Adds a permit rule (alias of [`UsagePolicyBuilder::rule`] that reads
    /// better at call sites).
    pub fn permit(self, rule: Rule) -> Self {
        self.rule(rule)
    }

    /// Adds a policy-level duty.
    pub fn duty(mut self, duty: Duty) -> Self {
        self.policy.duties.push(duty);
        self
    }

    /// Sets an explicit version (default 1).
    pub fn version(mut self, version: u64) -> Self {
        self.policy.version = version;
        self
    }

    /// Finishes the policy.
    pub fn build(self) -> UsagePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};

    fn sample_policy() -> UsagePolicy {
        UsagePolicy::builder("p1", "urn:res", "urn:owner")
            .permit(
                Rule::permit([Action::Use, Action::Read])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("research")]))
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))
                    .with_constraint(Constraint::MaxAccessCount(10))
                    .with_constraint(Constraint::AllowedRecipients(vec!["urn:alice".into()]))
                    .with_constraint(Constraint::TimeWindow {
                        not_before: SimTime::from_secs(0),
                        not_after: SimTime::from_secs(1_000_000),
                    })
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(500_000))),
            )
            .rule(Rule::prohibit([Action::Distribute]))
            .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
            .duty(Duty::NotifyOwnerWithin(SimDuration::from_hours(1)))
            .duty(Duty::LogAccesses)
            .build()
    }

    #[test]
    fn action_subsumption() {
        assert!(Action::Use.subsumes(Action::Read));
        assert!(Action::Use.subsumes(Action::Modify));
        assert!(
            !Action::Use.subsumes(Action::Distribute),
            "distribute needs explicit grant"
        );
        assert!(Action::Read.subsumes(Action::Read));
        assert!(!Action::Read.subsumes(Action::Modify));
    }

    #[test]
    fn action_keywords_roundtrip() {
        for a in Action::ALL {
            assert_eq!(Action::from_keyword(a.keyword()), Some(a));
        }
        assert_eq!(Action::from_keyword("nonsense"), None);
    }

    #[test]
    fn rule_covers_respects_subsumption() {
        let rule = Rule::permit([Action::Use]);
        assert!(rule.covers(Action::Read));
        assert!(!rule.covers(Action::Distribute));
        let dist = Rule::permit([Action::Distribute]);
        assert!(dist.covers(Action::Distribute));
    }

    #[test]
    fn policy_codec_roundtrip() {
        let p = sample_policy();
        let bytes = encode_to_vec(&p);
        let back: UsagePolicy = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, p);
    }

    #[test]
    fn corrupt_constraint_tag_rejected() {
        let mut bytes = encode_to_vec(&Constraint::MaxAccessCount(5));
        bytes[0] = 99;
        assert!(decode_from_slice::<Constraint>(&bytes).is_err());
    }

    #[test]
    fn amended_bumps_version_and_keeps_identity() {
        let p = sample_policy();
        let p2 = p.amended(vec![Rule::permit([Action::Read])], vec![]);
        assert_eq!(p2.version, p.version + 1);
        assert_eq!(p2.id, p.id);
        assert_eq!(p2.resource, p.resource);
        assert_eq!(p2.rules.len(), 1);
    }

    #[test]
    fn retention_bound_is_minimum() {
        let p = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(30))),
            )
            .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
            .build();
        assert_eq!(p.retention_bound(), Some(SimDuration::from_days(7)));
        let no_bound = UsagePolicy::builder("p", "urn:r", "urn:o").build();
        assert_eq!(no_bound.retention_bound(), None);
    }

    #[test]
    fn expiry_bound_is_minimum() {
        let p = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(100)))
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(50))),
            )
            .build();
        assert_eq!(p.expiry_bound(), Some(SimTime::from_secs(50)));
    }

    #[test]
    fn default_policy_shape() {
        let p = UsagePolicy::default_for("urn:res", "urn:owner");
        assert_eq!(p.version, 1);
        assert_eq!(p.rules.len(), 1);
        assert!(matches!(p.rules[0].effect, Effect::Permit));
        assert!(p.duties.contains(&Duty::LogAccesses));
        assert!(p.id.contains("urn:res"));
    }

    #[test]
    fn purpose_display_and_any() {
        assert_eq!(Purpose::new("x").to_string(), "x");
        assert_eq!(Purpose::any().as_str(), "any");
    }
}
