//! Retrospective compliance auditing.
//!
//! The DE App's monitoring process (paper process 6) collects usage evidence
//! from every device holding a copy; this module is the auditor that turns a
//! copy's state + usage log into a [`ComplianceReport`] of [`Violation`]s.
//! It is deliberately separate from the online [`crate::engine`]: the engine
//! answers "may this happen now?", the auditor answers "did anything happen
//! that should not have?".

use duc_sim::SimTime;

use crate::engine::{PolicyEngine, UsageContext};
use crate::model::{Action, Duty, Purpose, UsagePolicy};

/// One recorded access in a copy's usage log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// When the access happened.
    pub at: SimTime,
    /// The action performed.
    pub action: Action,
    /// The declared purpose.
    pub purpose: Purpose,
    /// WebID of the acting agent.
    pub agent: String,
}

/// The auditable state of one resource copy on one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyState {
    /// IRI of the resource.
    pub resource: String,
    /// WebID of the device owner (the consumer).
    pub holder: String,
    /// When the copy was acquired.
    pub acquired_at: SimTime,
    /// When it was deleted, if it was.
    pub deleted_at: Option<SimTime>,
    /// Every access performed through the trusted application.
    pub log: Vec<AccessRecord>,
}

impl CopyState {
    /// A fresh copy acquired at `acquired_at` by `holder`.
    pub fn new(
        resource: impl Into<String>,
        holder: impl Into<String>,
        acquired_at: SimTime,
    ) -> Self {
        CopyState {
            resource: resource.into(),
            holder: holder.into(),
            acquired_at,
            deleted_at: None,
            log: Vec::new(),
        }
    }

    /// Whether the copy still exists at `now`.
    pub fn alive_at(&self, now: SimTime) -> bool {
        self.deleted_at.is_none_or(|d| d > now)
    }
}

/// A kind of detected violation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The copy outlived its retention bound.
    RetentionViolated {
        /// When deletion was due.
        due_at: SimTime,
    },
    /// An access was performed that the policy denies.
    UnauthorizedAccess {
        /// The offending action.
        action: Action,
        /// The declared purpose.
        purpose: Purpose,
    },
    /// The copy was used after the absolute expiry.
    UsedAfterExpiry,
    /// The policy requires access logging but the log is missing entries
    /// (detected when the holder reports more accesses than it logged).
    IncompleteLog,
}

/// One violation with its evidence instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Classification.
    pub kind: ViolationKind,
    /// The instant the violation occurred (or was first detectable).
    pub at: SimTime,
}

/// The outcome of auditing one copy against one policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComplianceReport {
    /// Detected violations, in chronological order.
    pub violations: Vec<Violation>,
}

impl ComplianceReport {
    /// Whether no violations were found.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits a copy's full history against `policy`, as of `now`.
///
/// The audit checks:
/// * every logged access replayed through the [`PolicyEngine`];
/// * the retention bound ([`UsagePolicy::retention_bound`]) against the
///   deletion timestamp;
/// * the absolute expiry against the last access.
pub fn audit(
    policy: &UsagePolicy,
    copy: &CopyState,
    now: SimTime,
    engine: &PolicyEngine,
) -> ComplianceReport {
    audit_with_due(policy, copy, now, engine, None)
}

/// Like [`audit`], but with an explicit retention deadline override.
///
/// When a policy is *tightened after acquisition* (paper process 5), the
/// copy cannot be expected to have been deleted before the holder learned
/// of the change: the effective deadline is
/// `max(acquired_at + bound, policy_received_at)`. The trusted application
/// passes that effective deadline here.
pub fn audit_with_due(
    policy: &UsagePolicy,
    copy: &CopyState,
    now: SimTime,
    engine: &PolicyEngine,
    retention_due_override: Option<SimTime>,
) -> ComplianceReport {
    let mut violations = Vec::new();

    // Replay each access through the decision engine.
    for (i, record) in copy.log.iter().enumerate() {
        let ctx = UsageContext {
            consumer: record.agent.clone(),
            action: record.action,
            purpose: record.purpose.clone(),
            now: record.at,
            acquired_at: copy.acquired_at,
            access_count: (i + 1) as u64,
        };
        let decision = engine.evaluate(policy, &ctx);
        if !decision.is_permit() {
            violations.push(Violation {
                kind: ViolationKind::UnauthorizedAccess {
                    action: record.action,
                    purpose: record.purpose.clone(),
                },
                at: record.at,
            });
        }
    }

    // Retention: the copy must be gone by acquired_at + bound (or the
    // caller-supplied effective deadline, whichever is later).
    if let Some(bound) = policy.retention_bound() {
        let mut due_at = copy.acquired_at + bound;
        if let Some(override_due) = retention_due_override {
            due_at = due_at.max(override_due);
        }
        let violated = match copy.deleted_at {
            Some(deleted) => deleted > due_at,
            None => now > due_at,
        };
        if violated {
            violations.push(Violation {
                kind: ViolationKind::RetentionViolated { due_at },
                at: due_at,
            });
        }
    }

    // Absolute expiry: no access at/after the expiry instant.
    if let Some(expiry) = policy.expiry_bound() {
        if let Some(record) = copy.log.iter().find(|r| r.at >= expiry) {
            violations.push(Violation {
                kind: ViolationKind::UsedAfterExpiry,
                at: record.at,
            });
        }
    }

    violations.sort_by_key(|v| v.at);
    ComplianceReport { violations }
}

/// Checks a claimed access count against the log when the policy demands
/// logging ([`Duty::LogAccesses`]); returns an [`ViolationKind::IncompleteLog`]
/// violation when entries are missing.
pub fn audit_log_completeness(
    policy: &UsagePolicy,
    copy: &CopyState,
    claimed_accesses: u64,
    now: SimTime,
) -> Option<Violation> {
    let must_log = policy.duties.iter().any(|d| matches!(d, Duty::LogAccesses));
    if must_log && (copy.log.len() as u64) < claimed_accesses {
        Some(Violation {
            kind: ViolationKind::IncompleteLog,
            at: now,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, Rule};
    use duc_sim::SimDuration;

    fn engine() -> PolicyEngine {
        PolicyEngine::default()
    }

    fn research_policy() -> UsagePolicy {
        UsagePolicy::builder("p", "urn:res", "urn:owner")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("research")]))
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7))),
            )
            .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
            .duty(Duty::LogAccesses)
            .build()
    }

    fn access(at_secs: u64, purpose: &str) -> AccessRecord {
        AccessRecord {
            at: SimTime::from_secs(at_secs),
            action: Action::Read,
            purpose: Purpose::new(purpose),
            agent: "urn:alice".into(),
        }
    }

    #[test]
    fn clean_copy_is_compliant() {
        let policy = research_policy();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.log.push(access(100, "medical-research"));
        copy.deleted_at = Some(SimTime::from_secs(3600));
        let report = audit(&policy, &copy, SimTime::from_secs(10_000), &engine());
        assert!(report.is_compliant(), "{:?}", report.violations);
    }

    #[test]
    fn wrong_purpose_access_is_flagged() {
        let policy = research_policy();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.log.push(access(100, "marketing"));
        let report = audit(&policy, &copy, SimTime::from_secs(200), &engine());
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0].kind,
            ViolationKind::UnauthorizedAccess {
                action: Action::Read,
                ..
            }
        ));
    }

    #[test]
    fn overdue_undeleted_copy_is_flagged() {
        let policy = research_policy();
        let copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        let eight_days = SimTime::ZERO + SimDuration::from_days(8);
        let report = audit(&policy, &copy, eight_days, &engine());
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0].kind {
            ViolationKind::RetentionViolated { due_at } => {
                assert_eq!(*due_at, SimTime::ZERO + SimDuration::from_days(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn late_deletion_is_flagged_even_after_the_fact() {
        let policy = research_policy();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.deleted_at = Some(SimTime::ZERO + SimDuration::from_days(9));
        let report = audit(
            &policy,
            &copy,
            SimTime::ZERO + SimDuration::from_days(30),
            &engine(),
        );
        assert!(!report.is_compliant());
    }

    #[test]
    fn timely_deletion_is_compliant() {
        let policy = research_policy();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.deleted_at = Some(SimTime::ZERO + SimDuration::from_days(6));
        let report = audit(
            &policy,
            &copy,
            SimTime::ZERO + SimDuration::from_days(30),
            &engine(),
        );
        assert!(report.is_compliant());
    }

    #[test]
    fn use_after_expiry_is_flagged() {
        let policy = UsagePolicy::builder("p", "urn:res", "urn:owner")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(100))),
            )
            .build();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.log.push(access(150, "any"));
        let report = audit(&policy, &copy, SimTime::from_secs(200), &engine());
        // Both the replay (denied access) and the expiry check fire.
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UsedAfterExpiry));
        assert!(!report.is_compliant());
    }

    #[test]
    fn violations_sorted_chronologically() {
        let policy = research_policy();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.log.push(access(9 * 86_400, "medical-research")); // after retention
        copy.log.push(access(50, "marketing")); // bad purpose, earlier
        let report = audit(
            &policy,
            &copy,
            SimTime::ZERO + SimDuration::from_days(10),
            &engine(),
        );
        assert!(report.violations.len() >= 2);
        for pair in report.violations.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn log_completeness_check() {
        let policy = research_policy();
        let mut copy = CopyState::new("urn:res", "urn:alice", SimTime::from_secs(0));
        copy.log.push(access(10, "medical-research"));
        let now = SimTime::from_secs(100);
        assert!(audit_log_completeness(&policy, &copy, 1, now).is_none());
        let v = audit_log_completeness(&policy, &copy, 3, now).expect("missing entries");
        assert_eq!(v.kind, ViolationKind::IncompleteLog);
        // A policy without the logging duty does not care.
        let lax = UsagePolicy::builder("p", "urn:res", "urn:o")
            .permit(Rule::permit([Action::Use]))
            .build();
        assert!(audit_log_completeness(&lax, &copy, 3, now).is_none());
    }

    #[test]
    fn copy_alive_at() {
        let mut copy = CopyState::new("urn:r", "urn:h", SimTime::from_secs(0));
        assert!(copy.alive_at(SimTime::from_secs(1_000_000)));
        copy.deleted_at = Some(SimTime::from_secs(50));
        assert!(copy.alive_at(SimTime::from_secs(49)));
        assert!(!copy.alive_at(SimTime::from_secs(50)));
    }
}
