//! A human-readable policy syntax.
//!
//! Pod owners express usage restrictions in this DSL; pod managers parse it
//! and push the structured policy on-chain. Example:
//!
//! ```text
//! policy "pol-browsing" for "https://alice.pod/data/browsing.csv" owner "https://alice.id/me" {
//!     permit use, read where purpose in [web-analytics] and max-retention 30d;
//!     prohibit distribute;
//!     duty delete-within 30d;
//!     duty log-accesses;
//! }
//! ```
//!
//! Durations accept `ms`, `s`, `m`, `h`, `d` suffixes. Instants (for
//! `expires-at` / `window`) are seconds since the simulation epoch.

use duc_sim::{SimDuration, SimTime};

use crate::model::{Action, Constraint, Duty, Purpose, Rule, UsagePolicy};
use crate::PolicyError;

// -------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Number(u64),
    Duration(SimDuration),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    DotDot,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, PolicyError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                toks.push(Tok::LBrace);
            }
            '}' => {
                chars.next();
                toks.push(Tok::RBrace);
            }
            '[' => {
                chars.next();
                toks.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                toks.push(Tok::RBracket);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            ';' => {
                chars.next();
                toks.push(Tok::Semi);
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    toks.push(Tok::DotDot);
                } else {
                    return Err(PolicyError::Syntax {
                        message: "single '.' (expected '..')".into(),
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(PolicyError::Syntax {
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        Some(c) => s.push(c),
                        None => {
                            return Err(PolicyError::Syntax {
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: u64 = num.parse().map_err(|_| PolicyError::Syntax {
                    message: format!("bad number {num}"),
                })?;
                // Optional unit suffix.
                let mut unit = String::new();
                while let Some(&u) = chars.peek() {
                    if u.is_ascii_alphabetic() {
                        unit.push(u);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match unit.as_str() {
                    "" => toks.push(Tok::Number(value)),
                    "ms" => toks.push(Tok::Duration(SimDuration::from_millis(value))),
                    "s" => toks.push(Tok::Duration(SimDuration::from_secs(value))),
                    "m" => toks.push(Tok::Duration(SimDuration::from_mins(value))),
                    "h" => toks.push(Tok::Duration(SimDuration::from_hours(value))),
                    "d" => toks.push(Tok::Duration(SimDuration::from_days(value))),
                    other => {
                        return Err(PolicyError::Syntax {
                            message: format!("unknown duration unit {other:?}"),
                        })
                    }
                }
            }
            c if c.is_ascii_alphabetic() => {
                let mut ident = String::new();
                while let Some(&i) = chars.peek() {
                    if i.is_ascii_alphanumeric() || i == '-' || i == '_' {
                        ident.push(i);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(ident));
            }
            other => {
                return Err(PolicyError::Syntax {
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

// ----------------------------------------------------------------- parser

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn err(&self, message: impl Into<String>) -> PolicyError {
        PolicyError::Syntax {
            message: format!("{} (at token {})", message.into(), self.pos),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), PolicyError> {
        match self.next() {
            Some(Tok::Ident(id)) if id == kw => Ok(()),
            other => Err(self.err(format!("expected keyword {kw:?}, found {other:?}"))),
        }
    }

    fn expect_str(&mut self) -> Result<String, PolicyError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected string, found {other:?}"))),
        }
    }

    fn expect_duration(&mut self) -> Result<SimDuration, PolicyError> {
        match self.next() {
            Some(Tok::Duration(d)) => Ok(d),
            other => Err(self.err(format!("expected duration, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<u64, PolicyError> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), PolicyError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn parse_actions(&mut self) -> Result<Vec<Action>, PolicyError> {
        let mut actions = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Ident(id)) => {
                    let action = Action::from_keyword(&id)
                        .ok_or_else(|| self.err(format!("unknown action {id:?}")))?;
                    actions.push(action);
                }
                other => return Err(self.err(format!("expected action, found {other:?}"))),
            }
            if self.peek() == Some(&Tok::Comma) {
                self.next();
                continue;
            }
            break;
        }
        Ok(actions)
    }

    fn parse_constraint(&mut self) -> Result<Constraint, PolicyError> {
        let name = match self.next() {
            Some(Tok::Ident(id)) => id,
            other => return Err(self.err(format!("expected constraint, found {other:?}"))),
        };
        match name.as_str() {
            "purpose" => {
                self.expect_ident("in")?;
                self.expect(Tok::LBracket)?;
                let mut purposes = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Ident(id)) => purposes.push(Purpose::new(id)),
                        Some(Tok::RBracket) if purposes.is_empty() => break,
                        other => return Err(self.err(format!("expected purpose, found {other:?}"))),
                    }
                    match self.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBracket) => break,
                        other => return Err(self.err(format!("expected , or ], found {other:?}"))),
                    }
                }
                Ok(Constraint::Purpose(purposes))
            }
            "max-retention" => Ok(Constraint::MaxRetention(self.expect_duration()?)),
            "max-accesses" => Ok(Constraint::MaxAccessCount(self.expect_number()?)),
            "expires-at" => {
                let d = self.expect_duration()?;
                Ok(Constraint::ExpiresAt(SimTime::ZERO + d))
            }
            "recipients" => {
                self.expect(Tok::LBracket)?;
                let mut agents = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Str(s)) => agents.push(s),
                        Some(Tok::RBracket) if agents.is_empty() => break,
                        other => return Err(self.err(format!("expected string, found {other:?}"))),
                    }
                    match self.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBracket) => break,
                        other => return Err(self.err(format!("expected , or ], found {other:?}"))),
                    }
                }
                Ok(Constraint::AllowedRecipients(agents))
            }
            "window" => {
                let from = self.expect_duration()?;
                self.expect(Tok::DotDot)?;
                let to = self.expect_duration()?;
                Ok(Constraint::TimeWindow {
                    not_before: SimTime::ZERO + from,
                    not_after: SimTime::ZERO + to,
                })
            }
            other => Err(self.err(format!("unknown constraint {other:?}"))),
        }
    }

    fn parse_rule(&mut self, permit: bool) -> Result<Rule, PolicyError> {
        let actions = self.parse_actions()?;
        let mut rule = if permit {
            Rule::permit(actions)
        } else {
            Rule::prohibit(actions)
        };
        if self.peek() == Some(&Tok::Ident("where".into())) {
            self.next();
            loop {
                rule = rule.with_constraint(self.parse_constraint()?);
                if self.peek() == Some(&Tok::Ident("and".into())) {
                    self.next();
                    continue;
                }
                break;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(rule)
    }

    fn parse_duty(&mut self) -> Result<Duty, PolicyError> {
        let name = match self.next() {
            Some(Tok::Ident(id)) => id,
            other => return Err(self.err(format!("expected duty, found {other:?}"))),
        };
        let duty = match name.as_str() {
            "delete-within" => Duty::DeleteWithin(self.expect_duration()?),
            "notify-within" => Duty::NotifyOwnerWithin(self.expect_duration()?),
            "log-accesses" => Duty::LogAccesses,
            other => return Err(self.err(format!("unknown duty {other:?}"))),
        };
        self.expect(Tok::Semi)?;
        Ok(duty)
    }
}

/// Parses one policy document.
///
/// # Errors
/// Returns [`PolicyError::Syntax`] describing the first problem found.
pub fn parse(input: &str) -> Result<UsagePolicy, PolicyError> {
    let mut p = P {
        toks: tokenize(input)?,
        pos: 0,
    };
    p.expect_ident("policy")?;
    let id = p.expect_str()?;
    p.expect_ident("for")?;
    let resource = p.expect_str()?;
    p.expect_ident("owner")?;
    let owner = p.expect_str()?;
    let mut builder = UsagePolicy::builder(id, resource, owner);
    if p.peek() == Some(&Tok::Ident("version".into())) {
        p.next();
        builder = builder.version(p.expect_number()?);
    }
    p.expect(Tok::LBrace)?;
    loop {
        match p.next() {
            Some(Tok::RBrace) => break,
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "permit" => builder = builder.rule(p.parse_rule(true)?),
                "prohibit" => builder = builder.rule(p.parse_rule(false)?),
                "duty" => builder = builder.duty(p.parse_duty()?),
                other => return Err(p.err(format!("unexpected keyword {other:?}"))),
            },
            other => return Err(p.err(format!("unexpected token {other:?}"))),
        }
    }
    if p.peek().is_some() {
        return Err(p.err("trailing input after policy"));
    }
    Ok(builder.build())
}

// -------------------------------------------------------------- serializer

fn duration_to_dsl(d: SimDuration) -> String {
    let nanos = d.as_nanos();
    const DAY: u64 = 86_400_000_000_000;
    const HOUR: u64 = 3_600_000_000_000;
    const MIN: u64 = 60_000_000_000;
    const SEC: u64 = 1_000_000_000;
    const MS: u64 = 1_000_000;
    if nanos.is_multiple_of(DAY) {
        format!("{}d", nanos / DAY)
    } else if nanos.is_multiple_of(HOUR) {
        format!("{}h", nanos / HOUR)
    } else if nanos.is_multiple_of(MIN) {
        format!("{}m", nanos / MIN)
    } else if nanos.is_multiple_of(SEC) {
        format!("{}s", nanos / SEC)
    } else {
        format!("{}ms", nanos / MS)
    }
}

fn constraint_to_dsl(c: &Constraint) -> String {
    match c {
        Constraint::MaxRetention(d) => format!("max-retention {}", duration_to_dsl(*d)),
        Constraint::ExpiresAt(t) => format!("expires-at {}", duration_to_dsl(*t - SimTime::ZERO)),
        Constraint::Purpose(ps) => format!(
            "purpose in [{}]",
            ps.iter()
                .map(Purpose::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Constraint::MaxAccessCount(n) => format!("max-accesses {n}"),
        Constraint::AllowedRecipients(agents) => format!(
            "recipients [{}]",
            agents
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Constraint::TimeWindow {
            not_before,
            not_after,
        } => format!(
            "window {}..{}",
            duration_to_dsl(*not_before - SimTime::ZERO),
            duration_to_dsl(*not_after - SimTime::ZERO)
        ),
    }
}

/// Serializes a policy to the DSL (re-parses to an equal policy).
pub fn serialize(policy: &UsagePolicy) -> String {
    let mut out = format!(
        "policy \"{}\" for \"{}\" owner \"{}\" version {} {{\n",
        policy.id, policy.resource, policy.owner, policy.version
    );
    for rule in &policy.rules {
        let kw = match rule.effect {
            crate::model::Effect::Permit => "permit",
            crate::model::Effect::Prohibit => "prohibit",
        };
        let actions = rule
            .actions
            .iter()
            .map(|a| a.keyword())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("    {kw} {actions}"));
        if !rule.constraints.is_empty() {
            let cs = rule
                .constraints
                .iter()
                .map(constraint_to_dsl)
                .collect::<Vec<_>>()
                .join(" and ");
            out.push_str(&format!(" where {cs}"));
        }
        out.push_str(";\n");
    }
    for duty in &policy.duties {
        let d = match duty {
            Duty::DeleteWithin(d) => format!("delete-within {}", duration_to_dsl(*d)),
            Duty::NotifyOwnerWithin(d) => format!("notify-within {}", duration_to_dsl(*d)),
            Duty::LogAccesses => "log-accesses".to_string(),
        };
        out.push_str(&format!("    duty {d};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Effect;

    const BOB_POLICY: &str = r#"
        # Bob's medical data: medical purposes only.
        policy "pol-medical" for "https://bob.pod/data/medical.ttl" owner "https://bob.id/me" {
            permit use, read where purpose in [medical] and max-retention 30d and max-accesses 100;
            prohibit distribute;
            duty delete-within 30d;
            duty log-accesses;
        }
    "#;

    #[test]
    fn parses_the_motivating_policy() {
        let p = parse(BOB_POLICY).expect("parse");
        assert_eq!(p.id, "pol-medical");
        assert_eq!(p.resource, "https://bob.pod/data/medical.ttl");
        assert_eq!(p.owner, "https://bob.id/me");
        assert_eq!(p.version, 1);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].effect, Effect::Permit);
        assert_eq!(p.rules[0].actions, vec![Action::Use, Action::Read]);
        assert_eq!(p.rules[0].constraints.len(), 3);
        assert_eq!(p.rules[1].effect, Effect::Prohibit);
        assert_eq!(p.duties.len(), 2);
        assert_eq!(p.retention_bound(), Some(SimDuration::from_days(30)));
    }

    #[test]
    fn parses_all_constraint_forms() {
        let p = parse(
            r#"policy "p" for "urn:r" owner "urn:o" version 3 {
                permit use where purpose in [a, b] and max-retention 90m
                    and max-accesses 5 and expires-at 1000s
                    and recipients ["urn:x", "urn:y"] and window 10s..20s;
                duty notify-within 250ms;
            }"#,
        )
        .expect("parse");
        assert_eq!(p.version, 3);
        assert_eq!(p.rules[0].constraints.len(), 6);
        assert!(matches!(
            p.duties[0],
            Duty::NotifyOwnerWithin(d) if d == SimDuration::from_millis(250)
        ));
    }

    #[test]
    fn duration_units() {
        for (text, expected) in [
            ("5ms", SimDuration::from_millis(5)),
            ("5s", SimDuration::from_secs(5)),
            ("5m", SimDuration::from_mins(5)),
            ("5h", SimDuration::from_hours(5)),
            ("5d", SimDuration::from_days(5)),
        ] {
            let src = format!(
                r#"policy "p" for "r" owner "o" {{ permit use where max-retention {text}; }}"#
            );
            let p = parse(&src).expect(text);
            assert_eq!(
                p.rules[0].constraints[0],
                Constraint::MaxRetention(expected)
            );
        }
    }

    #[test]
    fn rejects_malformed_policies() {
        for (src, what) in [
            ("", "empty"),
            (r#"policy "p" for "r" {}"#, "missing owner"),
            (
                r#"policy "p" for "r" owner "o" { permit fly; }"#,
                "unknown action",
            ),
            (
                r#"policy "p" for "r" owner "o" { permit use where max-retention 5w; }"#,
                "bad unit",
            ),
            (
                r#"policy "p" for "r" owner "o" { permit use }"#,
                "missing semicolon",
            ),
            (
                r#"policy "p" for "r" owner "o" { duty vanish; }"#,
                "unknown duty",
            ),
            (r#"policy "p" for "r" owner "o" {} trailing"#, "trailing"),
            (
                r#"policy "p" for "r" owner "o" { permit use where purpose in [; }"#,
                "bad list",
            ),
        ] {
            assert!(parse(src).is_err(), "should fail: {what}");
        }
    }

    #[test]
    fn error_messages_are_described() {
        let err = parse(r#"policy "p" for "r" owner "o" { permit fly; }"#).unwrap_err();
        assert!(err.to_string().contains("fly"), "{err}");
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let original = parse(BOB_POLICY).unwrap();
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, original, "\n{text}");
    }

    #[test]
    fn roundtrip_with_every_constraint() {
        let original = parse(
            r#"policy "p" for "urn:r" owner "urn:o" version 9 {
                permit read, modify where purpose in [medical, academic]
                    and max-retention 7d and max-accesses 3
                    and expires-at 12h and recipients ["urn:a"] and window 1s..2s;
                prohibit distribute, delete;
                duty delete-within 7d;
                duty notify-within 1h;
                duty log-accesses;
            }"#,
        )
        .unwrap();
        let reparsed = parse(&serialize(&original)).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn comments_are_ignored() {
        let p = parse("# heading\npolicy \"p\" for \"r\" owner \"o\" { # inline\n permit use; }")
            .unwrap();
        assert_eq!(p.rules.len(), 1);
    }
}
