//! W3C Web Access Control (WAC) — Solid's native *access* control layer.
//!
//! A pod manager consults an [`AclDocument`] before serving any request
//! (paper §III-A: "the Pod Manager determines whether access can be granted
//! by checking the access control policies that are stored locally"). Usage
//! control (this crate's [`crate::model`]) takes over *after* the data has
//! left the pod.

use duc_codec::{Decode, DecodeError, Encode, Reader};
use duc_rdf::vocab::{acl, foaf_agent, rdf};
use duc_rdf::{Graph, Iri, Term, Triple};

use crate::PolicyError;

/// A WAC access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AclMode {
    /// Read resource content.
    Read,
    /// Replace resource content.
    Write,
    /// Add to (but not rewrite) resource content.
    Append,
    /// Read/modify the ACL itself.
    Control,
}

impl AclMode {
    /// All modes, for iteration.
    pub const ALL: [AclMode; 4] = [
        AclMode::Read,
        AclMode::Write,
        AclMode::Append,
        AclMode::Control,
    ];

    fn to_iri(self) -> Iri {
        match self {
            AclMode::Read => acl::read(),
            AclMode::Write => acl::write(),
            AclMode::Append => acl::append(),
            AclMode::Control => acl::control(),
        }
    }

    fn from_iri(iri: &Iri) -> Option<AclMode> {
        if *iri == acl::read() {
            Some(AclMode::Read)
        } else if *iri == acl::write() {
            Some(AclMode::Write)
        } else if *iri == acl::append() {
            Some(AclMode::Append)
        } else if *iri == acl::control() {
            Some(AclMode::Control)
        } else {
            None
        }
    }

    /// Whether holding `self` implies `requested` (Write implies Append).
    pub fn implies(self, requested: AclMode) -> bool {
        self == requested || (self == AclMode::Write && requested == AclMode::Append)
    }
}

impl Encode for AclMode {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            AclMode::Read => 0,
            AclMode::Write => 1,
            AclMode::Append => 2,
            AclMode::Control => 3,
        });
    }
}

impl Decode for AclMode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => AclMode::Read,
            1 => AclMode::Write,
            2 => AclMode::Append,
            3 => AclMode::Control,
            tag => {
                return Err(DecodeError::InvalidTag {
                    tag,
                    type_name: "AclMode",
                })
            }
        })
    }
}

/// Who an authorization applies to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AgentSpec {
    /// A specific WebID.
    Agent(String),
    /// Any authenticated agent (`acl:AuthenticatedAgent`).
    AuthenticatedAgent,
    /// Anyone, authenticated or not (`foaf:Agent`).
    Public,
}

impl AgentSpec {
    /// Whether this spec matches a requesting agent (`None` =
    /// unauthenticated).
    pub fn matches(&self, agent: Option<&str>) -> bool {
        match self {
            AgentSpec::Agent(webid) => agent == Some(webid.as_str()),
            AgentSpec::AuthenticatedAgent => agent.is_some(),
            AgentSpec::Public => true,
        }
    }
}

/// One `acl:Authorization`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authorization {
    /// Fragment identifier of the authorization within the ACL document.
    pub id: String,
    /// Who it applies to.
    pub agents: Vec<AgentSpec>,
    /// Granted modes.
    pub modes: Vec<AclMode>,
    /// The specific resource it grants access to, if any.
    pub access_to: Option<String>,
    /// Container whose members inherit this authorization, if any.
    pub default_for: Option<String>,
}

impl Authorization {
    /// An authorization granting `modes` on `resource` to `agents`.
    pub fn for_resource(
        id: impl Into<String>,
        resource: impl Into<String>,
        agents: Vec<AgentSpec>,
        modes: Vec<AclMode>,
    ) -> Authorization {
        Authorization {
            id: id.into(),
            agents,
            modes,
            access_to: Some(resource.into()),
            default_for: None,
        }
    }

    /// An inheritable authorization for everything under `container`.
    pub fn default_for_container(
        id: impl Into<String>,
        container: impl Into<String>,
        agents: Vec<AgentSpec>,
        modes: Vec<AclMode>,
    ) -> Authorization {
        Authorization {
            id: id.into(),
            agents,
            modes,
            access_to: None,
            default_for: Some(container.into()),
        }
    }

    fn applies_to(&self, resource: &str) -> bool {
        if self.access_to.as_deref() == Some(resource) {
            return true;
        }
        if let Some(container) = &self.default_for {
            return resource.starts_with(container.as_str());
        }
        false
    }

    fn grants(&self, agent: Option<&str>, mode: AclMode) -> bool {
        self.agents.iter().any(|a| a.matches(agent)) && self.modes.iter().any(|m| m.implies(mode))
    }
}

/// A WAC ACL document guarding one pod (or container subtree).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AclDocument {
    /// The authorizations, checked in order (any match grants).
    pub authorizations: Vec<Authorization>,
}

impl AclDocument {
    /// An empty (deny-everything) document.
    pub fn new() -> AclDocument {
        AclDocument::default()
    }

    /// The bootstrap ACL a pod manager installs at pod initiation: the owner
    /// holds every mode on everything under `root`.
    pub fn owner_default(owner: impl Into<String>, root: impl Into<String>) -> AclDocument {
        AclDocument {
            authorizations: vec![Authorization::default_for_container(
                "owner",
                root,
                vec![AgentSpec::Agent(owner.into())],
                AclMode::ALL.to_vec(),
            )],
        }
    }

    /// Adds an authorization.
    pub fn push(&mut self, auth: Authorization) {
        self.authorizations.push(auth);
    }

    /// Whether `agent` may perform `mode` on `resource`
    /// (WAC is default-deny: no matching authorization means no).
    pub fn allows(&self, agent: Option<&str>, mode: AclMode, resource: &str) -> bool {
        self.authorizations
            .iter()
            .any(|a| a.applies_to(resource) && a.grants(agent, mode))
    }

    /// Serializes to an RDF graph (WAC vocabulary).
    pub fn to_graph(&self, doc_base: &str) -> Result<Graph, PolicyError> {
        let mut g = Graph::new();
        for auth in &self.authorizations {
            let subject = Iri::new(format!("{doc_base}#{}", auth.id))
                .map_err(|e| PolicyError::Invalid(e.to_string()))?;
            let s = Term::Iri(subject.clone());
            g.insert(Triple::new(
                s.clone(),
                rdf::type_(),
                Term::Iri(acl::authorization()),
            ));
            for agent in &auth.agents {
                match agent {
                    AgentSpec::Agent(webid) => {
                        let iri = Iri::new(webid.clone())
                            .map_err(|e| PolicyError::Invalid(e.to_string()))?;
                        g.insert(Triple::new(s.clone(), acl::agent(), Term::Iri(iri)));
                    }
                    AgentSpec::AuthenticatedAgent => {
                        g.insert(Triple::new(
                            s.clone(),
                            acl::agent_class(),
                            Term::Iri(acl::authenticated_agent()),
                        ));
                    }
                    AgentSpec::Public => {
                        g.insert(Triple::new(
                            s.clone(),
                            acl::agent_class(),
                            Term::Iri(foaf_agent::agent_class()),
                        ));
                    }
                }
            }
            for mode in &auth.modes {
                g.insert(Triple::new(
                    s.clone(),
                    acl::mode(),
                    Term::Iri(mode.to_iri()),
                ));
            }
            if let Some(resource) = &auth.access_to {
                let iri =
                    Iri::new(resource.clone()).map_err(|e| PolicyError::Invalid(e.to_string()))?;
                g.insert(Triple::new(s.clone(), acl::access_to(), Term::Iri(iri)));
            }
            if let Some(container) = &auth.default_for {
                let iri =
                    Iri::new(container.clone()).map_err(|e| PolicyError::Invalid(e.to_string()))?;
                g.insert(Triple::new(s.clone(), acl::default(), Term::Iri(iri)));
            }
        }
        Ok(g)
    }

    /// Parses an ACL document from an RDF graph.
    ///
    /// # Errors
    /// Returns [`PolicyError::MissingStatement`] when an authorization lacks
    /// modes or agents.
    pub fn from_graph(graph: &Graph) -> Result<AclDocument, PolicyError> {
        let mut doc = AclDocument::new();
        let auth_type = Term::Iri(acl::authorization());
        let subjects: Vec<Term> = graph.subjects(&rdf::type_(), &auth_type).cloned().collect();
        for subject in subjects {
            let subject_iri = match &subject {
                Term::Iri(iri) => iri.clone(),
                _ => continue,
            };
            let id = subject_iri
                .as_str()
                .rsplit_once('#')
                .map(|(_, frag)| frag.to_string())
                .unwrap_or_else(|| subject_iri.as_str().to_string());
            let mut agents = Vec::new();
            for t in graph.objects(&subject_iri, &acl::agent()) {
                if let Term::Iri(iri) = t {
                    agents.push(AgentSpec::Agent(iri.as_str().to_string()));
                }
            }
            for t in graph.objects(&subject_iri, &acl::agent_class()) {
                if let Term::Iri(iri) = t {
                    if *iri == acl::authenticated_agent() {
                        agents.push(AgentSpec::AuthenticatedAgent);
                    } else if *iri == foaf_agent::agent_class() {
                        agents.push(AgentSpec::Public);
                    }
                }
            }
            let modes: Vec<AclMode> = graph
                .objects(&subject_iri, &acl::mode())
                .filter_map(|t| t.as_iri().and_then(AclMode::from_iri))
                .collect();
            if agents.is_empty() {
                return Err(PolicyError::MissingStatement("acl:agent / acl:agentClass"));
            }
            if modes.is_empty() {
                return Err(PolicyError::MissingStatement("acl:mode"));
            }
            let access_to = graph
                .objects(&subject_iri, &acl::access_to())
                .filter_map(|t| t.as_iri())
                .map(|i| i.as_str().to_string())
                .next();
            let default_for = graph
                .objects(&subject_iri, &acl::default())
                .filter_map(|t| t.as_iri())
                .map(|i| i.as_str().to_string())
                .next();
            doc.push(Authorization {
                id,
                agents,
                modes,
                access_to,
                default_for,
            });
        }
        Ok(doc)
    }
}

impl Encode for AgentSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AgentSpec::Agent(webid) => {
                buf.push(0);
                webid.encode(buf);
            }
            AgentSpec::AuthenticatedAgent => buf.push(1),
            AgentSpec::Public => buf.push(2),
        }
    }
}

impl Decode for AgentSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => AgentSpec::Agent(String::decode(r)?),
            1 => AgentSpec::AuthenticatedAgent,
            2 => AgentSpec::Public,
            tag => {
                return Err(DecodeError::InvalidTag {
                    tag,
                    type_name: "AgentSpec",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: &str = "https://alice.id/me";
    const BOB: &str = "https://bob.id/me";
    const RES: &str = "https://alice.pod/data/browsing.csv";

    fn doc() -> AclDocument {
        let mut d = AclDocument::owner_default(ALICE, "https://alice.pod/");
        d.push(Authorization::for_resource(
            "readers",
            RES,
            vec![AgentSpec::AuthenticatedAgent],
            vec![AclMode::Read],
        ));
        d
    }

    #[test]
    fn default_deny() {
        let d = AclDocument::new();
        assert!(!d.allows(Some(ALICE), AclMode::Read, RES));
        assert!(!d.allows(None, AclMode::Read, RES));
    }

    #[test]
    fn owner_has_full_control_via_default() {
        let d = doc();
        for mode in AclMode::ALL {
            assert!(d.allows(Some(ALICE), mode, RES), "{mode:?}");
            assert!(
                d.allows(Some(ALICE), mode, "https://alice.pod/other/deep/file"),
                "inherited {mode:?}"
            );
        }
    }

    #[test]
    fn authenticated_agents_can_read_but_not_write() {
        let d = doc();
        assert!(d.allows(Some(BOB), AclMode::Read, RES));
        assert!(!d.allows(Some(BOB), AclMode::Write, RES));
        assert!(
            !d.allows(None, AclMode::Read, RES),
            "unauthenticated denied"
        );
    }

    #[test]
    fn default_does_not_leak_outside_container() {
        let d = doc();
        assert!(!d.allows(Some(ALICE), AclMode::Read, "https://evil.pod/x"));
    }

    #[test]
    fn public_spec_matches_unauthenticated() {
        let mut d = AclDocument::new();
        d.push(Authorization::for_resource(
            "pub",
            RES,
            vec![AgentSpec::Public],
            vec![AclMode::Read],
        ));
        assert!(d.allows(None, AclMode::Read, RES));
        assert!(d.allows(Some(BOB), AclMode::Read, RES));
    }

    #[test]
    fn write_implies_append() {
        let mut d = AclDocument::new();
        d.push(Authorization::for_resource(
            "w",
            RES,
            vec![AgentSpec::Agent(BOB.into())],
            vec![AclMode::Write],
        ));
        assert!(d.allows(Some(BOB), AclMode::Append, RES));
        assert!(!d.allows(Some(BOB), AclMode::Control, RES));
    }

    #[test]
    fn rdf_roundtrip() {
        let original = doc();
        let g = original
            .to_graph("https://alice.pod/.acl")
            .expect("to_graph");
        let parsed = AclDocument::from_graph(&g).expect("from_graph");
        // Order of authorizations may differ; compare as sets.
        assert_eq!(parsed.authorizations.len(), original.authorizations.len());
        for auth in &original.authorizations {
            assert!(
                parsed.authorizations.iter().any(|a| {
                    a.id == auth.id
                        && a.access_to == auth.access_to
                        && a.default_for == auth.default_for
                        && a.agents.iter().all(|x| auth.agents.contains(x))
                        && a.modes.iter().all(|m| auth.modes.contains(m))
                }),
                "missing authorization {auth:?}"
            );
        }
    }

    #[test]
    fn rdf_roundtrip_through_turtle_text() {
        let original = doc();
        let g = original.to_graph("https://alice.pod/.acl").unwrap();
        let text = duc_rdf::turtle::serialize(&g);
        let reparsed_graph = duc_rdf::turtle::parse(&text).expect("turtle parse");
        let parsed = AclDocument::from_graph(&reparsed_graph).expect("from_graph");
        assert_eq!(parsed.authorizations.len(), original.authorizations.len());
    }

    #[test]
    fn from_graph_requires_modes_and_agents() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("urn:acl#a1"),
            rdf::type_(),
            Term::Iri(acl::authorization()),
        ));
        assert!(AclDocument::from_graph(&g).is_err());
    }

    #[test]
    fn codec_roundtrip_for_agent_specs() {
        use duc_codec::{decode_from_slice, encode_to_vec};
        for spec in [
            AgentSpec::Agent("urn:x".into()),
            AgentSpec::AuthenticatedAgent,
            AgentSpec::Public,
        ] {
            let back: AgentSpec = decode_from_slice(&encode_to_vec(&spec)).unwrap();
            assert_eq!(back, spec);
        }
        let mode: AclMode = decode_from_slice(&encode_to_vec(&AclMode::Control)).unwrap();
        assert_eq!(mode, AclMode::Control);
    }
}
