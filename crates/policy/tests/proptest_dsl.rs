//! DSL round-trip property: `parse(serialize(p)) == p` for arbitrary
//! generated policies (satellite of the compiled-policy refactor; the
//! workspace-level `tests/proptest_policy.rs` keeps the umbrella-crate
//! variant).

use duc_policy::dsl;
use duc_policy::prelude::*;
use duc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Durations the DSL can express exactly (whole milliseconds).
fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (1u64..100_000).prop_map(SimDuration::from_millis)
}

/// Instants the DSL can express exactly (whole-millisecond offsets from
/// the epoch).
fn arb_instant() -> impl Strategy<Value = SimTime> {
    (0u64..100_000).prop_map(|ms| SimTime::ZERO + SimDuration::from_millis(ms))
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Use),
        Just(Action::Read),
        Just(Action::Modify),
        Just(Action::Delete),
        Just(Action::Distribute),
    ]
}

/// Purposes that tokenize as DSL identifiers.
fn arb_purpose() -> impl Strategy<Value = Purpose> {
    "[a-z][a-z0-9-]{0,12}".prop_map(Purpose::new)
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        arb_duration().prop_map(Constraint::MaxRetention),
        arb_instant().prop_map(Constraint::ExpiresAt),
        proptest::collection::vec(arb_purpose(), 1..4).prop_map(Constraint::Purpose),
        (0u64..10_000).prop_map(Constraint::MaxAccessCount),
        proptest::collection::vec("[a-zA-Z0-9:/._-]{1,16}", 1..3).prop_map(|agents| {
            Constraint::AllowedRecipients(agents.into_iter().map(|a| format!("urn:{a}")).collect())
        }),
        (arb_instant(), arb_duration()).prop_map(|(from, len)| Constraint::TimeWindow {
            not_before: from,
            not_after: from + len,
        }),
    ]
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        any::<bool>(),
        proptest::collection::vec(arb_action(), 1..5),
        proptest::collection::vec(arb_constraint(), 0..5),
    )
        .prop_map(|(permit, actions, constraints)| {
            let mut rule = if permit {
                Rule::permit(actions)
            } else {
                Rule::prohibit(actions)
            };
            for c in constraints {
                rule = rule.with_constraint(c);
            }
            rule
        })
}

fn arb_duty() -> impl Strategy<Value = Duty> {
    prop_oneof![
        arb_duration().prop_map(Duty::DeleteWithin),
        arb_duration().prop_map(Duty::NotifyOwnerWithin),
        Just(Duty::LogAccesses),
    ]
}

fn arb_policy() -> impl Strategy<Value = UsagePolicy> {
    (
        "[a-zA-Z0-9:/._#-]{1,24}",
        "[a-zA-Z0-9:/._#-]{1,24}",
        "[a-zA-Z0-9:/._#-]{1,24}",
        proptest::collection::vec(arb_rule(), 0..6),
        proptest::collection::vec(arb_duty(), 0..4),
        1u64..1_000,
    )
        .prop_map(|(id, resource, owner, rules, duties, version)| {
            let mut b = UsagePolicy::builder(id, resource, owner).version(version);
            for r in rules {
                b = b.rule(r);
            }
            for d in duties {
                b = b.duty(d);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serializing any generated policy to the DSL and parsing it back is
    /// the identity.
    #[test]
    fn parse_serialize_roundtrip(policy in arb_policy()) {
        let text = dsl::serialize(&policy);
        let reparsed = dsl::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(reparsed, policy, "\n{}", text);
    }

    /// The round trip also preserves engine decisions (a weaker property
    /// that catches "equal but differently interpreted" regressions).
    #[test]
    fn roundtrip_preserves_decisions(
        policy in arb_policy(),
        action in arb_action(),
        now in 0u64..200_000,
    ) {
        let engine = PolicyEngine::default();
        let ctx = UsageContext {
            consumer: "urn:consumer".into(),
            action,
            purpose: Purpose::new("medical"),
            now: SimTime::ZERO + SimDuration::from_millis(now),
            acquired_at: SimTime::ZERO,
            access_count: 1,
        };
        let via_dsl = dsl::parse(&dsl::serialize(&policy)).expect("roundtrip");
        prop_assert_eq!(
            engine.evaluate(&via_dsl, &ctx),
            engine.evaluate(&policy, &ctx)
        );
    }
}
