//! The compiled-program equivalence gates.
//!
//! 1. For arbitrary policy × context, [`PolicyProgram::decide`] is
//!    decision-equivalent to [`PolicyEngine::evaluate`] — the full
//!    [`Decision`] value including deny-reason lists.
//! 2. [`PolicyProgram::next_transition`] never skips a decision flip: the
//!    decision is constant strictly before the returned instant, the
//!    returned instant itself observes a different decision, and a `None`
//!    means the decision never changes again.

use duc_policy::prelude::*;
use duc_policy::{compile, PolicyProgram};
use duc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Use),
        Just(Action::Read),
        Just(Action::Modify),
        Just(Action::Delete),
        Just(Action::Distribute),
    ]
}

fn arb_purpose() -> impl Strategy<Value = Purpose> {
    prop_oneof![
        Just(Purpose::new("medical")),
        Just(Purpose::new("medical-research")),
        Just(Purpose::new("university-hospital-research")),
        Just(Purpose::new("academic")),
        Just(Purpose::new("marketing")),
        Just(Purpose::any()),
        "[a-z]{1,8}".prop_map(Purpose::new),
    ]
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (0u64..5_000).prop_map(|s| Constraint::MaxRetention(SimDuration::from_secs(s))),
        (0u64..10_000).prop_map(|s| Constraint::ExpiresAt(SimTime::from_secs(s))),
        proptest::collection::vec(arb_purpose(), 1..4).prop_map(Constraint::Purpose),
        (0u64..100).prop_map(Constraint::MaxAccessCount),
        proptest::collection::vec("[a-z]{1,6}", 1..3).prop_map(|agents| {
            Constraint::AllowedRecipients(agents.into_iter().map(|a| format!("urn:{a}")).collect())
        }),
        (0u64..6_000, 0u64..6_000).prop_map(|(a, b)| Constraint::TimeWindow {
            not_before: SimTime::from_secs(a.min(b)),
            not_after: SimTime::from_secs(a.max(b)),
        }),
    ]
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        any::<bool>(),
        proptest::collection::vec(arb_action(), 1..4),
        proptest::collection::vec(arb_constraint(), 0..4),
    )
        .prop_map(|(permit, actions, constraints)| {
            let mut rule = if permit {
                Rule::permit(actions)
            } else {
                Rule::prohibit(actions)
            };
            for c in constraints {
                rule = rule.with_constraint(c);
            }
            rule
        })
}

fn arb_policy() -> impl Strategy<Value = UsagePolicy> {
    (
        proptest::collection::vec(arb_rule(), 0..5),
        proptest::collection::vec(
            prop_oneof![
                (1u64..10_000).prop_map(|s| Duty::DeleteWithin(SimDuration::from_secs(s))),
                Just(Duty::LogAccesses),
            ],
            0..2,
        ),
    )
        .prop_map(|(rules, duties)| {
            let mut b = UsagePolicy::builder("urn:p", "urn:r", "urn:o");
            for r in rules {
                b = b.rule(r);
            }
            for d in duties {
                b = b.duty(d);
            }
            b.build()
        })
}

fn arb_ctx() -> impl Strategy<Value = UsageContext> {
    (
        arb_action(),
        arb_purpose(),
        0u64..8_000,
        0u64..4_000,
        0u64..120,
    )
        .prop_map(|(action, purpose, now, acquired, count)| UsageContext {
            consumer: "urn:consumer".into(),
            action,
            purpose,
            now: SimTime::from_secs(now.max(acquired)),
            acquired_at: SimTime::from_secs(acquired),
            access_count: count,
        })
}

fn program(policy: &UsagePolicy, engine: &PolicyEngine) -> PolicyProgram {
    compile(policy, engine.taxonomy())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `PolicyProgram::decide` ≡ `PolicyEngine::evaluate`, as full
    /// `Decision` values (permits, deny reasons and their order).
    #[test]
    fn decide_is_decision_equivalent(policy in arb_policy(), ctx in arb_ctx()) {
        let engine = PolicyEngine::default();
        let prog = program(&policy, &engine);
        prop_assert_eq!(prog.decide(&ctx), engine.evaluate(&policy, &ctx));
    }

    /// `next_transition` returns exactly the first future decision flip:
    /// sampled instants strictly before it keep the current decision, the
    /// returned instant observes a different one, and `None` pins the
    /// decision for every sampled future instant.
    #[test]
    fn next_transition_never_skips_a_flip(
        policy in arb_policy(),
        ctx in arb_ctx(),
        probe_offsets in proptest::collection::vec(1u64..20_000_000_000_000, 4),
    ) {
        let engine = PolicyEngine::default();
        let prog = program(&policy, &engine);
        let current = prog.decide(&ctx);
        match prog.next_transition(&ctx) {
            Some(flip) => {
                prop_assert!(flip > ctx.now, "flip must lie strictly in the future");
                // The flip instant really flips.
                let mut at = ctx.clone();
                at.now = flip;
                prop_assert_ne!(prog.decide(&at), current.clone());
                // Sampled instants in (now, flip) keep the decision: no
                // skipped flip before the returned instant.
                let span = flip.as_nanos() - ctx.now.as_nanos();
                for offset in &probe_offsets {
                    let delta = 1 + offset % span.max(1);
                    if delta >= span {
                        continue;
                    }
                    let mut mid = ctx.clone();
                    mid.now = SimTime::from_nanos(ctx.now.as_nanos() + delta);
                    prop_assert_eq!(
                        prog.decide(&mid),
                        current.clone(),
                        "decision flipped at {} before the declared transition {}",
                        mid.now,
                        flip
                    );
                }
            }
            None => {
                // No transition: the decision must hold at every sampled
                // future instant.
                for offset in &probe_offsets {
                    let mut later = ctx.clone();
                    later.now = SimTime::from_nanos(ctx.now.as_nanos().saturating_add(*offset));
                    prop_assert_eq!(
                        prog.decide(&later),
                        current.clone(),
                        "decision changed at {} but next_transition was None",
                        later.now
                    );
                }
            }
        }
    }

    /// Walking transition to transition visits every decision the engine
    /// ever takes for the context: the decision at an arbitrary future
    /// instant equals the decision at the start of the interval containing
    /// it.
    #[test]
    fn transition_walk_reconstructs_future_decisions(
        policy in arb_policy(),
        ctx in arb_ctx(),
        horizon_secs in 1u64..20_000,
    ) {
        let engine = PolicyEngine::default();
        let prog = program(&policy, &engine);
        let target = SimTime::from_nanos(
            ctx.now
                .as_nanos()
                .saturating_add(SimDuration::from_secs(horizon_secs).as_nanos()),
        );
        // Walk the transition chain up to the target instant.
        let mut cursor = ctx.clone();
        let mut hops = 0;
        while let Some(flip) = prog.next_transition(&cursor) {
            if flip > target {
                break;
            }
            cursor.now = flip;
            hops += 1;
            prop_assert!(hops <= 64, "transition chains are finite and short");
        }
        // The interval containing `target` starts at `cursor.now`.
        let mut at_target = ctx.clone();
        at_target.now = target;
        prop_assert_eq!(prog.decide(&at_target), prog.decide(&cursor));
        prop_assert_eq!(prog.decide(&cursor), engine.evaluate(&policy, &cursor));
    }
}
