//! Cross-representation property tests: a policy must survive round trips
//! through all three of its encodings — binary codec (on-chain), text DSL
//! (owner-facing), and RDF graph (pod-native) — and the representations
//! must agree with each other.

use duc_policy::prelude::*;
use duc_policy::{dsl, rdf_binding};
use duc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Use),
        Just(Action::Read),
        Just(Action::Modify),
        Just(Action::Delete),
        Just(Action::Distribute),
    ]
}

// RDF-safe purposes and agent IRIs (the binding requires IRI identity).
fn arb_purpose() -> impl Strategy<Value = Purpose> {
    "[a-z][a-z0-9-]{0,10}".prop_map(Purpose::new)
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (1u64..100_000).prop_map(|s| Constraint::MaxRetention(SimDuration::from_secs(s))),
        (1u64..100_000).prop_map(|s| Constraint::ExpiresAt(SimTime::from_secs(s))),
        proptest::collection::vec(arb_purpose(), 1..4).prop_map(Constraint::Purpose),
        (0u64..1000).prop_map(Constraint::MaxAccessCount),
        proptest::collection::vec("[a-z]{1,8}", 1..3).prop_map(|agents| {
            Constraint::AllowedRecipients(
                agents
                    .into_iter()
                    .map(|a| format!("urn:agent:{a}"))
                    .collect(),
            )
        }),
        (0u64..500, 500u64..1000).prop_map(|(a, b)| Constraint::TimeWindow {
            not_before: SimTime::from_secs(a),
            not_after: SimTime::from_secs(b),
        }),
    ]
}

fn arb_policy() -> impl Strategy<Value = UsagePolicy> {
    (
        proptest::collection::vec(
            (
                any::<bool>(),
                proptest::collection::vec(arb_action(), 1..3),
                proptest::collection::vec(arb_constraint(), 0..3),
            ),
            0..4,
        ),
        proptest::collection::vec(
            prop_oneof![
                (1u64..100_000).prop_map(|s| Duty::DeleteWithin(SimDuration::from_secs(s))),
                (1u64..100_000).prop_map(|s| Duty::NotifyOwnerWithin(SimDuration::from_secs(s))),
                Just(Duty::LogAccesses),
            ],
            0..3,
        ),
        1u64..50,
    )
        .prop_map(|(rules, duties, version)| {
            let mut b = UsagePolicy::builder(
                "urn:duc:policy:prop",
                "urn:duc:resource:prop",
                "urn:duc:owner:prop",
            )
            .version(version);
            for (permit, actions, constraints) in rules {
                let mut rule = if permit {
                    Rule::permit(actions)
                } else {
                    Rule::prohibit(actions)
                };
                for c in constraints {
                    rule = rule.with_constraint(c);
                }
                b = b.rule(rule);
            }
            for d in duties {
                b = b.duty(d);
            }
            b.build()
        })
}

/// RDF graphs are unordered *sets* of statements; normalize order and
/// collapse duplicates (duplicate actions/purposes/recipients are
/// semantically meaningless and canonicalize away in RDF).
fn normalize(mut p: UsagePolicy) -> UsagePolicy {
    for r in &mut p.rules {
        r.actions.sort();
        r.actions.dedup();
        for c in &mut r.constraints {
            match c {
                Constraint::Purpose(ps) => {
                    ps.sort();
                    ps.dedup();
                }
                Constraint::AllowedRecipients(agents) => {
                    agents.sort();
                    agents.dedup();
                }
                _ => {}
            }
        }
        r.constraints.sort_by_key(|c| format!("{c:?}"));
    }
    p.rules.sort_by_key(|r| format!("{r:?}"));
    p.duties.sort_by_key(|d| format!("{d:?}"));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// RDF graph binding is lossless (up to statement order).
    #[test]
    fn rdf_graph_roundtrip(policy in arb_policy()) {
        let graph = rdf_binding::policy_to_graph(&policy).expect("to_graph");
        let parsed = rdf_binding::policy_from_graph(&graph).expect("from_graph");
        prop_assert_eq!(normalize(parsed), normalize(policy));
    }

    /// The full pod-native path — graph → Turtle text → graph → policy —
    /// is also lossless.
    #[test]
    fn rdf_turtle_text_roundtrip(policy in arb_policy()) {
        let graph = rdf_binding::policy_to_graph(&policy).expect("to_graph");
        let text = duc_rdf::turtle::serialize(&graph);
        let graph2 = duc_rdf::turtle::parse(&text)
            .unwrap_or_else(|e| panic!("turtle reparse: {e}\n{text}"));
        let parsed = rdf_binding::policy_from_graph(&graph2).expect("from_graph");
        prop_assert_eq!(normalize(parsed), normalize(policy));
    }

    /// All three representations agree: decisions made by the engine are
    /// identical for the original policy, the DSL-roundtripped policy and
    /// the RDF-roundtripped policy.
    #[test]
    fn representations_agree_on_decisions(
        policy in arb_policy(),
        action in arb_action(),
        purpose in arb_purpose(),
        now in 0u64..200_000,
        count in 0u64..50,
    ) {
        let engine = PolicyEngine::default();
        let ctx = UsageContext {
            consumer: "urn:agent:x".into(),
            action,
            purpose,
            now: SimTime::from_secs(now),
            acquired_at: SimTime::from_secs(0),
            access_count: count,
        };
        let original = engine.evaluate(&policy, &ctx).is_permit();

        let via_dsl = dsl::parse(&dsl::serialize(&policy)).expect("dsl");
        prop_assert_eq!(engine.evaluate(&via_dsl, &ctx).is_permit(), original);

        let graph = rdf_binding::policy_to_graph(&policy).expect("graph");
        let via_rdf = rdf_binding::policy_from_graph(&graph).expect("parse");
        prop_assert_eq!(engine.evaluate(&via_rdf, &ctx).is_permit(), original);
    }

    /// Retention and expiry bounds survive every representation.
    #[test]
    fn bounds_survive_representations(policy in arb_policy()) {
        let via_dsl = dsl::parse(&dsl::serialize(&policy)).expect("dsl");
        prop_assert_eq!(via_dsl.retention_bound(), policy.retention_bound());
        prop_assert_eq!(via_dsl.expiry_bound(), policy.expiry_bound());
        let graph = rdf_binding::policy_to_graph(&policy).expect("graph");
        let via_rdf = rdf_binding::policy_from_graph(&graph).expect("parse");
        prop_assert_eq!(via_rdf.retention_bound(), policy.retention_bound());
        prop_assert_eq!(via_rdf.expiry_bound(), policy.expiry_bound());
    }
}
