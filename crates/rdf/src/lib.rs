//! # duc-rdf — RDF / Linked Data substrate
//!
//! Solid is built on Linked Data: pod resources, access-control lists and
//! usage policies are RDF documents. This crate provides the data model
//! ([`Term`], [`Triple`], [`Graph`]), a Turtle-subset parser and serializer
//! ([`turtle`]), and the vocabularies the architecture uses ([`vocab`]).
//!
//! The Turtle subset covers what Solid documents in this workspace need:
//! `@prefix` directives, prefixed names, IRI references, the `a` keyword,
//! string literals (with escapes, language tags and datatypes), integers,
//! decimals and booleans, object lists (`,`), predicate lists (`;`), labelled
//! blank nodes and comments.
//!
//! ## Example
//! ```
//! use duc_rdf::{turtle, Graph, Iri, Term, Triple};
//!
//! let doc = r#"
//!   @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//!   <https://alice.pod/profile#me> a foaf:Person ;
//!       foaf:name "Alice" .
//! "#;
//! let graph = turtle::parse(doc)?;
//! assert_eq!(graph.len(), 2);
//! let name = graph
//!     .objects(&Iri::new("https://alice.pod/profile#me")?, &Iri::new("http://xmlns.com/foaf/0.1/name")?)
//!     .next()
//!     .unwrap();
//! assert_eq!(name, &Term::literal_str("Alice"));
//! # Ok::<(), duc_rdf::RdfError>(())
//! ```

pub mod graph;
pub mod term;
pub mod turtle;
pub mod vocab;

pub use graph::Graph;
pub use term::{Iri, Literal, Term, Triple};

/// Errors produced by RDF parsing and term construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// An IRI contained forbidden characters or was empty.
    InvalidIri(String),
    /// Turtle syntax error with a line number and message.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
}

impl std::fmt::Display for RdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdfError::InvalidIri(iri) => write!(f, "invalid iri: {iri:?}"),
            RdfError::Parse { line, message } => {
                write!(f, "turtle parse error (line {line}): {message}")
            }
            RdfError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
        }
    }
}

impl std::error::Error for RdfError {}
