//! RDF terms: IRIs, literals, blank nodes and triples.

use std::fmt;

use crate::RdfError;

/// An IRI reference.
///
/// Validation is intentionally light (non-empty, no whitespace or angle
/// brackets): Solid identifiers in this workspace are program-generated, so
/// the check is a corruption guard rather than a full RFC 3987 validator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(String);

impl Iri {
    /// Creates a validated IRI.
    ///
    /// # Errors
    /// Returns [`RdfError::InvalidIri`] if `s` is empty or contains
    /// whitespace, `<`, `>` or `"`.
    pub fn new(s: impl Into<String>) -> Result<Iri, RdfError> {
        let s = s.into();
        if s.is_empty()
            || s.chars()
                .any(|c| c.is_whitespace() || matches!(c, '<' | '>' | '"'))
        {
            return Err(RdfError::InvalidIri(s));
        }
        Ok(Iri(s))
    }

    /// The IRI text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Concatenates a suffix (for namespace-style construction).
    ///
    /// # Errors
    /// Propagates [`RdfError::InvalidIri`] if the joined IRI is invalid.
    pub fn join(&self, suffix: &str) -> Result<Iri, RdfError> {
        Iri::new(format!("{}{}", self.0, suffix))
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl AsRef<str> for Iri {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// An RDF literal: lexical form plus optional language tag or datatype.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form.
    pub lexical: String,
    /// Language tag (mutually exclusive with `datatype` in this model).
    pub language: Option<String>,
    /// Datatype IRI; `None` means `xsd:string`.
    pub datatype: Option<Iri>,
}

impl Literal {
    /// A plain string literal.
    pub fn string(s: impl Into<String>) -> Literal {
        Literal {
            lexical: s.into(),
            language: None,
            datatype: None,
        }
    }

    /// A language-tagged string.
    pub fn lang_string(s: impl Into<String>, lang: impl Into<String>) -> Literal {
        Literal {
            lexical: s.into(),
            language: Some(lang.into()),
            datatype: None,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Literal {
        Literal {
            lexical: v.to_string(),
            language: None,
            datatype: Some(crate::vocab::xsd::integer()),
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Literal {
        Literal {
            lexical: v.to_string(),
            language: None,
            datatype: Some(crate::vocab::xsd::boolean()),
        }
    }

    /// An `xsd:dateTime` literal from a preformatted timestamp string.
    pub fn date_time(ts: impl Into<String>) -> Literal {
        Literal {
            lexical: ts.into(),
            language: None,
            datatype: Some(crate::vocab::xsd::date_time()),
        }
    }

    /// Parses the lexical form as an integer when the datatype permits.
    pub fn as_integer(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }

    /// Parses the lexical form as a boolean.
    pub fn as_boolean(&self) -> Option<bool> {
        match self.lexical.as_str() {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")?;
        }
        Ok(())
    }
}

/// Escapes a literal's lexical form for Turtle output.
pub(crate) fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Any RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference.
    Iri(Iri),
    /// A labelled blank node.
    Blank(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Shorthand for an IRI term.
    ///
    /// # Panics
    /// Panics if `iri` is invalid; use [`Iri::new`] + [`Term::Iri`] for
    /// fallible construction.
    pub fn iri(iri: &str) -> Term {
        Term::Iri(Iri::new(iri).expect("valid iri"))
    }

    /// Shorthand for a plain string literal term.
    pub fn literal_str(s: impl Into<String>) -> Term {
        Term::Literal(Literal::string(s))
    }

    /// Shorthand for an integer literal term.
    pub fn literal_int(v: i64) -> Term {
        Term::Literal(Literal::integer(v))
    }

    /// The IRI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => iri.fmt(f),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => lit.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(iri: Iri) -> Term {
        Term::Iri(iri)
    }
}

impl From<Literal> for Term {
    fn from(lit: Literal) -> Term {
        Term::Literal(lit)
    }
}

/// An RDF triple. Subjects are modelled as [`Term`] restricted by
/// convention to IRIs and blank nodes (literal subjects are rejected by
/// [`Triple::new`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject (IRI or blank node).
    pub subject: Term,
    /// Predicate IRI.
    pub predicate: Iri,
    /// Object (any term).
    pub object: Term,
}

impl Triple {
    /// Creates a triple, rejecting literal subjects.
    ///
    /// # Panics
    /// Panics if `subject` is a literal — a structurally impossible RDF
    /// statement that would indicate a programming error.
    pub fn new(subject: impl Into<Term>, predicate: Iri, object: impl Into<Term>) -> Triple {
        let subject = subject.into();
        assert!(
            !matches!(subject, Term::Literal(_)),
            "literal subjects are not valid RDF"
        );
        Triple {
            subject,
            predicate,
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_validation() {
        assert!(Iri::new("https://example.org/x").is_ok());
        assert!(Iri::new("").is_err());
        assert!(Iri::new("has space").is_err());
        assert!(Iri::new("has<angle").is_err());
        assert!(Iri::new("has\"quote").is_err());
    }

    #[test]
    fn iri_join_builds_namespaced_terms() {
        let ns = Iri::new("https://example.org/ns#").unwrap();
        assert_eq!(
            ns.join("thing").unwrap().as_str(),
            "https://example.org/ns#thing"
        );
        assert!(ns.join("bad term").is_err());
    }

    #[test]
    fn literal_constructors_and_accessors() {
        assert_eq!(Literal::integer(42).as_integer(), Some(42));
        assert_eq!(Literal::boolean(true).as_boolean(), Some(true));
        assert_eq!(Literal::string("x").as_boolean(), None);
        let lang = Literal::lang_string("hello", "en");
        assert_eq!(lang.language.as_deref(), Some("en"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("urn:a").to_string(), "<urn:a>");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
        assert_eq!(Term::literal_str("hi").to_string(), "\"hi\"");
        assert_eq!(Literal::lang_string("hi", "en").to_string(), "\"hi\"@en");
        assert!(Literal::integer(5)
            .to_string()
            .contains("^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }

    #[test]
    fn literal_escaping() {
        let lit = Literal::string("line1\nline2 \"quoted\" \\slash\ttab");
        let shown = lit.to_string();
        assert!(shown.contains("\\n"));
        assert!(shown.contains("\\\""));
        assert!(shown.contains("\\\\"));
        assert!(shown.contains("\\t"));
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(
            Term::iri("urn:s"),
            Iri::new("urn:p").unwrap(),
            Term::literal_int(3),
        );
        assert!(t.to_string().starts_with("<urn:s> <urn:p> \"3\""));
        assert!(t.to_string().ends_with(" ."));
    }

    #[test]
    #[should_panic(expected = "literal subjects")]
    fn literal_subject_panics() {
        let _ = Triple::new(
            Term::literal_str("nope"),
            Iri::new("urn:p").unwrap(),
            Term::iri("urn:o"),
        );
    }
}
