//! Turtle-subset parser and serializer.
//!
//! The grammar subset (see crate docs) covers everything the Solid pods,
//! ACL documents and usage policies in this workspace produce. The
//! serializer output always re-parses to an equal graph (checked by
//! property tests).

use std::collections::HashMap;

use crate::graph::Graph;
use crate::term::{escape_literal, Iri, Literal, Term, Triple};
use crate::vocab;
use crate::RdfError;

// ---------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Token {
    IriRef(String),
    PName(String, String),
    Blank(String),
    StringLit(String),
    LangTag(String),
    CaretCaret,
    A,
    Dot,
    Semicolon,
    Comma,
    PrefixDirective,
    Integer(String),
    Decimal(String),
    Boolean(bool),
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> RdfError {
        RdfError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_iri(&mut self) -> Result<Token, RdfError> {
        self.bump(); // consume '<'
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Token::IriRef(iri)),
                Some(c) if c.is_whitespace() => return Err(self.error("whitespace inside IRI")),
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI reference")),
            }
        }
    }

    fn lex_string(&mut self) -> Result<Token, RdfError> {
        self.bump(); // consume opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Token::StringLit(s)),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some(other) => return Err(self.error(format!("bad escape \\{other}"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn lex_word(&mut self) -> String {
        let mut w = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '%' | '#' | '/' | '+') {
                // A trailing '.' is the statement terminator, not part of the
                // word — only absorb '.' when followed by a word character.
                if c == '.' {
                    let mut lookahead = self.chars.clone();
                    lookahead.next();
                    match lookahead.peek() {
                        Some(&n) if n.is_alphanumeric() || n == '_' => {}
                        _ => break,
                    }
                }
                w.push(c);
                self.bump();
            } else {
                break;
            }
        }
        w
    }

    fn next_token(&mut self) -> Result<Option<Token>, RdfError> {
        self.skip_ws_and_comments();
        let &c = match self.chars.peek() {
            Some(c) => c,
            None => return Ok(None),
        };
        let tok = match c {
            '<' => self.lex_iri()?,
            '"' => self.lex_string()?,
            '.' => {
                self.bump();
                Token::Dot
            }
            ';' => {
                self.bump();
                Token::Semicolon
            }
            ',' => {
                self.bump();
                Token::Comma
            }
            '@' => {
                self.bump();
                let word = self.lex_word();
                if word == "prefix" {
                    Token::PrefixDirective
                } else {
                    Token::LangTag(word)
                }
            }
            '^' => {
                self.bump();
                if self.chars.peek() == Some(&'^') {
                    self.bump();
                    Token::CaretCaret
                } else {
                    return Err(self.error("expected ^^"));
                }
            }
            '_' => {
                self.bump();
                if self.chars.peek() == Some(&':') {
                    self.bump();
                    Token::Blank(self.lex_word())
                } else {
                    return Err(self.error("expected _: blank node label"));
                }
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let w = self.lex_word();
                if w.contains('.') {
                    Token::Decimal(w)
                } else {
                    Token::Integer(w)
                }
            }
            _ => {
                let w = self.lex_word();
                match w.as_str() {
                    "" => return Err(self.error(format!("unexpected character {c:?}"))),
                    "a" => Token::A,
                    "true" => Token::Boolean(true),
                    "false" => Token::Boolean(false),
                    _ => match w.split_once(':') {
                        Some((prefix, local)) => {
                            Token::PName(prefix.to_string(), local.to_string())
                        }
                        None => return Err(self.error(format!("bare word {w:?}"))),
                    },
                }
            }
        };
        Ok(Some(tok))
    }
}

// ------------------------------------------------------------------ parser

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> RdfError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(1);
        RdfError::Parse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_dot(&mut self) -> Result<(), RdfError> {
        match self.next() {
            Some(Token::Dot) => Ok(()),
            other => Err(self.error_at(format!("expected '.', found {other:?}"))),
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<Iri, RdfError> {
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| RdfError::UnknownPrefix(prefix.to_string()))?;
        Iri::new(format!("{ns}{local}"))
    }

    fn parse_iri_like(&mut self) -> Result<Iri, RdfError> {
        match self.next() {
            Some(Token::IriRef(s)) => Iri::new(s),
            Some(Token::PName(p, l)) => self.resolve_pname(&p, &l),
            other => Err(self.error_at(format!("expected IRI, found {other:?}"))),
        }
    }

    fn parse_subject(&mut self) -> Result<Term, RdfError> {
        match self.peek() {
            Some(Token::Blank(_)) => {
                if let Some(Token::Blank(label)) = self.next() {
                    Ok(Term::Blank(label))
                } else {
                    unreachable!("peeked blank")
                }
            }
            _ => Ok(Term::Iri(self.parse_iri_like()?)),
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri, RdfError> {
        if matches!(self.peek(), Some(Token::A)) {
            self.next();
            return Ok(vocab::rdf::type_());
        }
        self.parse_iri_like()
    }

    fn parse_object(&mut self) -> Result<Term, RdfError> {
        match self.next() {
            Some(Token::IriRef(s)) => Ok(Term::Iri(Iri::new(s)?)),
            Some(Token::PName(p, l)) => Ok(Term::Iri(self.resolve_pname(&p, &l)?)),
            Some(Token::Blank(label)) => Ok(Term::Blank(label)),
            Some(Token::Boolean(b)) => Ok(Term::Literal(Literal::boolean(b))),
            Some(Token::Integer(s)) => Ok(Term::Literal(Literal {
                lexical: s,
                language: None,
                datatype: Some(vocab::xsd::integer()),
            })),
            Some(Token::Decimal(s)) => Ok(Term::Literal(Literal {
                lexical: s,
                language: None,
                datatype: Some(vocab::xsd::decimal()),
            })),
            Some(Token::StringLit(s)) => {
                // Optional @lang or ^^datatype suffix.
                match self.peek() {
                    Some(Token::LangTag(_)) => {
                        if let Some(Token::LangTag(lang)) = self.next() {
                            Ok(Term::Literal(Literal::lang_string(s, lang)))
                        } else {
                            unreachable!("peeked lang tag")
                        }
                    }
                    Some(Token::CaretCaret) => {
                        self.next();
                        let dt = self.parse_iri_like()?;
                        Ok(Term::Literal(Literal {
                            lexical: s,
                            language: None,
                            datatype: Some(dt),
                        }))
                    }
                    _ => Ok(Term::Literal(Literal::string(s))),
                }
            }
            other => Err(self.error_at(format!("expected object, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), RdfError> {
        if matches!(self.peek(), Some(Token::PrefixDirective)) {
            self.next();
            let (prefix, ns) = match (self.next(), self.next()) {
                (Some(Token::PName(p, l)), Some(Token::IriRef(ns))) if l.is_empty() => (p, ns),
                other => return Err(self.error_at(format!("malformed @prefix: {other:?}"))),
            };
            self.expect_dot()?;
            self.prefixes.insert(prefix, ns);
            return Ok(());
        }
        let subject = self.parse_subject()?;
        loop {
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                graph.insert(Triple::new(subject.clone(), predicate.clone(), object));
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.next();
                    continue;
                }
                break;
            }
            match self.next() {
                Some(Token::Semicolon) => {
                    // Trailing semicolon before '.' is permitted.
                    if matches!(self.peek(), Some(Token::Dot)) {
                        self.next();
                        return Ok(());
                    }
                    continue;
                }
                Some(Token::Dot) => return Ok(()),
                other => return Err(self.error_at(format!("expected ';' or '.', found {other:?}"))),
            }
        }
    }
}

/// Parses a Turtle document into a [`Graph`].
///
/// # Errors
/// Returns [`RdfError::Parse`] (with a line number) on syntax errors, or
/// [`RdfError::UnknownPrefix`] for undeclared prefixes.
pub fn parse(input: &str) -> Result<Graph, RdfError> {
    let mut lexer = Lexer::new(input);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push((tok, lexer.line));
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    };
    let mut graph = Graph::new();
    while parser.peek().is_some() {
        parser.parse_statement(&mut graph)?;
    }
    Ok(graph)
}

// --------------------------------------------------------------- serializer

/// The prefix table used by [`serialize`].
pub fn default_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", vocab::rdf::NS),
        ("xsd", vocab::xsd::NS),
        ("foaf", vocab::foaf::NS),
        ("acl", vocab::acl::NS),
        ("odrl", vocab::odrl::NS),
        ("solid", vocab::solid::NS),
        ("duc", vocab::duc::NS),
    ]
}

fn compact(iri: &Iri, prefixes: &[(&str, &str)]) -> String {
    for (prefix, ns) in prefixes {
        if let Some(local) = iri.as_str().strip_prefix(ns) {
            // Only compact when the local part is a safe bare name.
            if !local.is_empty()
                && local
                    .chars()
                    .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-'))
            {
                return format!("{prefix}:{local}");
            }
        }
    }
    format!("<{}>", iri.as_str())
}

fn term_to_turtle(term: &Term, prefixes: &[(&str, &str)]) -> String {
    match term {
        Term::Iri(iri) => compact(iri, prefixes),
        Term::Blank(label) => format!("_:{label}"),
        Term::Literal(lit) => {
            let mut out = format!("\"{}\"", escape_literal(&lit.lexical));
            if let Some(lang) = &lit.language {
                out.push('@');
                out.push_str(lang);
            } else if let Some(dt) = &lit.datatype {
                out.push_str("^^");
                out.push_str(&compact(dt, prefixes));
            }
            out
        }
    }
}

/// Serializes a graph to Turtle with the [`default_prefixes`].
pub fn serialize(graph: &Graph) -> String {
    serialize_with_prefixes(graph, &default_prefixes())
}

/// Serializes a graph to Turtle, compacting IRIs against `prefixes` and
/// grouping statements by subject.
pub fn serialize_with_prefixes(graph: &Graph, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    // Emit only prefixes that are actually used.
    let mut used = vec![false; prefixes.len()];
    let mark = |iri: &Iri, used: &mut Vec<bool>| {
        for (i, (_, ns)) in prefixes.iter().enumerate() {
            if iri.as_str().starts_with(ns) {
                used[i] = true;
            }
        }
    };
    for t in graph.iter() {
        if let Term::Iri(iri) = &t.subject {
            mark(iri, &mut used);
        }
        mark(&t.predicate, &mut used);
        if let Term::Iri(iri) = &t.object {
            mark(iri, &mut used);
        }
        if let Term::Literal(lit) = &t.object {
            if let Some(dt) = &lit.datatype {
                mark(dt, &mut used);
            }
        }
    }
    for (i, (prefix, ns)) in prefixes.iter().enumerate() {
        if used[i] {
            out.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
        }
    }
    if !out.is_empty() {
        out.push('\n');
    }

    // Group triples by subject, preserving first-appearance order.
    let mut subject_order: Vec<&Term> = Vec::new();
    let mut by_subject: HashMap<&Term, Vec<&Triple>> = HashMap::new();
    for t in graph.iter() {
        if !by_subject.contains_key(&t.subject) {
            subject_order.push(&t.subject);
        }
        by_subject.entry(&t.subject).or_default().push(t);
    }
    for subject in subject_order {
        let triples = &by_subject[subject];
        let subject_str = term_to_turtle(subject, prefixes);
        out.push_str(&subject_str);
        for (i, t) in triples.iter().enumerate() {
            let pred = if t.predicate == vocab::rdf::type_() {
                "a".to_string()
            } else {
                compact(&t.predicate, prefixes)
            };
            let obj = term_to_turtle(&t.object, prefixes);
            if i == 0 {
                out.push_str(&format!(" {pred} {obj}"));
            } else {
                out.push_str(&format!(" ;\n    {pred} {obj}"));
            }
        }
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_triples() {
        let g = parse(r#"<urn:s> <urn:p> <urn:o> . <urn:s> <urn:p2> "lit" ."#).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&Triple::new(
            Term::iri("urn:s"),
            Iri::new("urn:p").unwrap(),
            Term::iri("urn:o")
        )));
    }

    #[test]
    fn parse_prefixes_and_a() {
        let g = parse(
            r#"
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            <urn:alice> a foaf:Person ; foaf:name "Alice" .
            "#,
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&Triple::new(
            Term::iri("urn:alice"),
            vocab::rdf::type_(),
            Term::iri("http://xmlns.com/foaf/0.1/Person"),
        )));
    }

    #[test]
    fn parse_object_lists_and_predicate_lists() {
        let g = parse(r#"<urn:s> <urn:p> <urn:a>, <urn:b> ; <urn:q> <urn:c> ."#).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn parse_literals_with_datatype_lang_and_numbers() {
        let g = parse(
            r#"
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            <urn:s> <urn:str> "plain" ;
                <urn:lang> "bonjour"@fr ;
                <urn:typed> "7"^^xsd:integer ;
                <urn:num> 42 ;
                <urn:dec> 3.25 ;
                <urn:flag> true .
            "#,
        )
        .unwrap();
        assert_eq!(g.len(), 6);
        let s = Iri::new("urn:s").unwrap();
        let num = g.object(&s, &Iri::new("urn:num").unwrap()).unwrap();
        assert_eq!(num.as_literal().unwrap().as_integer(), Some(42));
        let flag = g.object(&s, &Iri::new("urn:flag").unwrap()).unwrap();
        assert_eq!(flag.as_literal().unwrap().as_boolean(), Some(true));
        let lang = g.object(&s, &Iri::new("urn:lang").unwrap()).unwrap();
        assert_eq!(lang.as_literal().unwrap().language.as_deref(), Some("fr"));
    }

    #[test]
    fn parse_blank_nodes() {
        let g = parse(r#"_:b0 <urn:p> _:b1 . _:b1 <urn:q> "x" ."#).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&Triple::new(
            Term::Blank("b0".into()),
            Iri::new("urn:p").unwrap(),
            Term::Blank("b1".into())
        )));
    }

    #[test]
    fn parse_comments_and_whitespace() {
        let g = parse("# leading comment\n<urn:s> <urn:p> <urn:o> . # trailing\n# done\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_string_escapes() {
        let g = parse(r#"<urn:s> <urn:p> "a\"b\\c\nd" ."#).unwrap();
        let s = Iri::new("urn:s").unwrap();
        let lit = g.object(&s, &Iri::new("urn:p").unwrap()).unwrap();
        assert_eq!(lit.as_literal().unwrap().lexical, "a\"b\\c\nd");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("<urn:s> <urn:p>\n<urn:o>\n;;;").unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert!(line >= 2, "line {line}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_reported() {
        let err = parse("<urn:s> nope:p <urn:o> .").unwrap_err();
        assert_eq!(err, RdfError::UnknownPrefix("nope".into()));
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(parse("<urn:s <urn:p> <urn:o> .").is_err());
        assert!(parse(r#"<urn:s> <urn:p> "open ."#).is_err());
        assert!(parse("<urn:s> <urn:p> .").is_err(), "missing object");
    }

    #[test]
    fn serialize_then_parse_roundtrips() {
        let original = parse(
            r#"
            @prefix acl: <http://www.w3.org/ns/auth/acl#> .
            <urn:auth> a acl:Authorization ;
                acl:agent <urn:alice> ;
                acl:mode acl:Read, acl:Write .
            _:meta <urn:note> "with \"escapes\" and\nnewlines"@en ;
                <urn:count> 3 .
            "#,
        )
        .unwrap();
        let text = serialize(&original);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert!(
            original.is_isomorphic_simple(&reparsed),
            "roundtrip mismatch:\n{text}"
        );
    }

    #[test]
    fn serializer_emits_only_used_prefixes() {
        let g = parse(r#"<urn:s> <urn:p> "v" ."#).unwrap();
        let text = serialize(&g);
        assert!(!text.contains("@prefix"), "no prefixes needed:\n{text}");
    }

    #[test]
    fn serializer_groups_by_subject() {
        let g = parse(r#"<urn:s> <urn:p> "1" . <urn:s> <urn:q> "2" ."#).unwrap();
        let text = serialize(&g);
        assert_eq!(text.matches("<urn:s>").count(), 1, "one group:\n{text}");
        assert!(text.contains(";"));
    }

    #[test]
    fn serializer_uses_a_for_rdf_type() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("urn:x"),
            vocab::rdf::type_(),
            Term::iri("urn:T"),
        ));
        let text = serialize(&g);
        assert!(text.contains(" a "), "{text}");
    }

    #[test]
    fn dotted_local_names_parse() {
        // Local name containing a dot followed by '.' terminator.
        let g = parse("@prefix ex: <urn:ns/> .\nex:file.txt <urn:p> ex:v1.2 .").unwrap();
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject, Term::iri("urn:ns/file.txt"));
        assert_eq!(t.object, Term::iri("urn:ns/v1.2"));
    }

    #[test]
    fn negative_integers_parse() {
        let g = parse("<urn:s> <urn:p> -5 .").unwrap();
        let s = Iri::new("urn:s").unwrap();
        let lit = g.object(&s, &Iri::new("urn:p").unwrap()).unwrap();
        assert_eq!(lit.as_literal().unwrap().as_integer(), Some(-5));
    }
}
