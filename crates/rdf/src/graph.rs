//! An indexed, set-semantics RDF graph.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::term::{Iri, Term, Triple};

/// An RDF graph: a set of triples with subject and predicate indexes for the
/// lookups Solid documents need (ACL checks, policy extraction).
///
/// Iteration order is deterministic (insertion order of first occurrence),
/// which keeps serialized documents and therefore content hashes stable.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    triples: Vec<Triple>,
    present: HashSet<Triple>,
    by_subject: HashMap<Term, Vec<usize>>,
    by_predicate: HashMap<Iri, Vec<usize>>,
    tombstones: BTreeSet<usize>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        if self.present.contains(&triple) {
            return false;
        }
        let idx = self.triples.len();
        self.by_subject
            .entry(triple.subject.clone())
            .or_default()
            .push(idx);
        self.by_predicate
            .entry(triple.predicate.clone())
            .or_default()
            .push(idx);
        self.present.insert(triple.clone());
        self.triples.push(triple);
        true
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        if !self.present.remove(triple) {
            return false;
        }
        if let Some(idx) = self.triples.iter().position(|t| t == triple) {
            self.tombstones.insert(idx);
        }
        true
    }

    /// Whether the graph contains `triple`.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.present.contains(triple)
    }

    /// Iterates live triples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples
            .iter()
            .enumerate()
            .filter(move |(i, t)| !self.tombstones.contains(i) && self.present.contains(*t))
            .map(|(_, t)| t)
    }

    /// Triples with the given subject.
    pub fn triples_for_subject<'a>(
        &'a self,
        subject: &'a Term,
    ) -> impl Iterator<Item = &'a Triple> {
        self.by_subject
            .get(subject)
            .into_iter()
            .flatten()
            .filter(move |&&i| !self.tombstones.contains(&i))
            .map(move |&i| &self.triples[i])
            .filter(move |t| self.present.contains(*t))
    }

    /// Triples with the given predicate.
    pub fn triples_for_predicate<'a>(
        &'a self,
        predicate: &'a Iri,
    ) -> impl Iterator<Item = &'a Triple> {
        self.by_predicate
            .get(predicate)
            .into_iter()
            .flatten()
            .filter(move |&&i| !self.tombstones.contains(&i))
            .map(move |&i| &self.triples[i])
            .filter(move |t| self.present.contains(*t))
    }

    /// Pattern match with optional components (`None` = wildcard).
    pub fn matching<'a>(
        &'a self,
        subject: Option<&'a Term>,
        predicate: Option<&'a Iri>,
        object: Option<&'a Term>,
    ) -> impl Iterator<Item = &'a Triple> {
        self.iter().filter(move |t| {
            subject.is_none_or(|s| &t.subject == s)
                && predicate.is_none_or(|p| &t.predicate == p)
                && object.is_none_or(|o| &t.object == o)
        })
    }

    /// Objects of `(subject, predicate, ?)` statements.
    ///
    /// The returned iterator borrows only the graph, so callers may pass
    /// temporary subject/predicate references.
    pub fn objects<'a>(&'a self, subject: &Iri, predicate: &Iri) -> impl Iterator<Item = &'a Term> {
        let subject_term = Term::Iri(subject.clone());
        let predicate = predicate.clone();
        self.by_subject
            .get(&subject_term)
            .into_iter()
            .flatten()
            .filter(move |&&i| !self.tombstones.contains(&i))
            .map(move |&i| &self.triples[i])
            .filter(move |t| self.present.contains(*t) && t.predicate == predicate)
            .map(|t| &t.object)
    }

    /// The first object of `(subject, predicate, ?)`, if any.
    pub fn object(&self, subject: &Iri, predicate: &Iri) -> Option<&Term> {
        self.objects(subject, predicate).next()
    }

    /// Subjects of `(?, predicate, object)` statements.
    ///
    /// The returned iterator borrows only the graph, so callers may pass
    /// temporary predicate/object references.
    pub fn subjects<'a>(
        &'a self,
        predicate: &Iri,
        object: &Term,
    ) -> impl Iterator<Item = &'a Term> {
        let predicate = predicate.clone();
        let object = object.clone();
        self.by_predicate
            .get(&predicate)
            .into_iter()
            .flatten()
            .filter(move |&&i| !self.tombstones.contains(&i))
            .map(move |&i| &self.triples[i])
            .filter(move |t| self.present.contains(*t) && t.object == object)
            .map(|t| &t.subject)
    }

    /// Merges all triples of `other` into `self`; returns how many were new.
    pub fn merge(&mut self, other: &Graph) -> usize {
        other.iter().filter(|t| self.insert((*t).clone())).count()
    }

    /// Whether both graphs contain exactly the same triple set
    /// (blank-node labels are compared literally, which suffices for the
    /// program-generated documents in this workspace).
    pub fn is_isomorphic_simple(&self, other: &Graph) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(t))
    }
}

impl PartialEq for Graph {
    /// Triple-set equality (insertion order and tombstones are internal
    /// bookkeeping, not part of a graph's identity).
    fn eq(&self, other: &Self) -> bool {
        self.is_isomorphic_simple(other)
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Graph {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::rdf;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::iri(s), iri(p), o)
    }

    #[test]
    fn insert_dedupes() {
        let mut g = Graph::new();
        assert!(g.insert(t("urn:s", "urn:p", Term::literal_int(1))));
        assert!(!g.insert(t("urn:s", "urn:p", Term::literal_int(1))));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut g = Graph::new();
        let triple = t("urn:s", "urn:p", Term::iri("urn:o"));
        g.insert(triple.clone());
        assert!(g.contains(&triple));
        assert!(g.remove(&triple));
        assert!(!g.contains(&triple));
        assert!(!g.remove(&triple), "double remove is false");
        assert_eq!(g.len(), 0);
        assert_eq!(g.iter().count(), 0);
    }

    #[test]
    fn reinsert_after_remove() {
        let mut g = Graph::new();
        let triple = t("urn:s", "urn:p", Term::literal_str("x"));
        g.insert(triple.clone());
        g.remove(&triple);
        assert!(g.insert(triple.clone()));
        assert!(g.contains(&triple));
        assert_eq!(g.iter().count(), 1);
    }

    #[test]
    fn subject_and_predicate_indexes() {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p1", Term::literal_int(1)));
        g.insert(t("urn:a", "urn:p2", Term::literal_int(2)));
        g.insert(t("urn:b", "urn:p1", Term::literal_int(3)));
        let a = Term::iri("urn:a");
        assert_eq!(g.triples_for_subject(&a).count(), 2);
        let p1 = iri("urn:p1");
        assert_eq!(g.triples_for_predicate(&p1).count(), 2);
    }

    #[test]
    fn pattern_matching_with_wildcards() {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", Term::iri("urn:x")));
        g.insert(t("urn:b", "urn:p", Term::iri("urn:x")));
        g.insert(t("urn:a", "urn:q", Term::iri("urn:y")));
        let p = iri("urn:p");
        let x = Term::iri("urn:x");
        assert_eq!(g.matching(None, Some(&p), None).count(), 2);
        assert_eq!(g.matching(None, None, Some(&x)).count(), 2);
        let a = Term::iri("urn:a");
        assert_eq!(g.matching(Some(&a), None, None).count(), 2);
        assert_eq!(g.matching(None, None, None).count(), 3);
        assert_eq!(g.matching(Some(&a), Some(&p), Some(&x)).count(), 1);
    }

    #[test]
    fn object_and_subjects_lookups() {
        let mut g = Graph::new();
        g.insert(t(
            "urn:alice",
            rdf::type_().as_str(),
            Term::iri("urn:Person"),
        ));
        g.insert(t("urn:bob", rdf::type_().as_str(), Term::iri("urn:Person")));
        let alice = iri("urn:alice");
        assert_eq!(
            g.object(&alice, &rdf::type_()),
            Some(&Term::iri("urn:Person"))
        );
        let person = Term::iri("urn:Person");
        let subjects: Vec<_> = g.subjects(&rdf::type_(), &person).collect();
        assert_eq!(subjects.len(), 2);
        let missing = iri("urn:carol");
        assert_eq!(g.object(&missing, &rdf::type_()), None);
    }

    #[test]
    fn merge_counts_new_triples() {
        let mut g1 = Graph::new();
        g1.insert(t("urn:s", "urn:p", Term::literal_int(1)));
        let mut g2 = Graph::new();
        g2.insert(t("urn:s", "urn:p", Term::literal_int(1)));
        g2.insert(t("urn:s", "urn:p", Term::literal_int(2)));
        assert_eq!(g1.merge(&g2), 1);
        assert_eq!(g1.len(), 2);
    }

    #[test]
    fn simple_isomorphism() {
        let triples = vec![
            t("urn:s", "urn:p", Term::literal_int(1)),
            t("urn:s", "urn:q", Term::literal_int(2)),
        ];
        let g1: Graph = triples.clone().into_iter().collect();
        let g2: Graph = triples.into_iter().rev().collect();
        assert!(g1.is_isomorphic_simple(&g2));
        let mut g3 = g2.clone();
        g3.insert(t("urn:s", "urn:r", Term::literal_int(3)));
        assert!(!g1.is_isomorphic_simple(&g3));
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.insert(t("urn:s", "urn:p", Term::literal_int(i)));
        }
        let order: Vec<i64> = g
            .iter()
            .map(|t| t.object.as_literal().unwrap().as_integer().unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
