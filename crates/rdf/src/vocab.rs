//! Vocabularies used by the architecture's RDF documents.
//!
//! Each module exposes one namespace as constructor functions returning
//! validated [`Iri`]s. The `duc` vocabulary is this project's own namespace
//! for usage-control terms that have no direct ODRL/WAC equivalent.

use crate::term::Iri;

macro_rules! vocab {
    ($mod_name:ident, $ns:expr, [$($term:ident => $local:expr),* $(,)?]) => {
        /// Namespace module (see crate docs).
        pub mod $mod_name {
            use super::Iri;

            /// The namespace IRI prefix.
            pub const NS: &str = $ns;

            /// The namespace as an [`Iri`].
            pub fn ns() -> Iri {
                Iri::new(NS).expect("static namespace is valid")
            }

            $(
                /// Vocabulary term (see module namespace).
                pub fn $term() -> Iri {
                    Iri::new(concat!($ns, $local)).expect("static term is valid")
                }
            )*
        }
    };
}

vocab!(rdf, "http://www.w3.org/1999/02/22-rdf-syntax-ns#", [
    type_ => "type",
]);

vocab!(rdfs, "http://www.w3.org/2000/01/rdf-schema#", [
    label => "label",
    comment => "comment",
]);

vocab!(xsd, "http://www.w3.org/2001/XMLSchema#", [
    string => "string",
    integer => "integer",
    boolean => "boolean",
    date_time => "dateTime",
    decimal => "decimal",
]);

vocab!(foaf, "http://xmlns.com/foaf/0.1/", [
    person => "Person",
    name => "name",
    mbox => "mbox",
]);

// W3C Web Access Control (the ACL model Solid uses).
vocab!(acl, "http://www.w3.org/ns/auth/acl#", [
    authorization => "Authorization",
    agent => "agent",
    agent_class => "agentClass",
    agent_group => "agentGroup",
    mode => "mode",
    read => "Read",
    write => "Write",
    append => "Append",
    control => "Control",
    access_to => "accessTo",
    default => "default",
    authenticated_agent => "AuthenticatedAgent",
]);

vocab!(foaf_agent, "http://xmlns.com/foaf/0.1/", [
    agent_class => "Agent",
]);

// ODRL-inspired usage-policy vocabulary.
vocab!(odrl, "http://www.w3.org/ns/odrl/2/", [
    policy => "Policy",
    permission => "permission",
    prohibition => "prohibition",
    duty => "duty",
    action => "action",
    target => "target",
    assigner => "assigner",
    assignee => "assignee",
    constraint => "constraint",
    left_operand => "leftOperand",
    operator => "operator",
    right_operand => "rightOperand",
    purpose => "purpose",
    date_time => "dateTime",
    count => "count",
    use_ => "use",
    read => "read",
    modify => "modify",
    delete => "delete",
    distribute => "distribute",
    lteq => "lteq",
    gteq => "gteq",
    eq => "eq",
    is_any_of => "isAnyOf",
]);

// Solid terms.
vocab!(solid, "http://www.w3.org/ns/solid/terms#", [
    pod => "Pod",
    owner => "owner",
    storage_quota => "storageQuota",
]);

// Project-specific usage-control terms.
vocab!(duc, "https://w3id.org/duc/ns#", [
    usage_policy => "UsagePolicy",
    retention_limit => "retentionLimit",
    allowed_purpose => "allowedPurpose",
    max_access_count => "maxAccessCount",
    allowed_recipient => "allowedRecipient",
    deletion_obligation => "deletionObligation",
    notify_obligation => "notifyObligation",
    resource_location => "resourceLocation",
    policy_version => "policyVersion",
    registered_at => "registeredAt",
    log_obligation => "logObligation",
    not_before => "notBefore",
    not_after => "notAfter",
]);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_valid_iris() {
        assert_eq!(
            rdf::type_().as_str(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        );
        assert_eq!(
            xsd::integer().as_str(),
            "http://www.w3.org/2001/XMLSchema#integer"
        );
        assert_eq!(acl::read().as_str(), "http://www.w3.org/ns/auth/acl#Read");
        assert_eq!(
            odrl::permission().as_str(),
            "http://www.w3.org/ns/odrl/2/permission"
        );
        assert_eq!(
            duc::retention_limit().as_str(),
            "https://w3id.org/duc/ns#retentionLimit"
        );
    }

    #[test]
    fn ns_accessor_matches_constant() {
        assert_eq!(acl::ns().as_str(), acl::NS);
        assert_eq!(odrl::ns().as_str(), odrl::NS);
    }

    #[test]
    fn distinct_vocabularies_do_not_collide() {
        assert_ne!(odrl::read(), acl::read());
    }
}
