//! Property test: any generated graph survives a serialize → parse roundtrip.

use duc_rdf::{turtle, Graph, Iri, Literal, Term, Triple};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = Iri> {
    // Program-generated IRIs: scheme + safe path characters.
    "[a-z][a-z0-9]{0,8}".prop_map(|s| Iri::new(format!("urn:duc:{s}")).expect("safe iri"))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Arbitrary printable strings, exercising the escaper.
        "[ -~]{0,24}".prop_map(Literal::string),
        any::<i64>().prop_map(Literal::integer),
        any::<bool>().prop_map(Literal::boolean),
        ("[ -~]{0,12}", "[a-z]{2}").prop_map(|(s, l)| Literal::lang_string(s, l)),
        "[\\PC]{0,16}".prop_map(Literal::string), // unicode without control chars
    ]
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        "[a-z][a-z0-9]{0,6}".prop_map(Term::Blank),
    ]
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        "[a-z][a-z0-9]{0,6}".prop_map(Term::Blank),
        arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((arb_subject(), arb_iri(), arb_object()), 0..40).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(s, p, o)| Triple::new(s, p, o))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(graph in arb_graph()) {
        let text = turtle::serialize(&graph);
        let reparsed = turtle::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert!(
            graph.is_isomorphic_simple(&reparsed),
            "roundtrip mismatch\n---\n{}", text
        );
    }

    /// The parser must never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in "[ -~\\n\\t]{0,300}") {
        let _ = turtle::parse(&input);
    }

    /// Graph insert/remove maintain exact set semantics.
    #[test]
    fn graph_set_semantics(
        ops in proptest::collection::vec((any::<bool>(), 0usize..12), 1..60)
    ) {
        let mut graph = Graph::new();
        let mut model = std::collections::HashSet::new();
        for (insert, key) in ops {
            let triple = Triple::new(
                Term::iri("urn:s"),
                Iri::new(format!("urn:p{key}")).unwrap(),
                Term::literal_int(key as i64),
            );
            if insert {
                prop_assert_eq!(graph.insert(triple.clone()), model.insert(triple));
            } else {
                prop_assert_eq!(graph.remove(&triple), model.remove(&triple));
            }
        }
        prop_assert_eq!(graph.len(), model.len());
        for t in graph.iter() {
            prop_assert!(model.contains(t));
        }
    }
}
