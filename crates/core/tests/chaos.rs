//! Deterministic chaos suite: seeded random fault plans thrown at batches
//! of concurrent in-flight processes, with the architecture invariants of
//! [`duc_core::chaos`] checked after every run.
//!
//! Reproducing a failure: every assertion message carries the
//! `(world_seed, chaos_seed)` pair; rerun with
//! `DUC_CHAOS_SEEDS=<world_seed>` (see README § chaos harness). Set
//! `DUC_LEDGER_BACKEND=sharded` to run the identical matrix over the
//! [`duc_blockchain::ShardedLedger`] backend (CI runs both).

use duc_blockchain::{Ledger, PagingConfig, PagingStats, StorageConfig};
use duc_core::chaos::{self, fixed_link};
use duc_core::prelude::*;
use duc_sim::{FaultPlan, SimDuration};
use proptest::prelude::*;

const OWNER: &str = "https://owner.id/me";
const PATH: &str = "data/set.bin";

fn world_config(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        link: fixed_link(10),
        trace: true,
        shards: 4,
        ..WorldConfig::default()
    }
}

/// Whether the matrix runs over the sharded backend
/// (`DUC_LEDGER_BACKEND=sharded`; `single`/unset select the legacy chain).
/// Any other value panics so a typo cannot silently test the wrong
/// backend.
fn sharded_backend() -> bool {
    match std::env::var("DUC_LEDGER_BACKEND") {
        Err(_) => false,
        Ok(v) if v.eq_ignore_ascii_case("single") => false,
        Ok(v) if v.eq_ignore_ascii_case("sharded") => true,
        Ok(v) => panic!("DUC_LEDGER_BACKEND must be \"single\" or \"sharded\", got {v:?}"),
    }
}

/// One chaos run on `world`: a seeded random fault plan against a mixed
/// batch of `n` concurrent accesses plus two monitoring rounds. Returns
/// the run fingerprint and the ok/failed split. Panics (with the seeds) on
/// any violated invariant or unresolved ticket.
fn chaos_run_in<L: Ledger>(
    world: World<L>,
    world_seed: u64,
    chaos_seed: u64,
    n: usize,
) -> (String, usize, usize) {
    let (mut world, resource) = chaos::launch_pad_in(world, OWNER, PATH, n);
    // Windows open within 15 s of submission, squarely over the batch's
    // active phase, so most plans genuinely hit in-flight hops.
    let plan = chaos::random_plan(&world, chaos_seed, SimDuration::from_secs(15), 5);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, n);
    let requests = batch.len();
    let run = chaos::run_chaos(&mut world, batch, plan)
        .unwrap_or_else(|e| panic!("world_seed={world_seed} chaos_seed={chaos_seed}: {e}"));
    assert_eq!(
        run.outcomes.len(),
        requests,
        "world_seed={world_seed} chaos_seed={chaos_seed}: not every ticket resolved"
    );
    (chaos::fingerprint(&mut world), run.ok, run.failed)
}

/// Dispatches one chaos run onto the backend selected by
/// `DUC_LEDGER_BACKEND`.
fn chaos_run(world_seed: u64, chaos_seed: u64, n: usize) -> (String, usize, usize) {
    if sharded_backend() {
        chaos_run_in(
            World::new_sharded(world_config(world_seed)),
            world_seed,
            chaos_seed,
            n,
        )
    } else {
        chaos_run_in(
            World::new(world_config(world_seed)),
            world_seed,
            chaos_seed,
            n,
        )
    }
}

/// The CI chaos gate: a small fixed seed matrix (overridable via
/// `DUC_CHAOS_SEEDS=<comma-separated world seeds>`) of random fault plans,
/// each run twice to prove byte-identical replay.
#[test]
fn chaos_seed_matrix_resolves_and_replays() {
    let seeds = std::env::var("DUC_CHAOS_SEEDS").unwrap_or_else(|_| "11,23,42,77,1234".into());
    for seed in seeds.split(',') {
        let world_seed: u64 = seed.trim().parse().expect("DUC_CHAOS_SEEDS must be u64s");
        let chaos_seed = world_seed.wrapping_mul(31).wrapping_add(7);
        let (fp1, ok, failed) = chaos_run(world_seed, chaos_seed, 6);
        let (fp2, _, _) = chaos_run(world_seed, chaos_seed, 6);
        assert_eq!(
            fp1, fp2,
            "world_seed={world_seed} chaos_seed={chaos_seed}: replay diverged"
        );
        assert_eq!(ok + failed, 8);
        println!("chaos world_seed={world_seed} chaos_seed={chaos_seed}: ok={ok} failed={failed}");
    }
}

/// A plan whose windows all heal must let every request succeed eventually
/// — recovery, not just typed failure.
#[test]
fn healing_faults_still_complete_some_work() {
    let (mut world, resource) = chaos::launch_pad_in(World::new(world_config(9)), OWNER, PATH, 4);
    let dev = world.device("device-0").endpoint;
    let relay = world.push_in.relay;
    // The canonical healing plan: a crash window over the device and a
    // partition on its uplink, both healing; accesses suspend and resume.
    let plan = chaos::healing_plan(world.clock.now(), dev, relay);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, 4);
    let run = chaos::run_chaos(&mut world, batch, plan).expect("invariants hold");
    assert_eq!(
        run.ok,
        run.outcomes.len(),
        "every request recovered: {:?}",
        run.outcomes
    );
    assert!(
        world.metrics.counter("driver.hop.suspended") > 0,
        "the crash window suspended at least one hop"
    );
}

/// The policy-churn scenario class: a mid-flight policy modification
/// (retention tightened to zero) racing re-accesses and monitoring rounds
/// under a healing fault plan. Every ticket resolves, the shared
/// invariants hold, and identically-seeded runs replay byte-identically.
#[test]
fn policy_churn_mid_flight_resolves_and_replays() {
    let run = |seed: u64| {
        let (mut world, resource) =
            chaos::launch_pad_in(World::new(world_config(seed)), OWNER, PATH, 4);
        let dev = world.device("device-0").endpoint;
        let relay = world.push_in.relay;
        let plan = chaos::healing_plan(world.clock.now(), dev, relay);
        let batch = chaos::policy_churn_batch(OWNER, PATH, &resource, 4);
        let requests = batch.len();
        let run = chaos::run_chaos(&mut world, batch, plan).expect("invariants hold");
        assert_eq!(run.outcomes.len(), requests, "every ticket resolves");
        // The tightened policy reached at least one holder: either the
        // fan-out deleted copies outright or the re-access re-registered
        // them afterwards — in both cases the policy version advanced.
        let record = world
            .dex
            .lookup_resource(&world.chain, &resource)
            .expect("view")
            .expect("registered");
        assert_eq!(record.policy_version, 2, "the mid-flight update landed");
        (chaos::fingerprint(&mut world), run.ok, run.failed)
    };
    let (fp1, ok, failed) = run(77);
    let (fp2, ok2, failed2) = run(77);
    assert_eq!((ok, failed), (ok2, failed2));
    assert_eq!(fp1, fp2, "policy churn replays byte-identically");
}

/// Pruning mid-flight: a world checkpointing every 2 blocks with a 2-block
/// retained window runs the mixed batch under lossy drop windows over the
/// relay's uplinks, so hops retry across block boundaries while the chain
/// evicts history behind its checkpoints. Every ticket still resolves, the
/// prune-aware invariants hold (cursors within `[prune_horizon, height]`,
/// checkpoint commitments intact), and identically-seeded runs replay
/// byte-identically. Runs on both ledger backends via
/// `DUC_LEDGER_BACKEND`.
#[test]
fn pruning_mid_flight_under_drop_windows_resolves_and_replays() {
    let run = |seed: u64| {
        let config = WorldConfig {
            storage: StorageConfig::enabled(2, 2),
            ..world_config(seed)
        };
        if sharded_backend() {
            let (mut world, resource) =
                chaos::launch_pad_in(World::new_sharded(config), OWNER, PATH, 4);
            run_pruned_batch(&mut world, &resource, seed)
        } else {
            let (mut world, resource) = chaos::launch_pad_in(World::new(config), OWNER, PATH, 4);
            run_pruned_batch(&mut world, &resource, seed)
        }
    };
    let (fp1, ok, failed) = run(31);
    let (fp2, ok2, failed2) = run(31);
    assert_eq!((ok, failed), (ok2, failed2));
    assert_eq!(fp1, fp2, "mid-flight pruning replays byte-identically");
}

/// Shared body of the mid-flight pruning run: lossy drop windows over the
/// batch's active phase, the mixed batch, and the post-run pruning
/// assertions.
fn run_pruned_batch<L: Ledger>(
    world: &mut World<L>,
    resource: &str,
    seed: u64,
) -> (String, usize, usize) {
    let dev = world.device("device-0").endpoint;
    let relay = world.push_in.relay;
    let now = world.clock.now();
    let plan = FaultPlan::none()
        .drop_window(dev, relay, now, now + SimDuration::from_secs(10), 400)
        .drop_window(
            relay,
            world.gateway,
            now + SimDuration::from_secs(5),
            now + SimDuration::from_secs(15),
            300,
        );
    let batch = chaos::mixed_batch(OWNER, PATH, resource, 4);
    let requests = batch.len();
    let run = chaos::run_chaos(world, batch, plan).unwrap_or_else(|e| panic!("seed={seed}: {e}"));
    assert_eq!(
        run.outcomes.len(),
        requests,
        "seed={seed}: every ticket resolves"
    );
    // The merged horizon of a sharded ledger is a contiguous-prefix bound:
    // an idle shard whose only blocks head the merged log legitimately pins
    // it at 0, so the horizon check is single-chain-only. Eviction itself
    // shows on both backends as a resident window smaller than history.
    if world.chain.shard_count() == 1 {
        assert!(
            world.chain.prune_horizon() > 0,
            "seed={seed}: the run pruned history behind its checkpoints"
        );
    }
    assert!(
        (world.chain.retained_blocks() as u64) < world.chain.height(),
        "seed={seed}: the resident window is a strict subset of history"
    );
    (chaos::fingerprint(world), run.ok, run.failed)
}

/// The tentpole integrity case for the paged world state: the mixed batch
/// under lossy drop windows, run once on the default unbounded store and
/// once with a pathologically small resident budget (2 pages of 4 slots
/// each), must produce byte-identical fingerprints — eviction and fault-in
/// are pure residency moves, invisible to outcomes, gas, metrics and
/// replay. The paged run must actually page (its eviction and fault-in
/// counters both advance), and `check_invariants` inside `run_chaos`
/// re-verifies every page digest and the commitment accumulator after the
/// run. Runs on both ledger backends via `DUC_LEDGER_BACKEND`.
#[test]
fn paging_under_drop_windows_is_invisible_to_replay() {
    fn run(seed: u64, paging: Option<PagingConfig>) -> (String, usize, usize, PagingStats) {
        let config = WorldConfig {
            storage: match paging {
                Some(p) => StorageConfig::disabled().with_paging(p),
                None => StorageConfig::disabled(),
            },
            ..world_config(seed)
        };
        if sharded_backend() {
            run_dropped_batch(World::new_sharded(config), seed)
        } else {
            run_dropped_batch(World::new(config), seed)
        }
    }
    fn run_dropped_batch<L: Ledger>(
        world: World<L>,
        seed: u64,
    ) -> (String, usize, usize, PagingStats) {
        let (mut world, resource) = chaos::launch_pad_in(world, OWNER, PATH, 4);
        let dev = world.device("device-0").endpoint;
        let relay = world.push_in.relay;
        let now = world.clock.now();
        let plan = FaultPlan::none()
            .drop_window(dev, relay, now, now + SimDuration::from_secs(10), 400)
            .drop_window(
                relay,
                world.gateway,
                now + SimDuration::from_secs(5),
                now + SimDuration::from_secs(15),
                300,
            );
        let batch = chaos::mixed_batch(OWNER, PATH, &resource, 4);
        let requests = batch.len();
        let run = chaos::run_chaos(&mut world, batch, plan)
            .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
        assert_eq!(
            run.outcomes.len(),
            requests,
            "seed={seed}: every ticket resolves"
        );
        let stats = world.chain.paging_stats();
        (chaos::fingerprint(&mut world), run.ok, run.failed, stats)
    }

    let tight = PagingConfig::in_memory(Some(2)).with_page_capacity(4);
    let (fp_unpaged, ok, failed, base) = run(13, None);
    let (fp_paged, ok2, failed2, stats) = run(13, Some(tight));
    assert_eq!((ok, failed), (ok2, failed2));
    assert_eq!(
        fp_unpaged, fp_paged,
        "a 2-page resident budget must be invisible to replay"
    );
    assert_eq!(base.evictions, 0, "the unbounded store never evicts");
    assert!(
        stats.evictions > 0,
        "the tight budget actually paged: {stats:?}"
    );
    assert!(
        stats.fault_ins > 0,
        "evicted pages faulted back in: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any seeded random fault plan and request batch: every submitted
    /// ticket resolves (success or typed error — never pending after
    /// `run_until_idle`), all architecture invariants hold, and an
    /// identically-seeded rerun produces a byte-identical fingerprint
    /// (including the retry/backoff and suspension schedules, which are
    /// metric counters inside the fingerprint).
    #[test]
    fn any_seeded_fault_plan_resolves_every_ticket(
        world_seed in 0u64..500,
        chaos_seed in 0u64..10_000,
        n in 1usize..6,
    ) {
        let (fp1, ok, failed) = chaos_run(world_seed, chaos_seed, n);
        prop_assert_eq!(ok + failed, n + 2);
        let (fp2, ok2, failed2) = chaos_run(world_seed, chaos_seed, n);
        prop_assert_eq!(ok, ok2);
        prop_assert_eq!(failed, failed2);
        prop_assert_eq!(fp1, fp2, "identically-seeded chaos runs must replay byte-identically");
    }
}
