//! Deterministic chaos suite: seeded random fault plans thrown at batches
//! of concurrent in-flight processes, with the architecture invariants of
//! [`duc_core::chaos`] checked after every run.
//!
//! Reproducing a failure: every assertion message carries the
//! `(world_seed, chaos_seed)` pair; rerun with
//! `DUC_CHAOS_SEEDS=<world_seed>` (see README § chaos harness).

use duc_core::chaos;
use duc_core::prelude::*;
use duc_sim::{LatencyModel, LinkConfig, SimDuration};
use proptest::prelude::*;

const OWNER: &str = "https://owner.id/me";
const PATH: &str = "data/set.bin";

fn fixed_link(ms: u64) -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Constant(SimDuration::from_millis(ms)),
        drop_probability: 0.0,
        bandwidth_bps: Some(10_000_000),
    }
}

/// The shared chaos launch pad (`chaos::launch_pad`), with tracing on so
/// fingerprints cover the hop-level event stream.
fn market_world(n: usize, seed: u64) -> (World, String) {
    chaos::launch_pad(
        OWNER,
        PATH,
        n,
        WorldConfig {
            seed,
            link: fixed_link(10),
            trace: true,
            ..WorldConfig::default()
        },
    )
}

/// One chaos run: a seeded random fault plan against a mixed batch of `n`
/// concurrent accesses plus two monitoring rounds. Returns the run
/// fingerprint and the ok/failed split. Panics (with the seeds) on any
/// violated invariant or unresolved ticket.
fn chaos_run(world_seed: u64, chaos_seed: u64, n: usize) -> (String, usize, usize) {
    let (mut world, resource) = market_world(n, world_seed);
    // Windows open within 15 s of submission, squarely over the batch's
    // active phase, so most plans genuinely hit in-flight hops.
    let plan = chaos::random_plan(&world, chaos_seed, SimDuration::from_secs(15), 5);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, n);
    let requests = batch.len();
    let run = chaos::run_chaos(&mut world, batch, plan)
        .unwrap_or_else(|e| panic!("world_seed={world_seed} chaos_seed={chaos_seed}: {e}"));
    assert_eq!(
        run.outcomes.len(),
        requests,
        "world_seed={world_seed} chaos_seed={chaos_seed}: not every ticket resolved"
    );
    (chaos::fingerprint(&mut world), run.ok, run.failed)
}

/// The CI chaos gate: a small fixed seed matrix (overridable via
/// `DUC_CHAOS_SEEDS=<comma-separated world seeds>`) of random fault plans,
/// each run twice to prove byte-identical replay.
#[test]
fn chaos_seed_matrix_resolves_and_replays() {
    let seeds = std::env::var("DUC_CHAOS_SEEDS").unwrap_or_else(|_| "11,23,42,77,1234".into());
    for seed in seeds.split(',') {
        let world_seed: u64 = seed.trim().parse().expect("DUC_CHAOS_SEEDS must be u64s");
        let chaos_seed = world_seed.wrapping_mul(31).wrapping_add(7);
        let (fp1, ok, failed) = chaos_run(world_seed, chaos_seed, 6);
        let (fp2, _, _) = chaos_run(world_seed, chaos_seed, 6);
        assert_eq!(
            fp1, fp2,
            "world_seed={world_seed} chaos_seed={chaos_seed}: replay diverged"
        );
        assert_eq!(ok + failed, 8);
        println!("chaos world_seed={world_seed} chaos_seed={chaos_seed}: ok={ok} failed={failed}");
    }
}

/// A plan whose windows all heal must let every request succeed eventually
/// — recovery, not just typed failure.
#[test]
fn healing_faults_still_complete_some_work() {
    let (mut world, resource) = market_world(4, 9);
    let dev = world.device("device-0").endpoint;
    let relay = world.push_in.relay;
    let now = world.clock.now();
    // A crash window over the device and a partition on its uplink, both
    // healing after 8 s; accesses suspend and resume.
    let plan = duc_sim::FaultPlan::none()
        .crash(dev, now, now + SimDuration::from_secs(8))
        .partition(dev, relay, now + SimDuration::from_secs(8), now + SimDuration::from_secs(12));
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, 4);
    let run = chaos::run_chaos(&mut world, batch, plan).expect("invariants hold");
    assert_eq!(run.ok, run.outcomes.len(), "every request recovered: {:?}", run.outcomes);
    assert!(
        world.metrics.counter("driver.hop.suspended") > 0,
        "the crash window suspended at least one hop"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any seeded random fault plan and request batch: every submitted
    /// ticket resolves (success or typed error — never pending after
    /// `run_until_idle`), all architecture invariants hold, and an
    /// identically-seeded rerun produces a byte-identical fingerprint
    /// (including the retry/backoff and suspension schedules, which are
    /// metric counters inside the fingerprint).
    #[test]
    fn any_seeded_fault_plan_resolves_every_ticket(
        world_seed in 0u64..500,
        chaos_seed in 0u64..10_000,
        n in 1usize..6,
    ) {
        let (fp1, ok, failed) = chaos_run(world_seed, chaos_seed, n);
        prop_assert_eq!(ok + failed, n + 2);
        let (fp2, ok2, failed2) = chaos_run(world_seed, chaos_seed, n);
        prop_assert_eq!(ok, ok2);
        prop_assert_eq!(failed, failed2);
        prop_assert_eq!(fp1, fp2, "identically-seeded chaos runs must replay byte-identically");
    }
}
