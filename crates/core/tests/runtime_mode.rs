//! Runtime modes: the same world, scripted on both clocks.
//!
//! - The concurrent-market script produces the same outcome *set*
//!   (timing-free keys) in sim and wall-clock mode.
//! - A wall-mode run drains gracefully on shutdown: late injections are
//!   rejected, in-flight work completes, nothing is left dangling.
//! - `World::export_metrics` feeds the shared hub and the `/metrics`
//!   endpoint serves every migrated family (checked in-process, no curl).

use std::io::{Read as _, Write as _};

use duc_core::runtime::{market_world, outcome_set, run_wall, RuntimeMode};
use duc_core::{run_scripted, Request};
use duc_runtime::{DriveConfig, MetricsHub, MetricsServer, ShutdownSignal, Tick};
use duc_sim::SimDuration;

/// Logical seconds per real second in the wall-mode tests: the ~185 s
/// market script replays in under two real seconds, while jitter would
/// need to exceed the script's inter-phase margins (≥ 30 logical s,
/// i.e. ≥ 300 real ms of stall) to change any outcome.
const SCALE: u64 = 100;

#[test]
fn market_outcomes_match_across_modes() {
    let devices = 6;
    let (mut sim_world, sim_script) = market_world(devices, 7);
    let shutdown = ShutdownSignal::new();
    let sim_run = run_scripted(
        &mut sim_world,
        sim_script,
        RuntimeMode::Sim,
        None,
        &shutdown,
        &DriveConfig::default(),
    );

    let (mut wall_world, wall_script) = market_world(devices, 7);
    let wall_run = run_scripted(
        &mut wall_world,
        wall_script,
        RuntimeMode::Wall { scale: SCALE },
        None,
        &shutdown,
        &DriveConfig::default(),
    );

    let expected = devices * (1 + 2 + 2) + 2; // subscribe + 2 index + 2 access, 2 rounds
    assert_eq!(sim_run.outcomes.len(), expected);
    assert!(sim_run.report.drained && wall_run.report.drained);
    assert_eq!(
        outcome_set(&sim_run.outcomes),
        outcome_set(&wall_run.outcomes),
        "sim and wall modes must decide identically (timing ignored)"
    );
    // The survey copies' 90 s retention lapsed mid-run in both modes.
    assert!(sim_world.metrics.counter("enforcement.deletions") >= devices as u64);
    assert!(wall_world.metrics.counter("enforcement.deletions") >= devices as u64);
}

#[test]
fn wall_shutdown_drains_in_flight_and_rejects_late_injections() {
    let (mut world, _script) = market_world(3, 11);
    let t0 = world.clock.now();
    // Subscriptions happen synchronously in the script normally; here the
    // producer thread injects everything live instead.
    let early: Vec<Request> = (0..3)
        .map(|i| Request::MarketSubscribe {
            device: format!("device-{i}"),
        })
        .collect();
    let late: Vec<Request> = (0..3)
        .map(|i| Request::ResourceIndexing {
            device: format!("device-{i}"),
            resource: "ignored-after-shutdown".into(),
        })
        .collect();
    let n_early = early.len() as u64;
    let n_late = late.len() as u64;

    let shutdown = ShutdownSignal::new();
    let producer_shutdown = shutdown.clone();
    let run = run_wall(
        &mut world,
        Vec::new(),
        SCALE,
        None,
        &shutdown,
        &DriveConfig {
            drain_grace: SimDuration::from_secs(120),
            ..DriveConfig::default()
        },
        move |handle| {
            vec![std::thread::spawn(move || {
                for req in early {
                    handle.inject(Tick::Admit(req));
                }
                // Let the consumer pick the first batch up, then flip the
                // signal and keep injecting: those must be rejected.
                std::thread::sleep(std::time::Duration::from_millis(100));
                producer_shutdown.request();
                for req in late {
                    handle.inject(Tick::Admit(req));
                }
            })]
        },
    );

    assert_eq!(run.report.admitted + run.report.rejected, n_early + n_late);
    assert!(
        run.report.rejected >= n_late,
        "injections after the shutdown request must be rejected \
         (admitted {}, rejected {})",
        run.report.admitted,
        run.report.rejected
    );
    assert!(run.report.drained, "drain must finish within the grace");
    assert_eq!(world.in_flight(), 0, "nothing left dangling after drain");
    assert!(run.report.finished_at >= t0);
}

/// Scrapes `url` with a raw `TcpStream` and returns the response body.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    body.to_string()
}

#[test]
fn metrics_endpoint_serves_migrated_families() {
    // A short sim-mode market run populates every migrated surface:
    // network counters, per-method gas, TEE decision caches, process
    // latency histograms and — thanks to the 90 s survey retention —
    // the enforcement counters and lag histogram.
    let (mut world, script) = market_world(4, 13);
    let hub = MetricsHub::new();
    let shutdown = ShutdownSignal::new();
    let run = run_scripted(
        &mut world,
        script,
        RuntimeMode::Sim,
        Some(hub.clone()),
        &shutdown,
        &DriveConfig::default(),
    );
    assert!(run.report.exports >= 1, "final export always flushes");

    let server = MetricsServer::serve(hub.clone(), "127.0.0.1:0").expect("bind");
    let body = scrape(server.addr(), "/metrics");
    for family in [
        "# TYPE duc_net_messages_sent_total counter",
        "# TYPE duc_net_bytes_sent_total counter",
        "# TYPE duc_gas_used_total counter",
        "# TYPE duc_gas_calls_total counter",
        "# TYPE duc_tee_decision_cache_total counter",
        "# TYPE duc_enforcement_deletions_total counter",
        "# TYPE duc_enforcement_lag_seconds histogram",
        "# TYPE duc_process_access_e2e_seconds histogram",
        "# TYPE duc_state_resident_pages gauge",
        "# TYPE duc_state_resident_bytes gauge",
        "# TYPE duc_state_evictions_total counter",
        "# TYPE duc_state_fault_ins_total counter",
    ] {
        assert!(
            body.contains(family),
            "missing {family:?} in scrape:\n{body}"
        );
    }
    // Labelled series: gas is broken down by contract and method, the TEE
    // decision cache by result.
    assert!(body.contains("duc_gas_used_total{contract="), "{body}");
    assert!(
        body.contains("duc_tee_decision_cache_total{result=\"hit\"}"),
        "{body}"
    );
    // The state-residency gauges carry live values: a populated market
    // holds at least one resident page (the default paging config is
    // unbounded, so nothing has been evicted).
    let resident_pages: f64 = body
        .lines()
        .find(|l| l.starts_with("duc_state_resident_pages "))
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("resident-pages sample")
        .parse()
        .expect("numeric gauge");
    assert!(resident_pages >= 1.0, "{body}");
    assert_eq!(hub.counter("duc_state_evictions_total", &[]), 0);
    // Mirrored totals agree with the sim registry they came from.
    assert_eq!(
        hub.counter("duc_net_messages_sent_total", &[]),
        world.metrics.counter("net.messages_sent"),
    );
    assert_eq!(
        hub.counter("duc_enforcement_deletions_total", &[]),
        world.metrics.counter("enforcement.deletions"),
    );
    drop(server);
}
