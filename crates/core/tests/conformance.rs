//! Backend-conformance suite: the same scenario matrix and the same chaos
//! plans run against every [`Ledger`] backend — the legacy [`SingleChain`]
//! and the [`ShardedLedger`] — and the shared architecture invariants
//! (`duc_core::chaos::check_invariants`: certificates verify, TEE↔registry
//! copy consistency, gas conservation, cursors ≤ height) must hold on each.
//!
//! Timing differs across backends (that is the point of sharding), so the
//! suite compares *outcomes* — what happened — not fingerprints, which are
//! only required to replay byte-identically within one backend.

use duc_blockchain::{Checkpoint, ExecMode, Ledger, PagingConfig, StorageConfig};
use duc_codec::Encode;
use duc_core::chaos::{self, fixed_link};
use duc_core::prelude::*;
use duc_core::scenario;
use duc_sim::{FaultPlan, SimDuration};
use proptest::prelude::*;

const OWNER: &str = "https://owner.id/me";
const PATH: &str = "data/set.bin";

fn config(seed: u64, shards: usize) -> WorldConfig {
    WorldConfig {
        seed,
        link: fixed_link(10),
        trace: true,
        shards,
        ..WorldConfig::default()
    }
}

/// The §II scenario — the seed process matrix (all six processes plus the
/// market subscription) — must play out identically on any backend.
fn scenario_on<L: Ledger>(mut world: World<L>) -> (scenario::ScenarioReport, World<L>) {
    scenario::populate(&mut world);
    let report = scenario::run(&mut world).expect("fault-free scenario runs on every backend");
    (report, world)
}

#[test]
fn scenario_matrix_is_backend_agnostic() {
    let (single, single_world) = scenario_on(World::new(config(7, 1)));
    let (sharded, world) = scenario_on(World::new_sharded(config(7, 4)));

    // The observable outcome of every process is identical.
    assert_eq!(single.medical_iri, sharded.medical_iri);
    assert_eq!(single.browsing_iri, sharded.browsing_iri);
    assert_eq!(single.alice_got_bytes, sharded.alice_got_bytes);
    assert_eq!(single.bob_got_bytes, sharded.bob_got_bytes);
    assert_eq!(single.bob_copy_deleted, sharded.bob_copy_deleted);
    assert_eq!(single.alice_still_permitted, sharded.alice_still_permitted);
    assert_eq!(
        single.browsing_monitoring.violators,
        sharded.browsing_monitoring.violators
    );
    assert_eq!(
        single.medical_monitoring.evidence,
        sharded.medical_monitoring.evidence
    );
    // Per-method gas matches: the same scenario transactions executed,
    // just spread over more chains. (`init` is excluded — multi-chain
    // genesis runs it once per shard by design.)
    let gas_single = single_world.chain.gas_by_method();
    let gas_sharded = world.chain.gas_by_method();
    for (key, row) in &gas_single {
        if key.1 == "init" {
            continue;
        }
        assert_eq!(gas_sharded.get(key), Some(row), "gas drifted for {key:?}");
    }

    // The invariant sweep holds on the sharded world too.
    chaos::check_invariants(&world).expect("invariants on sharded backend");
    world
        .chain
        .validate_chains()
        .expect("every shard validates");
}

/// Absolute golden pin for the §II scenario: exact process outcomes and
/// exact per-method gas on both backends. The relative matrix above proves
/// the backends agree with *each other*; this test proves they agree with
/// *history* — any refactor that drifts a single gas unit or flips one
/// outcome fails here, even if it drifts both backends identically.
#[test]
fn golden_scenario_outcomes_and_gas_are_pinned() {
    // (method, calls, total gas, mean gas) on the single-chain backend.
    // Pinned against the compact row encodings (pol-table layout): every
    // method except `register_pod` got cheaper — rows shed repeated
    // identity strings and embedded envelopes — while `register_pod` pays
    // for seeding the shared `pol/` row alongside its own.
    const GOLD: &[(&str, u64, u64, u64)] = &[
        ("init", 1, 78_478, 78_478),
        ("record_evidence", 1, 211_252, 211_252),
        ("register_copy", 2, 172_452, 86_226),
        ("register_pod", 2, 380_750, 190_375),
        ("register_resource", 2, 516_995, 258_497),
        ("start_monitoring", 2, 332_580, 166_290),
        ("subscribe", 2, 226_942, 113_471),
        ("unregister_copy", 1, 62_228, 62_228),
        ("update_policy", 2, 518_731, 259_365),
    ];
    const TOTAL_GAS_SINGLE: u64 = 2_500_408;
    // The sharded total differs only by genesis: four shards each run
    // `init` once (4 × 78 478 instead of 1 × 78 478).
    const TOTAL_GAS_SHARDED: u64 = 2_735_842;

    fn outcomes(label: &str, report: &scenario::ScenarioReport) {
        assert_eq!(report.alice_got_bytes, 152, "{label}: alice bytes");
        assert_eq!(report.bob_got_bytes, 480, "{label}: bob bytes");
        assert!(report.bob_copy_deleted, "{label}: bob deleted");
        assert!(report.alice_still_permitted, "{label}: alice permitted");
        assert_eq!(report.browsing_monitoring.expected, 0, "{label}");
        assert_eq!(report.browsing_monitoring.evidence, 0, "{label}");
        assert!(report.browsing_monitoring.violators.is_empty(), "{label}");
        assert_eq!(report.medical_monitoring.expected, 1, "{label}");
        assert_eq!(report.medical_monitoring.evidence, 1, "{label}");
    }
    fn gas_pinned(
        label: &str,
        gas: &std::collections::BTreeMap<(String, String), (u64, u64, u64)>,
        gold: &[(&str, u64, u64, u64)],
    ) {
        assert_eq!(gas.len(), gold.len(), "{label}: unexpected methods {gas:?}");
        for (method, calls, total, mean) in gold {
            let key = ("dist-exchange".to_string(), method.to_string());
            assert_eq!(
                gas.get(&key),
                Some(&(*calls, *total, *mean)),
                "{label}: gas drifted for {method}"
            );
        }
    }

    let (single, single_world) = scenario_on(World::new(config(7, 1)));
    outcomes("single", &single);
    assert_eq!(single.total_gas, TOTAL_GAS_SINGLE, "single total gas");
    gas_pinned("single", &single_world.chain.gas_by_method(), GOLD);

    let (sharded, sharded_world) = scenario_on(World::new_sharded(config(7, 4)));
    outcomes("sharded", &sharded);
    assert_eq!(sharded.total_gas, TOTAL_GAS_SHARDED, "sharded total gas");
    let gold_sharded: Vec<(&str, u64, u64, u64)> = GOLD
        .iter()
        .map(|&(m, calls, total, mean)| {
            if m == "init" {
                (m, 4, 4 * total, mean)
            } else {
                (m, calls, total, mean)
            }
        })
        .collect();
    gas_pinned(
        "sharded",
        &sharded_world.chain.gas_by_method(),
        &gold_sharded,
    );

    // The same scenario with pruning enabled (checkpoint every 4 blocks,
    // 8-block resident window) must reproduce the pins to the gas unit:
    // pruning may only change what stays resident, never what happened.
    let pruned_single = WorldConfig {
        storage: StorageConfig::enabled(4, 8),
        ..config(7, 1)
    };
    let (pruned, pruned_world) = scenario_on(World::new(pruned_single));
    outcomes("single+prune", &pruned);
    assert_eq!(pruned.total_gas, TOTAL_GAS_SINGLE, "pruned total gas");
    gas_pinned("single+prune", &pruned_world.chain.gas_by_method(), GOLD);
    assert!(
        pruned_world.chain.prune_horizon() > 0,
        "the golden scenario is long enough to prune"
    );
    pruned_world
        .chain
        .verify_checkpoints()
        .expect("pruned golden checkpoints");

    let pruned_sharded = WorldConfig {
        storage: StorageConfig::enabled(4, 8),
        ..config(7, 4)
    };
    let (pruned, pruned_world) = scenario_on(World::new_sharded(pruned_sharded));
    outcomes("sharded+prune", &pruned);
    assert_eq!(pruned.total_gas, TOTAL_GAS_SHARDED, "pruned sharded gas");
    gas_pinned(
        "sharded+prune",
        &pruned_world.chain.gas_by_method(),
        &gold_sharded,
    );
    pruned_world
        .chain
        .verify_checkpoints()
        .expect("pruned sharded golden checkpoints");
}

#[test]
fn sharded_world_routes_disjoint_owners_to_disjoint_shards() {
    let mut world = World::new_sharded(config(11, 4));
    for i in 0..6 {
        world.add_owner(format!("https://o{i}.id/me"), format!("https://o{i}.pod/"));
    }
    let mut resources = Vec::new();
    for i in 0..6 {
        let owner = format!("https://o{i}.id/me");
        world.pod_initiation(&owner).expect("pod init");
        let resource = world
            .resource_initiation(
                &owner,
                "data/r.bin",
                duc_solid::Body::Binary(vec![0x5A; 1 << 10]),
                UsagePolicy::default_for(format!("https://o{i}.pod/data/r.bin"), &owner),
                vec![],
            )
            .expect("resource init");
        resources.push(resource);
    }
    let heights = world.chain.shard_heights();
    let busy = heights.iter().filter(|h| **h > 0).count();
    assert!(
        busy >= 2,
        "6 disjoint owners spread over shards: {heights:?}"
    );
    // Every resource resolves through its routed view.
    for (i, resource) in resources.iter().enumerate() {
        let record = world
            .dex
            .lookup_resource(&world.chain, resource)
            .expect("routed view")
            .expect("registered");
        assert_eq!(record.owner_webid, format!("https://o{i}.id/me"));
    }
    // The merged resource list spans every shard.
    let all = world
        .dex
        .list_resources(&world.chain)
        .expect("fan-out view");
    assert_eq!(all.len(), 6);
    chaos::check_invariants(&world).expect("invariants");
}

/// One fixed, hand-written chaos plan (a crash window plus a partition that
/// both heal) and one seeded random plan, thrown at both backends.
fn chaos_against<L: Ledger>(world: World<L>, chaos_seed: u64) -> (usize, usize, World<L>) {
    let (mut world, resource) = chaos::launch_pad_in(world, OWNER, PATH, 4);
    let dev = world.device("device-0").endpoint;
    let relay = world.push_in.relay;
    let fixed = chaos::healing_plan(world.clock.now(), dev, relay);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, 4);
    let run = chaos::run_chaos(&mut world, batch, fixed).expect("fixed-plan invariants");
    assert_eq!(run.ok + run.failed, run.outcomes.len());

    let random = chaos::random_plan(&world, chaos_seed, SimDuration::from_secs(15), 5);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, 4);
    let run2 = chaos::run_chaos(&mut world, batch, random).expect("random-plan invariants");
    (run.ok + run2.ok, run.failed + run2.failed, world)
}

#[test]
fn chaos_plans_hold_invariants_on_both_backends() {
    let (ok_single, failed_single, _) = chaos_against(World::new(config(21, 1)), 99);
    let (ok_sharded, failed_sharded, world) = chaos_against(World::new_sharded(config(21, 4)), 99);
    // Both backends resolve every ticket (12 = 2 × (4 accesses + 2
    // rounds)); the split may differ because timing differs.
    assert_eq!(ok_single + failed_single, 12);
    assert_eq!(ok_sharded + failed_sharded, 12);
    world
        .chain
        .validate_chains()
        .expect("shards validate after chaos");
}

/// The policy-churn scenario class (mid-flight modification racing
/// accesses and monitoring) must resolve every ticket and hold the shared
/// invariants on both ledger backends.
#[test]
fn policy_churn_holds_invariants_on_both_backends() {
    fn churn<L: Ledger>(world: World<L>) -> (usize, usize, u64) {
        let (mut world, resource) = chaos::launch_pad_in(world, OWNER, PATH, 4);
        let batch = chaos::policy_churn_batch(OWNER, PATH, &resource, 4);
        let requests = batch.len();
        let plan = chaos::healing_plan(
            world.clock.now(),
            world.device("device-0").endpoint,
            world.push_in.relay,
        );
        let run = chaos::run_chaos(&mut world, batch, plan).expect("churn invariants");
        assert_eq!(run.outcomes.len(), requests);
        let version = world
            .dex
            .lookup_resource(&world.chain, &resource)
            .expect("view")
            .expect("registered")
            .policy_version;
        (run.ok, run.failed, version)
    }
    let (_, _, v_single) = churn(World::new(config(33, 1)));
    let (_, _, v_sharded) = churn(World::new_sharded(config(33, 4)));
    assert_eq!(v_single, 2);
    assert_eq!(v_sharded, 2);
}

/// One fault-free launch-pad + mixed-batch run, returning the fingerprint.
/// Every ticket must succeed (no faults are installed), and the shared
/// invariants — including the prune-aware cursor and checkpoint sweeps —
/// are checked by `run_chaos`.
fn fault_free_fingerprint<L: Ledger>(world: World<L>, seed: u64) -> String {
    let (mut world, resource) = chaos::launch_pad_in(world, OWNER, PATH, 3);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, 3);
    let run = chaos::run_chaos(&mut world, batch, FaultPlan::none())
        .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
    assert_eq!(
        run.ok,
        run.outcomes.len(),
        "seed={seed}: fault-free runs succeed everywhere"
    );
    chaos::fingerprint(&mut world)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Checkpoint → prune → replay round-trip: for any seed, the pruned
    /// run (checkpoint every 2 blocks, 2-block resident window) produces a
    /// fingerprint byte-identical to the unpruned run of the same seed,
    /// and re-running the pruned world replays byte-identically — on both
    /// ledger backends. Pruning must be invisible to everything but
    /// memory.
    #[test]
    fn pruned_runs_replay_byte_identically_on_both_backends(seed in 0u64..200) {
        let pruned = StorageConfig::enabled(2, 2);
        let plain = fault_free_fingerprint(World::new(config(seed, 1)), seed);
        let cfg = || WorldConfig { storage: pruned.clone(), ..config(seed, 1) };
        let p1 = fault_free_fingerprint(World::new(cfg()), seed);
        let p2 = fault_free_fingerprint(World::new(cfg()), seed);
        prop_assert_eq!(&plain, &p1, "pruning perturbed the single-chain run");
        prop_assert_eq!(&p1, &p2, "pruned single-chain replay diverged");

        let plain = fault_free_fingerprint(World::new_sharded(config(seed, 4)), seed);
        let cfg = || WorldConfig { storage: pruned.clone(), ..config(seed, 4) };
        let s1 = fault_free_fingerprint(World::new_sharded(cfg()), seed);
        let s2 = fault_free_fingerprint(World::new_sharded(cfg()), seed);
        prop_assert_eq!(&plain, &s1, "pruning perturbed the sharded run");
        prop_assert_eq!(&s1, &s2, "pruned sharded replay diverged");
    }

    /// Paging → eviction → fault-in → checkpoint round-trip: for any seed,
    /// a run whose world state is paged down to two resident pages of four
    /// slots — interleaved with checkpoint seals and pruning — produces a
    /// replay fingerprint (which embeds the state commitment) byte-identical
    /// to the never-evicting run of the same seed, on both ledger backends
    /// and through both page-store backings (in-memory log and spill files
    /// on disk). Eviction must move bytes, never rows.
    #[test]
    fn paged_runs_fingerprint_identically_to_unpaged(seed in 0u64..200) {
        let spill_dir = std::env::temp_dir().join(format!(
            "duc-paged-prop-{}-{seed}",
            std::process::id()
        ));
        let tiny = PagingConfig::in_memory(Some(2)).with_page_capacity(4);
        let disk = tiny.clone().with_spill_dir(&spill_dir);
        let paged = |p: &PagingConfig, shards| WorldConfig {
            storage: StorageConfig::enabled(2, 2).with_paging(p.clone()),
            ..config(seed, shards)
        };

        let plain = fault_free_fingerprint(World::new(config(seed, 1)), seed);
        let mem = fault_free_fingerprint(World::new(paged(&tiny, 1)), seed);
        let file = fault_free_fingerprint(World::new(paged(&disk, 1)), seed);
        prop_assert_eq!(&plain, &mem, "paging perturbed the single-chain run");
        prop_assert_eq!(&mem, &file, "spill-to-disk diverged from in-memory spill");

        let plain = fault_free_fingerprint(World::new_sharded(config(seed, 4)), seed);
        let s1 = fault_free_fingerprint(World::new_sharded(paged(&tiny, 4)), seed);
        let s2 = fault_free_fingerprint(World::new_sharded(paged(&tiny, 4)), seed);
        prop_assert_eq!(&plain, &s1, "paging perturbed the sharded run");
        prop_assert_eq!(&s1, &s2, "paged sharded replay diverged");

        let _ = std::fs::remove_dir_all(&spill_dir);
    }
}

/// The parallel intra-shard executor must be invisible: the golden
/// scenario reproduces its exact outcome and gas pins under
/// [`ExecMode::Parallel`], whatever `DUC_EXEC_MODE` says. (The absolute
/// pin test above already covers whichever mode the environment selects;
/// this one forces the parallel executor explicitly.)
#[test]
fn parallel_execution_reproduces_the_golden_scenario() {
    let parallel = |shards| WorldConfig {
        exec_mode: ExecMode::Parallel,
        ..config(7, shards)
    };

    let (report, world) = scenario_on(World::new(parallel(1)));
    assert_eq!(report.alice_got_bytes, 152, "parallel: alice bytes");
    assert_eq!(report.bob_got_bytes, 480, "parallel: bob bytes");
    assert_eq!(report.total_gas, 2_500_408, "parallel single-chain gas pin");
    chaos::check_invariants(&world).expect("invariants under parallel execution");

    let (report, world) = scenario_on(World::new_sharded(parallel(4)));
    assert_eq!(report.total_gas, 2_735_842, "parallel sharded gas pin");
    chaos::check_invariants(&world).expect("invariants under sharded parallel execution");
    world
        .chain
        .validate_chains()
        .expect("every shard validates under parallel execution");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// For any seed, the serial and parallel executors produce
    /// byte-identical replay fingerprints on both ledger backends: same
    /// blocks, same receipts, same event stream, same balances.
    #[test]
    fn parallel_runs_fingerprint_identically_to_serial(seed in 0u64..200) {
        let serial = |shards| WorldConfig {
            exec_mode: ExecMode::Serial,
            ..config(seed, shards)
        };
        let parallel = |shards| WorldConfig {
            exec_mode: ExecMode::Parallel,
            ..config(seed, shards)
        };
        let s = fault_free_fingerprint(World::new(serial(1)), seed);
        let p = fault_free_fingerprint(World::new(parallel(1)), seed);
        prop_assert_eq!(&s, &p, "single-chain serial/parallel diverged");
        let s = fault_free_fingerprint(World::new_sharded(serial(4)), seed);
        let p = fault_free_fingerprint(World::new_sharded(parallel(4)), seed);
        prop_assert_eq!(&s, &p, "sharded serial/parallel diverged");
    }
}

/// A sealed checkpoint survives a codec round-trip bit-for-bit, and the
/// sealed state commitment stays verifiable against the chain's recorded
/// headers after pruning (the restore anchor of the storage layer).
#[test]
fn checkpoints_roundtrip_and_stay_verifiable() {
    let cfg = WorldConfig {
        storage: StorageConfig::enabled(2, 2),
        ..config(5, 1)
    };
    let (mut world, resource) = chaos::launch_pad_in(World::new(cfg), OWNER, PATH, 3);
    let batch = chaos::mixed_batch(OWNER, PATH, &resource, 3);
    chaos::run_chaos(&mut world, batch, FaultPlan::none()).expect("invariants");
    assert!(world.chain.prune_horizon() > 0, "the run pruned");
    let cp = world.chain.last_checkpoint().expect("sealed").clone();
    let mut buf = Vec::new();
    cp.encode(&mut buf);
    let restored: Checkpoint = duc_codec::decode_from_slice(&buf).expect("decode");
    assert_eq!(restored, cp, "checkpoint codec round-trip");
    assert_eq!(restored.state_commitment, cp.state_commitment);
    world
        .chain
        .verify_checkpoints()
        .expect("sealed commitments match the recorded headers");
}

#[test]
fn sharded_runs_replay_byte_identically() {
    let run = |seed: u64| {
        let (mut world, resource) =
            chaos::launch_pad_in(World::new_sharded(config(seed, 4)), OWNER, PATH, 4);
        let plan = chaos::random_plan(&world, seed.wrapping_mul(31), SimDuration::from_secs(15), 5);
        let batch = chaos::mixed_batch(OWNER, PATH, &resource, 4);
        chaos::run_chaos(&mut world, batch, plan).expect("invariants");
        chaos::fingerprint(&mut world)
    };
    assert_eq!(run(42), run(42), "identically-seeded sharded runs replay");
    assert_ne!(run(42), run(43), "different seeds diverge");
}
