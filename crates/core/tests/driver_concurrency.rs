//! Driver-level concurrency tests: many in-flight requests interleaving on
//! the scheduler, typed submission errors, determinism, and a property test
//! racing devices over one resource.

use duc_core::prelude::*;
use duc_policy::{Action, Constraint, Duty, Rule, UsagePolicy};
use duc_sim::{LatencyModel, LinkConfig, SimDuration};
use duc_solid::Body;
use proptest::prelude::*;

const OWNER: &str = "https://owner.id/me";

fn fixed_link(ms: u64) -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Constant(SimDuration::from_millis(ms)),
        drop_probability: 0.0,
        bandwidth_bps: Some(10_000_000),
    }
}

fn retention_policy(iri: &str, days: u64) -> UsagePolicy {
    UsagePolicy::builder(format!("{iri}#policy"), iri, OWNER)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(days))),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(days)))
        .duty(Duty::LogAccesses)
        .build()
}

/// One owner, one resource, `n` devices that subscribed and indexed (but
/// have not fetched yet).
fn market_world(n: usize, seed: u64, trace: bool) -> (World, String) {
    market_world_on(n, seed, trace, fixed_link(10))
}

fn market_world_on(n: usize, seed: u64, trace: bool, link: LinkConfig) -> (World, String) {
    let mut world = World::new(WorldConfig {
        seed,
        link,
        trace,
        ..WorldConfig::default()
    });
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..n {
        world.add_device(format!("device-{i}"), format!("https://c{i}.id/me"));
    }
    world.pod_initiation(OWNER).expect("pod init");
    let iri = world.owner(OWNER).pod_manager.pod().iri_of("data/set.bin");
    let resource = world
        .resource_initiation(
            OWNER,
            "data/set.bin",
            Body::Binary(vec![0xA5; 4 << 10]),
            retention_policy(&iri, 7),
            vec![],
        )
        .expect("resource init");
    // Subscriptions and indexing race each other through the driver too.
    let mut tickets = Vec::new();
    for i in 0..n {
        tickets.push(world.submit(Request::MarketSubscribe {
            device: format!("device-{i}"),
        }));
        tickets.push(world.submit(Request::ResourceIndexing {
            device: format!("device-{i}"),
            resource: resource.clone(),
        }));
    }
    world.run_until_idle();
    for t in tickets {
        t.poll(&mut world)
            .expect("completed")
            .expect("setup succeeds");
    }
    (world, resource)
}

#[test]
fn sixty_four_concurrent_accesses_complete() {
    let (mut world, resource) = market_world(64, 42, false);
    let tickets: Vec<Ticket> = (0..64)
        .map(|i| {
            world.submit(Request::ResourceAccess {
                device: format!("device-{i}"),
                resource: resource.clone(),
            })
        })
        .collect();
    assert_eq!(
        world.in_flight(),
        64,
        "all 64 requests are in flight at once"
    );

    world.run_until_idle();
    assert_eq!(world.in_flight(), 0);
    for t in &tickets {
        match t.poll(&mut world).expect("completed") {
            Ok(Outcome::Accessed(outcome)) => assert!(outcome.bytes > 0),
            other => panic!("expected access outcome, got {other:?}"),
        }
    }
    // Every copy is registered on-chain exactly once.
    let copies = world
        .dex
        .list_copies(&world.chain, &resource)
        .expect("view");
    assert_eq!(copies.len(), 64);
    // Concurrent requests share block slots: the whole batch fits into far
    // fewer block rounds than sequential execution would need.
    let e2e = world.metrics.histogram_mut("process.access.e2e");
    assert_eq!(e2e.len(), 64);
    assert!(
        e2e.max() < SimDuration::from_secs(64),
        "batch did not serialize: max e2e {}",
        e2e.max()
    );
}

#[test]
fn unknown_participants_fail_with_typed_errors_not_panics() {
    let mut world = World::new(WorldConfig::default());
    world.add_owner(OWNER, "https://owner.pod/");

    let t1 = world.submit(Request::PodInitiation {
        webid: "https://ghost.id/me".into(),
    });
    let t2 = world.submit(Request::ResourceAccess {
        device: "no-such-device".into(),
        resource: "urn:r".into(),
    });
    let t3 = world.submit(Request::MarketSubscribe {
        device: "no-such-device".into(),
    });
    let t4 = world.submit(Request::PolicyMonitoring {
        webid: "https://ghost.id/me".into(),
        path: "data/x".into(),
    });
    // Rejections are immediate: nothing was ever in flight.
    assert_eq!(world.in_flight(), 0);
    world.run_until_idle();
    assert!(matches!(
        t1.poll(&mut world),
        Some(Err(ProcessError::UnknownOwner(w))) if w == "https://ghost.id/me"
    ));
    assert!(matches!(
        t2.poll(&mut world),
        Some(Err(ProcessError::UnknownDevice(d))) if d == "no-such-device"
    ));
    assert!(matches!(
        t3.poll(&mut world),
        Some(Err(ProcessError::UnknownDevice(_)))
    ));
    assert!(matches!(
        t4.poll(&mut world),
        Some(Err(ProcessError::UnknownOwner(_)))
    ));
}

#[test]
fn wrappers_and_driver_share_one_implementation() {
    // The legacy one-shot method and an equivalent submit/run/poll sequence
    // on an identically-seeded world produce identical outcomes and clocks.
    let (mut a, resource_a) = market_world(2, 7, false);
    let (mut b, resource_b) = market_world(2, 7, false);

    let wrapped = a.resource_access("device-0", &resource_a).expect("access");
    let ticket = b.submit(Request::ResourceAccess {
        device: "device-0".into(),
        resource: resource_b.clone(),
    });
    b.run_until_idle();
    let Some(Ok(Outcome::Accessed(driven))) = ticket.poll(&mut b) else {
        panic!("driver access failed");
    };
    assert_eq!(wrapped, driven);
    assert_eq!(a.clock.now(), b.clock.now());
}

use duc_core::chaos::fingerprint;

/// A multi-client workload where accesses, a policy modification and two
/// monitoring rounds are all in flight together.
fn interleaved_run(seed: u64) -> String {
    // Randomized WAN latencies: the seed genuinely shapes the trajectory,
    // so byte-identical fingerprints prove replay, not constancy.
    let (mut world, resource) = market_world_on(6, seed, true, LinkConfig::wan());
    let mut tickets = Vec::new();
    for i in 0..6 {
        tickets.push(world.submit(Request::ResourceAccess {
            device: format!("device-{i}"),
            resource: resource.clone(),
        }));
    }
    tickets.push(world.submit(Request::PolicyModification {
        webid: OWNER.into(),
        path: "data/set.bin".into(),
        rules: vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::MaxRetention(SimDuration::from_days(3)))],
        duties: vec![
            Duty::DeleteWithin(SimDuration::from_days(3)),
            Duty::LogAccesses,
        ],
    }));
    tickets.push(world.submit(Request::PolicyMonitoring {
        webid: OWNER.into(),
        path: "data/set.bin".into(),
    }));
    tickets.push(world.submit(Request::PolicyMonitoring {
        webid: OWNER.into(),
        path: "data/set.bin".into(),
    }));
    world.run_until_idle();
    for t in tickets {
        // Every request completes (some may legitimately fail, e.g. an
        // access racing the tightened policy) — none may hang or panic.
        let _ = t.poll(&mut world).expect("completed");
    }
    fingerprint(&mut world)
}

#[test]
fn interleaved_workload_is_byte_identical_across_runs() {
    let first = interleaved_run(1234);
    let second = interleaved_run(1234);
    assert_eq!(first, second, "same seed must replay the same trajectory");
    let other_seed = interleaved_run(99);
    assert_ne!(first, other_seed, "different seeds explore different paths");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N devices race `ResourceAccess` on one resource: every access lands,
    /// certificates stay valid, the copy registry is exact, and the gas
    /// ledger balances against validator income and the market treasury.
    #[test]
    fn racing_accesses_keep_certificates_and_gas_consistent(
        n in 1usize..10,
        seed in 0u64..1_000,
    ) {
        let (mut world, resource) = market_world(n, seed, false);
        let tickets: Vec<Ticket> = (0..n)
            .map(|i| world.submit(Request::ResourceAccess {
                device: format!("device-{i}"),
                resource: resource.clone(),
            }))
            .collect();
        prop_assert_eq!(world.in_flight(), n);
        world.run_until_idle();
        for t in tickets {
            let outcome = t.poll(&mut world).expect("completed");
            prop_assert!(outcome.is_ok(), "access failed: {:?}", outcome);
        }
        // Copies: exactly one per device.
        let copies = world.dex.list_copies(&world.chain, &resource).expect("view");
        prop_assert_eq!(copies.len(), n);
        for i in 0..n {
            let device = world.device(&format!("device-{i}"));
            prop_assert!(device.tee.has_copy(&resource));
            prop_assert!(device.certificate.is_some());
        }
        // Gas conservation: every unit of consumed gas was paid to a
        // proposer, and the treasury holds exactly n subscription fees.
        let ledger_total: u64 = world.chain.gas_ledger().iter().map(|r| r.gas_used).sum();
        let validator_income: u128 = world
            .chain
            .validator_addresses()
            .iter()
            .map(|addr| world.chain.balance(addr))
            .sum();
        prop_assert_eq!(validator_income, ledger_total as u128 * world.chain.gas_price());
        let treasury = duc_blockchain::Address::from_seed(b"duc/market-treasury");
        prop_assert_eq!(world.chain.balance(&treasury), n as u128 * world.config.market_fee);
    }
}
