//! Integration tests for the deadline-driven obligation scheduler: duties
//! fire at their exact declared instant (with on-chain evidence) under
//! [`EnforcementMode::Deadline`], on the polling grid under
//! [`EnforcementMode::Periodic`], re-arm on mid-flight policy changes, and
//! respect rogue hosts.

use duc_core::chaos::fixed_link;
use duc_core::prelude::*;
use duc_solid::Body;

const OWNER: &str = "https://owner.id/me";
const PATH: &str = "data/set.bin";

fn retention_policy(iri: &str, days: u64) -> UsagePolicy {
    UsagePolicy::builder(format!("{iri}#policy"), iri, OWNER)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(days))),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(days)))
        .duty(Duty::LogAccesses)
        .build()
}

/// One owner, `n` devices holding driver-fetched copies under a
/// `retention_days` policy.
fn world_with_copies(n: usize, retention_days: u64, config: WorldConfig) -> (World, String) {
    let mut world = World::new(config);
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..n {
        world.add_device(format!("device-{i}"), format!("https://c{i}.id/me"));
    }
    world.pod_initiation(OWNER).expect("pod init");
    let iri = world.owner(OWNER).pod_manager.pod().iri_of(PATH);
    let resource = world
        .resource_initiation(
            OWNER,
            PATH,
            Body::Binary(vec![0xA5; 1 << 10]),
            retention_policy(&iri, retention_days),
            vec![],
        )
        .expect("resource init");
    for i in 0..n {
        let d = format!("device-{i}");
        world.market_subscribe(&d).expect("subscribe");
        world.resource_indexing(&d, &resource).expect("index");
        world.resource_access(&d, &resource).expect("access");
    }
    (world, resource)
}

fn config(enforcement: EnforcementMode) -> WorldConfig {
    WorldConfig {
        seed: 41,
        link: fixed_link(10),
        enforcement,
        ..WorldConfig::default()
    }
}

#[test]
fn deadline_mode_enforces_at_the_exact_instant_with_onchain_evidence() {
    let (mut world, resource) = world_with_copies(2, 1, config(EnforcementMode::Deadline));
    assert_eq!(
        world
            .dex
            .list_copies(&world.chain, &resource)
            .expect("view")
            .len(),
        2
    );
    world.advance(SimDuration::from_days(2));
    // Both copies were deleted by their scheduled wakeups...
    for i in 0..2 {
        assert!(
            !world.device(&format!("device-{i}")).tee.has_copy(&resource),
            "copy deleted at its deadline"
        );
    }
    // ...at zero lag from the declared deadline...
    let lag = world.metrics.histogram_mut("enforcement.lag");
    assert_eq!(lag.len(), 2, "one wakeup per copy");
    assert_eq!(lag.max(), SimDuration::ZERO, "deadline-driven: zero lag");
    // ...with the on-chain registry updated as evidence.
    assert!(world
        .dex
        .list_copies(&world.chain, &resource)
        .expect("view")
        .is_empty());
    assert_eq!(world.metrics.counter("enforcement.deletions"), 2);
    assert_eq!(world.metrics.counter("enforcement.evidence_anchored"), 2);
}

#[test]
fn periodic_mode_waits_for_the_grid() {
    let period = SimDuration::from_mins(37);
    let (mut world, resource) = world_with_copies(1, 1, config(EnforcementMode::Periodic(period)));
    world.advance(SimDuration::from_days(2));
    assert!(!world.device("device-0").tee.has_copy(&resource));
    let lag = world.metrics.histogram_mut("enforcement.lag");
    assert_eq!(lag.len(), 1);
    assert!(
        lag.max() > SimDuration::ZERO && lag.max() <= period,
        "round-based enforcement lags by up to one period: {}",
        lag.max()
    );
}

#[test]
fn policy_tightening_reschedules_the_wakeup_mid_flight() {
    // 30-day retention initially; tightened to 2 days on day 1. The copy
    // must be erased at day 3 (acquisition + 2 days), not day 30.
    let (mut world, resource) = world_with_copies(1, 30, config(EnforcementMode::Deadline));
    world.advance(SimDuration::from_days(1));
    world
        .policy_modification(
            OWNER,
            PATH,
            vec![Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(2)))],
            vec![
                Duty::DeleteWithin(SimDuration::from_days(2)),
                Duty::LogAccesses,
            ],
        )
        .expect("tighten");
    assert!(world.device("device-0").tee.has_copy(&resource));
    world.advance(SimDuration::from_days(3));
    assert!(
        !world.device("device-0").tee.has_copy(&resource),
        "the re-armed wakeup enforced the tightened deadline"
    );
    assert_eq!(world.metrics.histogram_mut("enforcement.lag").len(), 1);
    assert_eq!(
        world.metrics.histogram_mut("enforcement.lag").max(),
        SimDuration::ZERO
    );
    assert!(world
        .dex
        .list_copies(&world.chain, &resource)
        .expect("view")
        .is_empty());
}

#[test]
fn rogue_hosts_suppress_the_wakeup_and_monitoring_catches_them() {
    let (mut world, resource) = world_with_copies(2, 1, config(EnforcementMode::Deadline));
    world.set_rogue_host("device-0", true);
    world.advance(SimDuration::from_days(2));
    assert!(
        world.device("device-0").tee.has_copy(&resource),
        "rogue host suppressed its timer"
    );
    assert!(!world.device("device-1").tee.has_copy(&resource));
    let outcome = world.policy_monitoring(OWNER, PATH).expect("round");
    assert_eq!(outcome.violators, vec!["device-0".to_string()]);
}

#[test]
fn consecutive_rounds_reaffirm_unchanged_evidence() {
    // Two monitoring rounds before the deadline, no accesses in between:
    // the second round must go through the cheap reaffirmation path and
    // cost strictly less gas.
    let (mut world, resource) = world_with_copies(4, 30, config(EnforcementMode::Deadline));
    let gas_round = |world: &mut World, label: &str| {
        let before = world.metrics.counter("process.monitoring.gas");
        let outcome = world.policy_monitoring(OWNER, PATH).expect(label);
        assert_eq!(outcome.evidence, 4, "{label}: every device answered");
        assert!(outcome.violators.is_empty());
        world.metrics.counter("process.monitoring.gas") - before
    };
    let first = gas_round(&mut world, "first round");
    assert_eq!(
        world.metrics.counter("process.monitoring.reaffirmed"),
        0,
        "first round ships full evidence"
    );
    let second = gas_round(&mut world, "second round");
    assert_eq!(
        world.metrics.counter("process.monitoring.reaffirmed"),
        4,
        "second round reaffirms every unchanged copy"
    );
    assert!(
        second < first,
        "reaffirmation must be cheaper: {second} vs {first}"
    );
    // A fresh access advances the log: the next round is full again for
    // that device.
    {
        let now = world.clock.now();
        let device = world.devices.get_mut("device-0").expect("device");
        device
            .tee
            .access(&resource, Action::Read, Purpose::any(), now)
            .expect("local access");
    }
    let _ = gas_round(&mut world, "third round");
    assert_eq!(
        world.metrics.counter("process.monitoring.reaffirmed"),
        7,
        "the touched copy resubmitted; the other three reaffirmed"
    );
}

#[test]
fn duplicate_answers_to_one_round_are_rejected_on_chain() {
    // Two devices answer round 1 fully; round 2 stays open after device-0
    // reaffirms (device-1 has not answered), so a replayed reaffirmation
    // and a follow-up full submission from device-0 must both revert.
    let (mut world, resource) = world_with_copies(2, 30, config(EnforcementMode::Deadline));
    world.policy_monitoring(OWNER, PATH).expect("round 1");

    // Open round 2 directly (no driver probing, so it stays open).
    let owner_key = world.owner(OWNER).key;
    let tx = world
        .dex
        .start_monitoring_tx(&world.chain, &owner_key, &resource);
    let id = world.chain.submit(tx).expect("mempool");
    world.advance(SimDuration::from_secs(2));
    let round = duc_contracts::DistExchangeClient::decode_round_number(
        &world.chain.receipt(&id).expect("receipt").return_data,
    )
    .expect("round number");

    let now = world.clock.now();
    let (digest, key, reaff) = {
        let dev = world.device("device-0");
        let report = dev.tee.report(&resource, now).expect("report");
        let mut reaff = duc_contracts::EvidenceReaffirmation {
            resource: resource.clone(),
            round,
            device: "device-0".into(),
            prev_round: dev.tee.last_reported(&resource).expect("noted").round,
            evidence_digest: report.log_digest,
            signature: duc_crypto::Signature { e: 0, s: 0 },
        };
        reaff.signature = dev.tee.enclave().sign(&reaff.signing_bytes());
        (report.log_digest, dev.key, reaff)
    };
    let status = |world: &mut World, tx| {
        let id = world.chain.submit(tx).expect("mempool");
        world.advance(SimDuration::from_secs(2));
        world.chain.receipt(&id).expect("receipt").status.clone()
    };
    // First reaffirmation lands.
    let tx = world.dex.reaffirm_evidence_tx(&world.chain, &key, &reaff);
    assert!(matches!(
        status(&mut world, tx),
        duc_blockchain::TxStatus::Ok
    ));
    // The identical reaffirmation replayed into the still-open round
    // reverts.
    let tx = world.dex.reaffirm_evidence_tx(&world.chain, &key, &reaff);
    assert!(matches!(
        status(&mut world, tx),
        duc_blockchain::TxStatus::Reverted(ref msg) if msg.contains("duplicate")
    ));
    // So does a follow-up full submission from the same device.
    let dev = world.device("device-0");
    let mut submission = duc_contracts::EvidenceSubmission {
        resource: resource.clone(),
        round,
        device: "device-0".into(),
        compliant: true,
        violations: vec![],
        evidence_digest: digest,
        signature: duc_crypto::Signature { e: 0, s: 0 },
    };
    submission.signature = dev.tee.enclave().sign(&submission.signing_bytes());
    let tx = world
        .dex
        .record_evidence_tx(&world.chain, &key, &submission);
    assert!(matches!(
        status(&mut world, tx),
        duc_blockchain::TxStatus::Reverted(ref msg) if msg.contains("duplicate")
    ));
    // The round record holds exactly one answer for device-0.
    let record = world
        .dex
        .get_round(&world.chain, &resource, round)
        .expect("view")
        .expect("round");
    assert_eq!(record.reaffirmed, vec![("device-0".to_string(), 1)]);
    assert!(record.evidence.is_empty());
    assert!(!record.closed, "device-1 has not answered");
}

#[test]
fn stale_unregister_cannot_clobber_a_newer_registration() {
    // An unregister whose `as_of` predates the current registration (the
    // re-access-raced-the-deletion interleave) must be a guarded no-op.
    let (mut world, resource) = world_with_copies(1, 30, config(EnforcementMode::Deadline));
    let dev_key = world.device("device-0").key;
    let run = |world: &mut World, tx| {
        let id = world.chain.submit(tx).expect("mempool");
        world.advance(SimDuration::from_secs(2));
        world.chain.receipt(&id).expect("receipt").status.clone()
    };
    // Stale: as_of = epoch, long before the registration block.
    let tx =
        world
            .dex
            .unregister_copy_tx(&world.chain, &dev_key, &resource, "device-0", SimTime::ZERO);
    assert!(matches!(run(&mut world, tx), duc_blockchain::TxStatus::Ok));
    assert_eq!(
        world
            .dex
            .list_copies(&world.chain, &resource)
            .expect("view")
            .len(),
        1,
        "the guarded unregister left the newer registration intact"
    );
    // Fresh: as_of = now removes it.
    let now = world.clock.now();
    let tx = world
        .dex
        .unregister_copy_tx(&world.chain, &dev_key, &resource, "device-0", now);
    assert!(matches!(run(&mut world, tx), duc_blockchain::TxStatus::Ok));
    assert!(world
        .dex
        .list_copies(&world.chain, &resource)
        .expect("view")
        .is_empty());
}

#[test]
fn healed_rogue_host_is_enforced_on_the_next_periodic_sweep() {
    // A rogue host suppresses its timer across the deadline; when the
    // host heals, the periodic baseline's next grid sweep still enforces
    // (the fired wakeup re-arms instead of going silent).
    let period = SimDuration::from_mins(37);
    let (mut world, resource) = world_with_copies(1, 1, config(EnforcementMode::Periodic(period)));
    world.set_rogue_host("device-0", true);
    world.advance(SimDuration::from_days(2));
    assert!(
        world.device("device-0").tee.has_copy(&resource),
        "suppressed timer left the overdue copy"
    );
    world.set_rogue_host("device-0", false);
    world.advance(period + SimDuration::from_mins(1));
    assert!(
        !world.device("device-0").tee.has_copy(&resource),
        "the healed host was enforced on the next grid sweep"
    );
}
