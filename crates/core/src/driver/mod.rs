//! The non-blocking request driver.
//!
//! The six paper processes (plus the market-subscription prerequisite) are
//! expressed as per-process state machines that advance hop-by-hop on the
//! [`duc_sim::Scheduler`]: every network hop and every block-inclusion wait
//! is a scheduled continuation instead of an inline loop, so hundreds of
//! requests from many owners and devices interleave deterministically
//! across block boundaries.
//!
//! - [`World::submit`] enqueues a [`Request`] and returns a [`Ticket`]
//!   immediately (unknown participants fail fast with a typed
//!   [`ProcessError`] instead of panicking).
//! - [`World::run_until_idle`] drives the event loop until no request is
//!   in flight.
//! - Completed work surfaces as [`Outcome`] events via [`Ticket::poll`] /
//!   [`World::drain_events`].
//!
//! The legacy one-shot methods on [`World`] (see [`crate::process`]) are
//! thin wrappers: submit, run to idle, unwrap the single outcome.
//!
//! ## Layout
//!
//! One file per process machine ([`pod_init`], [`res_init`], [`indexing`],
//! [`subscribe`], [`access`], [`policy_mod`], [`monitoring`]) plus the
//! shared machinery: the fault-aware [`hop::Hop`], the transaction
//! sub-machine [`flow::TxFlow`], and this module's dispatch/state.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use duc_blockchain::{Event, Ledger, Receipt};
use duc_crypto::Digest;
use duc_intern::Sym;
use duc_oracle::{OracleError, OutboundDelivery};
use duc_policy::{Duty, Rule, UsagePolicy};
use duc_sim::{EventId, SimDuration, SimTime};
use duc_solid::Body;

use crate::process::{AccessOutcome, MonitoringOutcome, ProcessError, PropagationOutcome};
use crate::world::{IndexEntry, World};

mod access;
mod flow;
mod hop;
mod indexing;
mod monitoring;
mod obligation;
mod pod_init;
mod policy_mod;
mod res_init;
mod subscribe;

use access::Access;
use indexing::Indexing;
use monitoring::Monitoring;
use obligation::ObligationRun;
use pod_init::PodInit;
use policy_mod::PolicyMod;
use res_init::ResInit;
use subscribe::Subscribe;

/// Confirmation timeout for on-chain operations.
pub const CONFIRM_TIMEOUT: SimDuration = SimDuration::from_secs(120);

/// Retry budget window for a single network hop: a hop that cannot be
/// delivered by then resolves with a typed
/// [`duc_oracle::OracleError::GaveUp`] instead of waiting longer.
pub const HOP_TIMEOUT: SimDuration = SimDuration::from_secs(60);

/// Maximum delivery attempts per hop against transient loss.
pub const MAX_HOP_ATTEMPTS: u32 = 8;

/// Deterministic exponential backoff before retry number `attempt`
/// (1-based): 50 ms, 100 ms, 200 ms, … capped at 12.8 s.
pub fn hop_backoff(attempt: u32) -> SimDuration {
    SimDuration::from_millis(50u64 << attempt.saturating_sub(1).min(8))
}

/// A typed request against the architecture: one variant per paper process
/// (Fig. 2), plus the market-subscription prerequisite of process 4.
#[derive(Debug, Clone)]
pub enum Request {
    /// Process 1 — register `webid`'s pod on-chain.
    PodInitiation {
        /// Owner WebID.
        webid: String,
    },
    /// Process 2 — upload a resource, attach a policy, index it on-chain.
    ResourceInitiation {
        /// Owner WebID.
        webid: String,
        /// Pod-relative path.
        path: String,
        /// Resource content.
        body: Body,
        /// Usage policy to attach.
        policy: UsagePolicy,
        /// DE App metadata key/value pairs.
        metadata: Vec<(String, String)>,
    },
    /// Process 3 — a device reads a resource's location + policy from the
    /// DE App.
    ResourceIndexing {
        /// Device name.
        device: String,
        /// Resource IRI.
        resource: String,
    },
    /// Market subscription — buy the certificate required by process 4.
    MarketSubscribe {
        /// Device name.
        device: String,
    },
    /// Process 4 — fetch a governed copy into the device's TEE.
    ResourceAccess {
        /// Device name.
        device: String,
        /// Resource IRI.
        resource: String,
    },
    /// Process 5 — amend a policy and fan the update out to copy holders.
    PolicyModification {
        /// Owner WebID.
        webid: String,
        /// Pod-relative path.
        path: String,
        /// Replacement rules.
        rules: Vec<Rule>,
        /// Replacement duties.
        duties: Vec<Duty>,
    },
    /// Process 6 — run a monitoring round over every copy holder.
    PolicyMonitoring {
        /// Owner WebID.
        webid: String,
        /// Pod-relative path.
        path: String,
    },
}

/// What a completed [`Request`] produced.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Process 1 finished; the pod is registered.
    PodInitiated {
        /// Owner WebID.
        webid: String,
    },
    /// Process 2 finished; the resource is indexed on-chain.
    ResourceInitiated {
        /// The resource IRI.
        resource: String,
    },
    /// Process 3 finished; the device stored the index entry.
    Indexed {
        /// What the device learned.
        entry: IndexEntry,
    },
    /// The market subscription was bought.
    Subscribed {
        /// The payment certificate.
        certificate: Digest,
    },
    /// Process 4 finished.
    Accessed(AccessOutcome),
    /// Process 5 finished.
    PolicyPropagated(PropagationOutcome),
    /// Process 6 finished.
    Monitored(MonitoringOutcome),
    /// An internal obligation wakeup ran its duties (never surfaced
    /// through a user ticket; the obligation scheduler spawns these).
    ObligationsEnforced {
        /// The device whose TEE was woken.
        device: String,
        /// The governed copy.
        resource: String,
        /// Whether the copy was deleted (and the deletion anchored).
        deleted: bool,
    },
}

/// Handle on an in-flight (or completed) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// The raw request id (submission order).
    pub fn id(self) -> u64 {
        self.0
    }

    /// Takes the completed outcome for this ticket, if the request has
    /// finished. Equivalent to [`World::poll_ticket`].
    pub fn poll<L: Ledger>(self, world: &mut World<L>) -> Option<Result<Outcome, ProcessError>> {
        world.poll_ticket(self)
    }
}

/// Checks a receipt for contract-level success.
pub(crate) fn receipt_ok(receipt: Receipt) -> Result<Receipt, ProcessError> {
    match &receipt.status {
        duc_blockchain::TxStatus::Ok => Ok(receipt),
        duc_blockchain::TxStatus::Reverted(msg) => Err(ProcessError::Reverted(msg.clone())),
        duc_blockchain::TxStatus::OutOfGas => Err(ProcessError::Reverted("out of gas".into())),
        duc_blockchain::TxStatus::Superseded => Err(ProcessError::Reverted(
            "transaction superseded by a later nonce".into(),
        )),
    }
}

// ---------------------------------------------------------------- machines

/// One advance of a process machine.
pub(crate) enum Step<L> {
    /// Store the machine back and wake it at the given instant (an instant
    /// not in the future means "re-step in this scheduling round").
    Sleep(Machine<L>, SimTime),
    /// The request completed.
    Done(Result<Outcome, ProcessError>),
}

/// The per-process state machines.
pub(crate) enum Machine<L> {
    PodInit(PodInit<L>),
    ResInit(Box<ResInit<L>>),
    Indexing(Indexing),
    Subscribe(Subscribe<L>),
    Access(Box<Access<L>>),
    PolicyMod(Box<PolicyMod<L>>),
    Monitoring(Box<Monitoring<L>>),
    Obligation(Box<ObligationRun<L>>),
}

impl<L: Ledger> Machine<L> {
    pub(crate) fn step(self, world: &mut World<L>) -> Step<L> {
        match self {
            Machine::PodInit(m) => m.step(world),
            Machine::ResInit(m) => m.step(world),
            Machine::Indexing(m) => m.step(world),
            Machine::Subscribe(m) => m.step(world),
            Machine::Access(m) => m.step(world),
            Machine::PolicyMod(m) => m.step(world),
            Machine::Monitoring(m) => m.step(world),
            Machine::Obligation(m) => m.step(world),
        }
    }
}

// ------------------------------------------------------------ driver state

/// Per-world driver bookkeeping: in-flight machines, wake queue, completed
/// outcomes, and the shared push-out/pull-in inboxes that keep concurrent
/// processes from stealing each other's events.
pub(crate) struct DriverState<L> {
    next_ticket: u64,
    inflight: HashMap<u64, Machine<L>>,
    woken: Rc<RefCell<VecDeque<u64>>>,
    completed: VecDeque<(Ticket, Result<Outcome, ProcessError>)>,
    pub(crate) inbox: Vec<OutboundDelivery>,
    pub(crate) monitoring_inbox: Vec<(u64, Rc<Event>)>,
    /// Machine ids spawned by the obligation scheduler: their outcomes are
    /// dropped on completion instead of surfacing through tickets.
    internal: HashSet<u64>,
    /// Obligation wakeups fired by the scheduler, waiting to materialize
    /// as [`ObligationRun`] machines: interned `(device, resource)` pairs
    /// in the world's shared symbol space.
    pub(crate) obligation_woken: Rc<RefCell<VecDeque<(Sym, Sym)>>>,
    /// The wakeup currently registered per interned `(device, resource)`,
    /// so a policy change re-arms (cancel + reschedule) instead of
    /// stacking. Keyed on two `u32` symbols — no string hashing or clones
    /// on the re-arm hot path.
    pub(crate) scheduled_obligations: HashMap<(Sym, Sym), (SimTime, EventId)>,
}

impl<L> DriverState<L> {
    pub(crate) fn new() -> DriverState<L> {
        DriverState {
            next_ticket: 0,
            inflight: HashMap::new(),
            woken: Rc::new(RefCell::new(VecDeque::new())),
            completed: VecDeque::new(),
            inbox: Vec::new(),
            monitoring_inbox: Vec::new(),
            internal: HashSet::new(),
            obligation_woken: Rc::new(RefCell::new(VecDeque::new())),
            scheduled_obligations: HashMap::new(),
        }
    }
}

impl<L: Ledger> World<L> {
    /// Submits a request to the driver and returns its ticket immediately.
    ///
    /// Unknown owners/devices complete at once with a typed error (no
    /// panic); everything else starts advancing when the event loop runs
    /// ([`World::run_until_idle`], or [`World::advance`] up to a horizon).
    pub fn submit(&mut self, request: Request) -> Ticket {
        let ticket = Ticket(self.driver.next_ticket);
        self.driver.next_ticket += 1;
        let started = self.clock.now();

        // Participant validation up front: a typed error, not a panic.
        let rejection = match &request {
            Request::PodInitiation { webid }
            | Request::ResourceInitiation { webid, .. }
            | Request::PolicyModification { webid, .. }
            | Request::PolicyMonitoring { webid, .. } => (!self.owners.contains_key(webid))
                .then(|| ProcessError::UnknownOwner(webid.clone())),
            Request::ResourceIndexing { device, .. }
            | Request::MarketSubscribe { device }
            | Request::ResourceAccess { device, .. } => (!self.devices.contains_key(device))
                .then(|| ProcessError::UnknownDevice(device.clone())),
        };
        if let Some(err) = rejection {
            self.driver.completed.push_back((ticket, Err(err)));
            return ticket;
        }

        let machine = match request {
            Request::PodInitiation { webid } => Machine::PodInit(PodInit::new(webid, started)),
            Request::ResourceInitiation {
                webid,
                path,
                body,
                policy,
                metadata,
            } => Machine::ResInit(Box::new(ResInit::new(
                webid, path, body, policy, metadata, started,
            ))),
            Request::ResourceIndexing { device, resource } => {
                Machine::Indexing(Indexing::new(device, resource, started))
            }
            Request::MarketSubscribe { device } => {
                Machine::Subscribe(Subscribe::new(device, started))
            }
            Request::ResourceAccess { device, resource } => {
                Machine::Access(Box::new(Access::new(device, resource, started)))
            }
            Request::PolicyModification {
                webid,
                path,
                rules,
                duties,
            } => Machine::PolicyMod(Box::new(PolicyMod::new(
                webid, path, rules, duties, started,
            ))),
            Request::PolicyMonitoring { webid, path } => {
                Machine::Monitoring(Box::new(Monitoring::new(webid, path, started)))
            }
        };
        self.driver.inflight.insert(ticket.0, machine);
        self.driver.woken.borrow_mut().push_back(ticket.0);
        ticket
    }

    /// Number of requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.driver.inflight.len()
    }

    /// Takes the completed outcome for `ticket`, if the request finished.
    pub fn poll_ticket(&mut self, ticket: Ticket) -> Option<Result<Outcome, ProcessError>> {
        let pos = self
            .driver
            .completed
            .iter()
            .position(|(t, _)| *t == ticket)?;
        self.driver.completed.remove(pos).map(|(_, res)| res)
    }

    /// Drains every completed outcome, in completion order.
    pub fn drain_events(&mut self) -> Vec<(Ticket, Result<Outcome, ProcessError>)> {
        self.driver.completed.drain(..).collect()
    }

    /// Steps every process woken at the current instant, materializing
    /// fired obligation wakeups into internal machines first. Returns the
    /// number of process steps executed.
    pub(crate) fn step_woken(&mut self) -> u64 {
        let mut steps = 0;
        loop {
            self.spawn_due_obligations();
            let Some(pid) = self.driver.woken.borrow_mut().pop_front() else {
                break;
            };
            self.step_process(pid);
            steps += 1;
        }
        steps
    }

    /// Turns fired obligation wakeups into in-flight [`ObligationRun`]
    /// machines (internal: their outcomes never surface through tickets).
    fn spawn_due_obligations(&mut self) {
        loop {
            let Some(key) = self.driver.obligation_woken.borrow_mut().pop_front() else {
                break;
            };
            self.driver.scheduled_obligations.remove(&key);
            let device = self.ids.resolve(key.0).to_string();
            let resource = self.ids.resolve(key.1).to_string();
            let pid = self.driver.next_ticket;
            self.driver.next_ticket += 1;
            self.driver.internal.insert(pid);
            self.driver.inflight.insert(
                pid,
                Machine::Obligation(Box::new(ObligationRun::new(device, resource))),
            );
            self.driver.woken.borrow_mut().push_back(pid);
        }
    }

    fn step_process(&mut self, pid: u64) {
        let Some(machine) = self.driver.inflight.remove(&pid) else {
            return;
        };
        match machine.step(self) {
            Step::Sleep(machine, at) => {
                self.driver.inflight.insert(pid, machine);
                if at <= self.clock.now() {
                    self.driver.woken.borrow_mut().push_back(pid);
                } else {
                    let woken = self.driver.woken.clone();
                    self.sched
                        .schedule_at(at, move |_| woken.borrow_mut().push_back(pid));
                }
            }
            Step::Done(result) => {
                if self.driver.internal.remove(&pid) {
                    // Internal obligation machines report through metrics,
                    // not tickets.
                    if result.is_err() {
                        self.metrics.incr("driver.obligation.failed");
                    }
                } else {
                    self.driver.completed.push_back((Ticket(pid), result));
                }
            }
        }
    }

    /// Drives the event loop until no request is in flight: steps every
    /// woken process, then hops the scheduler to the next wake, repeating.
    /// Returns the number of process steps executed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut steps = 0;
        self.apply_faults();
        loop {
            steps += self.step_woken();
            // Idle means no request in flight; remaining scheduler entries
            // can only be fault-plan boundary markers or *future*
            // obligation wakeups, which must not drag the clock forward on
            // their own. Wakeups already due at this instant (e.g. a
            // zero-retention copy registered this round) still fire first.
            if self.driver.inflight.is_empty() {
                match self.sched.next_event_at() {
                    Some(at) if at <= self.clock.now() => {
                        self.sched.run_until(at);
                        continue;
                    }
                    _ => break,
                }
            }
            let Some(at) = self.sched.next_event_at() else {
                break;
            };
            self.sched.run_until(at);
            // The chain catches up under the pre-boundary fault state;
            // plan transitions due at this instant flip afterwards.
            self.chain.advance_to(self.clock.now());
            self.apply_faults();
        }
        if self.driver.inflight.is_empty() {
            // Nothing left to claim them: drop unclaimed deliveries, like
            // the one-shot processes did.
            self.driver.inbox.clear();
            self.driver.monitoring_inbox.clear();
        }
        self.sync_chain();
        steps
    }

    /// Drains fresh push-out deliveries into the shared inbox, then removes
    /// and returns those matching `pred`. Non-matching deliveries stay for
    /// other in-flight processes.
    pub(crate) fn claim_deliveries(
        &mut self,
        mut pred: impl FnMut(&OutboundDelivery) -> bool,
    ) -> Vec<OutboundDelivery> {
        let fresh =
            match self
                .push_out
                .try_drain(&self.chain, &mut self.net, &self.clock, &mut self.rng)
            {
                Ok(fresh) => fresh,
                Err(OracleError::Pruned(e)) => {
                    // The relay's cursor fell below the prune horizon (it was
                    // idle across a finalized checkpoint). Resync to the
                    // checkpoint's event-cursor floor and re-poll: everything
                    // at or above the horizon is still resident.
                    self.push_out.resync(e.horizon);
                    self.push_out
                        .try_drain(&self.chain, &mut self.net, &self.clock, &mut self.rng)
                        .expect("cursor at horizon is always valid")
                }
                Err(e) => unreachable!("try_drain only reports pruned ranges: {e}"),
            };
        self.driver.inbox.extend(fresh);
        let mut claimed = Vec::new();
        let mut rest = Vec::new();
        for d in self.driver.inbox.drain(..) {
            if pred(&d) {
                claimed.push(d);
            } else {
                rest.push(d);
            }
        }
        self.driver.inbox = rest;
        claimed
    }
}
