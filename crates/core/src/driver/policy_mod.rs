//! Process 5 — policy modification and push-out fan-out.

use std::collections::{HashMap, VecDeque};

use duc_blockchain::{Ledger, Receipt, TxId};
use duc_contracts::topics;
use duc_oracle::{InclusionStatus, OracleError, OutboundDelivery};
use duc_policy::{Duty, Rule, UsagePolicy};
use duc_sim::{EndpointId, SimTime};
use duc_tee::EnforcementAction;

use crate::process::{ProcessError, PropagationOutcome};
use crate::world::World;

use super::flow::{drive_flow, FlowPoll, TxFlow};
use super::{receipt_ok, Machine, Outcome, Step, CONFIRM_TIMEOUT};

/// Process 5 — policy modification and push-out fan-out.
pub(crate) struct PolicyMod<L> {
    webid: String,
    path: String,
    started: SimTime,
    phase: PolicyModPhase<L>,
}

enum PolicyModPhase<L> {
    Start {
        rules: Vec<Rule>,
        duties: Vec<Duty>,
    },
    Confirm {
        flow: TxFlow<L>,
        resource_iri: String,
        version: u64,
    },
    Fanout(FanoutState),
    ConfirmUnregisters(FanoutState),
}

/// Accumulated fan-out state shared by the last two phases of process 5.
struct FanoutState {
    resource_iri: String,
    version: u64,
    deliveries: VecDeque<(OutboundDelivery, UsagePolicy)>,
    by_endpoint: HashMap<EndpointId, String>,
    notified: usize,
    enforcement: Vec<(String, EnforcementAction)>,
    pending: VecDeque<TxId>,
    current: Option<(TxId, SimTime)>,
}

impl<L: Ledger> PolicyMod<L> {
    pub(super) fn new(
        webid: String,
        path: String,
        rules: Vec<Rule>,
        duties: Vec<Duty>,
        started: SimTime,
    ) -> Self {
        PolicyMod {
            webid,
            path,
            started,
            phase: PolicyModPhase::Start { rules, duties },
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let PolicyMod {
            webid,
            path,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        match phase {
            PolicyModPhase::Start { rules, duties } => {
                let Some(owner) = world.owners.get_mut(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                let endpoint = owner.endpoint;
                let owner_key = owner.key;
                let amended = match owner
                    .pod_manager
                    .modify_policy(&webid, &path, rules, duties)
                {
                    Ok(amended) => amended,
                    Err(status) => {
                        return Step::Done(Err(ProcessError::Solid {
                            status,
                            detail: Some("policy modification refused".into()),
                        }))
                    }
                };
                let resource_iri = owner.pod_manager.pod().iri_of(&path);

                let envelope = world.envelope(&amended);
                let version = amended.version;
                let build = {
                    let iri = resource_iri.clone();
                    move |w: &World<L>| {
                        w.dex.update_policy_tx(
                            &w.chain,
                            &owner_key,
                            &iri,
                            envelope.clone(),
                            version,
                        )
                    }
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        Machine::PolicyMod(Box::new(PolicyMod {
                            webid,
                            path,
                            started,
                            phase: PolicyModPhase::Confirm {
                                flow,
                                resource_iri,
                                version,
                            },
                        })),
                        at,
                    ),
                    FlowPoll::Done(res) => {
                        Self::after_confirm(world, webid, path, started, resource_iri, version, res)
                    }
                }
            }
            PolicyModPhase::Confirm {
                flow,
                resource_iri,
                version,
            } => drive_flow!(
                world,
                flow,
                |flow| Machine::PolicyMod(Box::new(PolicyMod {
                    webid: webid.clone(),
                    path: path.clone(),
                    started,
                    phase: PolicyModPhase::Confirm {
                        flow,
                        resource_iri: resource_iri.clone(),
                        version,
                    },
                })),
                |world: &mut World<L>, res| Self::after_confirm(
                    world,
                    webid.clone(),
                    path.clone(),
                    started,
                    resource_iri.clone(),
                    version,
                    res
                )
            ),
            PolicyModPhase::Fanout(mut state) => {
                // Apply every delivery that has arrived by now.
                while state
                    .deliveries
                    .front()
                    .is_some_and(|(d, _)| d.arrives_at <= now)
                {
                    let (delivery, policy) = state.deliveries.pop_front().expect("peeked");
                    let Some(device_name) = state.by_endpoint.get(&delivery.recipient).cloned()
                    else {
                        continue;
                    };
                    let device = world
                        .devices
                        .get_mut(&device_name)
                        .expect("endpoint map is fresh");
                    if !device.tee.has_copy(&state.resource_iri) {
                        continue;
                    }
                    let actions = device.tee.apply_policy_update(
                        &state.resource_iri,
                        policy,
                        delivery.arrives_at,
                    );
                    let device_key = device.key;
                    // The device recompiled its program against the new
                    // version: re-arm its obligation wakeup mid-flight
                    // (ongoing authorization on policy change).
                    world.schedule_obligation(&device_name, &state.resource_iri);
                    world.metrics.record(
                        "process.policy_mod.propagation",
                        delivery.arrives_at - started,
                    );
                    state.notified += 1;
                    for action in actions {
                        if let EnforcementAction::Deleted { .. } = &action {
                            world.metrics.incr("enforcement.deletions");
                            // The copy registry is updated so future rounds
                            // skip this device.
                            let tx = world.dex.unregister_copy_tx(
                                &world.chain,
                                &device_key,
                                &state.resource_iri,
                                &device_name,
                                delivery.arrives_at,
                            );
                            if let Ok(id) = world.chain.submit(tx) {
                                state.pending.push_back(id);
                            }
                        }
                        state.enforcement.push((device_name.clone(), action));
                    }
                }
                match state.deliveries.front() {
                    Some((d, _)) => {
                        let at = d.arrives_at;
                        Step::Sleep(
                            Machine::PolicyMod(Box::new(PolicyMod {
                                webid,
                                path,
                                started,
                                phase: PolicyModPhase::Fanout(state),
                            })),
                            at,
                        )
                    }
                    None => PolicyMod {
                        webid,
                        path,
                        started,
                        phase: PolicyModPhase::ConfirmUnregisters(state),
                    }
                    .step(world),
                }
            }
            PolicyModPhase::ConfirmUnregisters(mut state) => {
                // Await inclusion of *every* pending unregistration so an
                // earlier deletion cannot race a later monitoring round.
                loop {
                    if let Some((id, deadline)) = state.current.take() {
                        match duc_oracle::poll_inclusion(&mut world.chain, now, &id, deadline) {
                            InclusionStatus::Included(_) | InclusionStatus::TimedOut { .. } => {}
                            InclusionStatus::Pending { retry_at } => {
                                state.current = Some((id, deadline));
                                return Step::Sleep(
                                    Machine::PolicyMod(Box::new(PolicyMod {
                                        webid,
                                        path,
                                        started,
                                        phase: PolicyModPhase::ConfirmUnregisters(state),
                                    })),
                                    retry_at,
                                );
                            }
                        }
                    } else if let Some(id) = state.pending.pop_front() {
                        state.current = Some((id, now + CONFIRM_TIMEOUT));
                    } else {
                        break;
                    }
                }
                world.sync_chain();

                let e2e = now - started;
                world.metrics.record("process.policy_mod.e2e", e2e);
                world.trace.record(
                    now,
                    format!("pm:{webid}"),
                    "policy.updated",
                    format!("{} v{}", state.resource_iri, state.version),
                );
                Step::Done(Ok(Outcome::PolicyPropagated(PropagationOutcome {
                    version: state.version,
                    devices_notified: state.notified,
                    enforcement: state.enforcement,
                    e2e,
                })))
            }
        }
    }

    /// Transition out of the confirm phase: record gas, claim this
    /// resource's push-out deliveries and start the fan-out.
    fn after_confirm(
        world: &mut World<L>,
        webid: String,
        path: String,
        started: SimTime,
        resource_iri: String,
        version: u64,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        world
            .metrics
            .add("process.policy_mod.gas", receipt.gas_used);

        // Push-out fan-out to subscribed devices: claim the deliveries that
        // belong to *this* resource; others stay in the shared inbox for
        // their own in-flight processes.
        let iri = resource_iri.clone();
        let claimed = world.claim_deliveries(|d| {
            d.event.topic == topics::POLICY_UPDATED
                && decode_policy_update(&d.event.data)
                    .is_some_and(|(res, v, _, _)| res == iri && v == version)
        });
        // Integrity gate: read the policy hash the contract anchored in
        // the *on-chain record* (not the hash travelling inside the pushed
        // event, which a tampered relay could rewrite alongside the
        // envelope). Devices only recompile against bytes matching the
        // chain-side anchor; superseded envelopes (an even newer update
        // already landed) are dropped the same way — their own fan-out
        // delivers the newer policy.
        let anchored_hash = match world.dex.lookup_resource(&world.chain, &resource_iri) {
            Ok(Some(record)) => record.policy_hash,
            Ok(None) => return Step::Done(Err(ProcessError::UnknownResource(resource_iri))),
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        let mut deliveries: Vec<(OutboundDelivery, UsagePolicy)> = Vec::new();
        for delivery in claimed {
            let Some((_, _, policy_env, _)) = decode_policy_update(&delivery.event.data) else {
                continue;
            };
            if policy_env.digest() != anchored_hash {
                world.metrics.incr("driver.policy_update.hash_mismatch");
                continue;
            }
            let policy = match world.open_envelope(&policy_env) {
                Ok(policy) => policy,
                Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
            };
            deliveries.push((delivery, policy));
        }
        deliveries.sort_by_key(|(d, _)| d.arrives_at);

        let by_endpoint: HashMap<EndpointId, String> = world
            .devices
            .iter()
            .map(|(name, d)| (d.endpoint, name.to_string()))
            .collect();
        PolicyMod {
            webid,
            path,
            started,
            phase: PolicyModPhase::Fanout(FanoutState {
                resource_iri,
                version,
                deliveries: deliveries.into(),
                by_endpoint,
                notified: 0,
                enforcement: Vec::new(),
                pending: VecDeque::new(),
                current: None,
            }),
        }
        .step(world)
    }
}

/// Decodes a `PolicyUpdated` event payload: `(resource, version,
/// envelope, policy_hash)` — the hash anchors the exact policy bytes
/// on-chain, and devices verify the pushed envelope against it before
/// recompiling their local program.
fn decode_policy_update(
    data: &[u8],
) -> Option<(
    String,
    u64,
    duc_contracts::PolicyEnvelope,
    duc_crypto::Digest,
)> {
    duc_codec::decode_from_slice(data).ok()
}
