//! Process 6 — policy monitoring round.

use std::collections::VecDeque;
use std::rc::Rc;

use duc_blockchain::{Event, Ledger, Receipt};
use duc_contracts::{topics, DistExchangeClient, EvidenceReaffirmation, EvidenceSubmission};
use duc_oracle::{HopKind, OracleError};
use duc_sim::{EndpointId, SimTime};

use crate::process::{MonitoringOutcome, ProcessError};
use crate::world::World;
use duc_tee::ReportedEvidence;

use super::flow::{FlowPoll, TxFlow};
use super::hop::{Hop, HopPoll};
use super::{receipt_ok, Machine, Outcome, Step};

/// Process 6 — policy monitoring round.
pub(crate) struct Monitoring<L> {
    webid: String,
    path: String,
    started: SimTime,
    phase: MonPhase<L>,
}

/// Context accumulated while a monitoring round runs.
struct MonCtx {
    resource_iri: String,
    endpoint: EndpointId,
    round: u64,
    expected: VecDeque<String>,
    expected_total: usize,
    evidence_bytes: usize,
    submissions: usize,
    /// Reaffirmations recorded this round (incremental monitoring).
    reaffirmed: usize,
    /// Encoded size of the submission currently awaiting confirmation
    /// (accounted into `evidence_bytes` only once it lands on-chain).
    pending_bytes: usize,
    /// On evidence confirmation, remember this on the device's TEE so the
    /// *next* round can reaffirm instead of resubmitting. `None` for
    /// reaffirmations (the pointer must keep naming the round holding the
    /// full evidence).
    pending_note: Option<(String, ReportedEvidence)>,
}

enum MonPhase<L> {
    Open,
    OpenConfirm {
        flow: TxFlow<L>,
        resource_iri: String,
        endpoint: EndpointId,
    },
    /// Poll hop (relay → gateway), fault-aware.
    PollOut {
        ctx: MonCtx,
        hop: Hop,
    },
    PollGateway(MonCtx),
    /// Return hop (gateway → relay), fault-aware; the cursor commits only
    /// when the response actually arrives.
    PollReturn {
        ctx: MonCtx,
        events: Vec<(u64, Rc<Event>)>,
        cursor_to: u64,
        hop: Hop,
    },
    PollArrived {
        ctx: MonCtx,
        events: Vec<(u64, Rc<Event>)>,
        cursor_to: u64,
    },
    DeviceRequest(MonCtx),
    /// Evidence probe hop (relay → device), fault-aware: a device that
    /// stays unreachable past the hop budget is skipped, not fatal.
    DeviceProbe {
        ctx: MonCtx,
        device: String,
        hop: Hop,
    },
    DeviceReport {
        ctx: MonCtx,
        device: String,
    },
    EvidenceConfirm {
        ctx: MonCtx,
        flow: TxFlow<L>,
    },
}

impl<L: Ledger> Monitoring<L> {
    #[allow(clippy::too_many_lines)]
    pub(super) fn new(webid: String, path: String, started: SimTime) -> Self {
        Monitoring {
            webid,
            path,
            started,
            phase: MonPhase::Open,
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let Monitoring {
            webid,
            path,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        let wrap = |phase| {
            Machine::Monitoring(Box::new(Monitoring {
                webid: webid.clone(),
                path: path.clone(),
                started,
                phase,
            }))
        };
        match phase {
            MonPhase::Open => {
                let Some(owner) = world.try_owner(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                let endpoint = owner.endpoint;
                let resource_iri = owner.pod_manager.pod().iri_of(&path);
                let owner_key = owner.key;

                // Open the round.
                let build = {
                    let iri = resource_iri.clone();
                    move |w: &World<L>| w.dex.start_monitoring_tx(&w.chain, &owner_key, &iri)
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        wrap(MonPhase::OpenConfirm {
                            flow,
                            resource_iri,
                            endpoint,
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::OpenConfirm {
                            flow: TxFlow::Spent,
                            resource_iri,
                            endpoint,
                        },
                    }
                    .open_confirmed(world, res),
                }
            }
            MonPhase::OpenConfirm {
                flow,
                resource_iri,
                endpoint,
            } => {
                let mut flow = flow;
                match flow.step(world) {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        wrap(MonPhase::OpenConfirm {
                            flow,
                            resource_iri,
                            endpoint,
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::OpenConfirm {
                            flow: TxFlow::Spent,
                            resource_iri,
                            endpoint,
                        },
                    }
                    .open_confirmed(world, res),
                }
            }
            MonPhase::PollOut { ctx, mut hop } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(wrap(MonPhase::PollGateway(ctx)), arrives),
                HopPoll::Retry { at } => Step::Sleep(wrap(MonPhase::PollOut { ctx, hop }), at),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            MonPhase::PollGateway(ctx) => {
                // At the gateway: collect the request events and ship them
                // back to the relay. The cursor commits only when the
                // response arrives, so a lost hop never strands events.
                // A cursor stranded below the prune horizon (pruning ran
                // while the poll was in flight) resyncs to the checkpoint's
                // event-cursor floor instead of reading silently-empty
                // ranges; rounds whose request events were evicted get
                // re-opened by the scheduler, not replayed from the log.
                let (events, response_size, cursor_to) =
                    match world.pull_in.try_collect_requests(&world.chain) {
                        Ok(collected) => collected,
                        Err(OracleError::Pruned(e)) => {
                            world.pull_in.resync(e.horizon);
                            world
                                .pull_in
                                .try_collect_requests(&world.chain)
                                .expect("cursor at horizon is always valid")
                        }
                        Err(e) => {
                            unreachable!("try_collect_requests only reports pruned ranges: {e}")
                        }
                    };
                let hop = Hop::new(
                    world,
                    world.gateway,
                    world.pull_in.relay,
                    response_size,
                    HopKind::PullInReturn,
                );
                Step::Sleep(
                    wrap(MonPhase::PollReturn {
                        ctx,
                        events,
                        cursor_to,
                        hop,
                    }),
                    now,
                )
            }
            MonPhase::PollReturn {
                ctx,
                events,
                cursor_to,
                mut hop,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(
                    wrap(MonPhase::PollArrived {
                        ctx,
                        events,
                        cursor_to,
                    }),
                    arrives,
                ),
                HopPoll::Retry { at } => Step::Sleep(
                    wrap(MonPhase::PollReturn {
                        ctx,
                        events,
                        cursor_to,
                        hop,
                    }),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            MonPhase::PollArrived {
                mut ctx,
                events,
                cursor_to,
            } => {
                world.pull_in.commit_cursor(cursor_to);
                // Find our round's request among the fresh events and any
                // stashed by sibling rounds; stash the rest for them. Both
                // sources share one decode policy: an undecodable payload
                // can never match any round, so it is dropped (counted)
                // rather than failing this round or circulating forever.
                let mut matched: Option<Vec<String>> = None;
                let stashed = std::mem::take(&mut world.driver.monitoring_inbox);
                for (height, event) in stashed.into_iter().chain(events) {
                    match decode_monitoring_request(&event.data) {
                        Some((res, r, devices))
                            if matched.is_none() && res == ctx.resource_iri && r == ctx.round =>
                        {
                            matched = Some(devices);
                        }
                        Some(_) => world.driver.monitoring_inbox.push((height, event)),
                        None => world.metrics.incr("driver.monitoring.bad_event"),
                    }
                }
                if let Some(devices) = matched {
                    ctx.expected_total = devices.len();
                    ctx.expected = devices.into();
                }
                Monitoring {
                    webid,
                    path,
                    started,
                    phase: MonPhase::DeviceRequest(ctx),
                }
                .step(world)
            }
            MonPhase::DeviceRequest(mut ctx) => {
                // Collect signed evidence from each expected device, in
                // order; devices that stay unreachable past the probe
                // budget are skipped without stalling the round.
                loop {
                    let Some(device_name) = ctx.expected.pop_front() else {
                        return Self::finish(world, webid, started, ctx);
                    };
                    let Some(device) = world.try_device(&device_name) else {
                        continue;
                    };
                    let dev_endpoint = device.endpoint;
                    // Request hop: oracle → device (fault-aware).
                    let hop = Hop::new(
                        world,
                        world.pull_in.relay,
                        dev_endpoint,
                        128,
                        HopKind::DeviceProbe,
                    );
                    return Step::Sleep(
                        wrap(MonPhase::DeviceProbe {
                            ctx,
                            device: device_name,
                            hop,
                        }),
                        now,
                    );
                }
            }
            MonPhase::DeviceProbe {
                ctx,
                device,
                mut hop,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => {
                    Step::Sleep(wrap(MonPhase::DeviceReport { ctx, device }), arrives)
                }
                HopPoll::Retry { at } => {
                    Step::Sleep(wrap(MonPhase::DeviceProbe { ctx, device, hop }), at)
                }
                HopPoll::Failed(_) => {
                    // The device could not be reached within the probe
                    // budget: record it and move on — absent evidence is
                    // itself visible in the on-chain round.
                    world.metrics.incr("process.monitoring.unreachable");
                    Monitoring {
                        webid: webid.clone(),
                        path: path.clone(),
                        started,
                        phase: MonPhase::DeviceRequest(ctx),
                    }
                    .step(world)
                }
            },
            MonPhase::DeviceReport { mut ctx, device } => {
                let Some(dev) = world.try_device(&device) else {
                    return Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::DeviceRequest(ctx),
                    }
                    .step(world);
                };
                let Some(report) = dev.tee.report(&ctx.resource_iri, now) else {
                    return Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::DeviceRequest(ctx),
                    }
                    .step(world);
                };
                // Incremental monitoring: when the usage log is unchanged
                // since the device's last *compliant* full submission, the
                // enclave signs a compact reaffirmation instead of
                // re-shipping (and the contract re-storing) the full
                // evidence.
                let reaffirmable = report.compliant
                    && report.violations.is_empty()
                    && dev
                        .tee
                        .last_reported(&ctx.resource_iri)
                        .is_some_and(|prev| prev.compliant && prev.digest == report.log_digest);
                let dev_endpoint = dev.endpoint;
                let key = dev.key;
                let (flow, poll) = if reaffirmable {
                    let prev_round = dev
                        .tee
                        .last_reported(&ctx.resource_iri)
                        .expect("checked above")
                        .round;
                    let mut reaff = EvidenceReaffirmation {
                        resource: ctx.resource_iri.clone(),
                        round: ctx.round,
                        device: device.clone(),
                        prev_round,
                        evidence_digest: report.log_digest,
                        signature: duc_crypto::Signature { e: 0, s: 0 },
                    };
                    reaff.signature = dev.tee.enclave().sign(&reaff.signing_bytes());
                    ctx.pending_bytes = duc_codec::encode_to_vec(&reaff).len();
                    ctx.pending_note = None;
                    let build =
                        move |w: &World<L>| w.dex.reaffirm_evidence_tx(&w.chain, &key, &reaff);
                    TxFlow::start(world, dev_endpoint, build)
                } else {
                    let mut submission = EvidenceSubmission {
                        resource: ctx.resource_iri.clone(),
                        round: ctx.round,
                        device: device.clone(),
                        compliant: report.compliant,
                        violations: report.violations.clone(),
                        evidence_digest: report.log_digest,
                        signature: duc_crypto::Signature { e: 0, s: 0 },
                    };
                    submission.signature = dev.tee.enclave().sign(&submission.signing_bytes());
                    ctx.pending_bytes = duc_codec::encode_to_vec(&submission).len();
                    ctx.pending_note = Some((
                        device.clone(),
                        ReportedEvidence {
                            round: ctx.round,
                            digest: report.log_digest,
                            compliant: report.compliant,
                        },
                    ));
                    let build =
                        move |w: &World<L>| w.dex.record_evidence_tx(&w.chain, &key, &submission);
                    TxFlow::start(world, dev_endpoint, build)
                };
                match poll {
                    FlowPoll::Sleep(at) => {
                        Step::Sleep(wrap(MonPhase::EvidenceConfirm { ctx, flow }), at)
                    }
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::EvidenceConfirm {
                            ctx,
                            flow: TxFlow::Spent,
                        },
                    }
                    .evidence_confirmed(world, res),
                }
            }
            MonPhase::EvidenceConfirm { ctx, flow } => {
                let mut flow = flow;
                match flow.step(world) {
                    FlowPoll::Sleep(at) => {
                        Step::Sleep(wrap(MonPhase::EvidenceConfirm { ctx, flow }), at)
                    }
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::EvidenceConfirm {
                            ctx,
                            flow: TxFlow::Spent,
                        },
                    }
                    .evidence_confirmed(world, res),
                }
            }
        }
    }

    /// The round-opening transaction confirmed: decode the round number and
    /// start the pull-in poll.
    fn open_confirmed(self, world: &mut World<L>, res: Result<Receipt, OracleError>) -> Step<L> {
        let Monitoring {
            webid,
            path,
            started,
            phase,
        } = self;
        let MonPhase::OpenConfirm {
            resource_iri,
            endpoint,
            ..
        } = phase
        else {
            unreachable!("open_confirmed called outside OpenConfirm")
        };
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let round = match DistExchangeClient::decode_round_number(&receipt.return_data) {
            Ok(round) => round,
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        world
            .metrics
            .add("process.monitoring.gas", receipt.gas_used);

        // Pull-in oracle: poll the gateway for the request event
        // (fault-aware hop).
        let now = world.clock.now();
        let hop = Hop::new(
            world,
            world.pull_in.relay,
            world.gateway,
            64,
            HopKind::PullInPoll,
        );
        Step::Sleep(
            Machine::Monitoring(Box::new(Monitoring {
                webid,
                path,
                started,
                phase: MonPhase::PollOut {
                    ctx: MonCtx {
                        resource_iri,
                        endpoint,
                        round,
                        expected: VecDeque::new(),
                        expected_total: 0,
                        evidence_bytes: 0,
                        submissions: 0,
                        reaffirmed: 0,
                        pending_bytes: 0,
                        pending_note: None,
                    },
                    hop,
                },
            })),
            now,
        )
    }

    /// One device's evidence transaction confirmed: account for it and move
    /// on to the next device.
    fn evidence_confirmed(
        self,
        world: &mut World<L>,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let Monitoring {
            webid,
            path,
            started,
            phase,
        } = self;
        let MonPhase::EvidenceConfirm { mut ctx, .. } = phase else {
            unreachable!("evidence_confirmed called outside EvidenceConfirm")
        };
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        world
            .metrics
            .add("process.monitoring.gas", receipt.gas_used);
        ctx.submissions += 1;
        ctx.evidence_bytes += std::mem::take(&mut ctx.pending_bytes);
        // Only a *confirmed* submission counts: full evidence is noted
        // device-side so the next unchanged round can reaffirm against
        // this round; a confirmed reaffirmation bumps the counters.
        match ctx.pending_note.take() {
            Some((device, reported)) => {
                if let Some(dev) = world.devices.get_mut(&device) {
                    dev.tee.note_reported(&ctx.resource_iri, reported);
                }
            }
            None => {
                ctx.reaffirmed += 1;
                world.metrics.incr("process.monitoring.reaffirmed");
            }
        }
        Monitoring {
            webid,
            path,
            started,
            phase: MonPhase::DeviceRequest(ctx),
        }
        .step(world)
    }

    /// Every expected device was visited: read the verdict, deliver it to
    /// the pod manager (push-out) and complete.
    fn finish(world: &mut World<L>, webid: String, started: SimTime, ctx: MonCtx) -> Step<L> {
        let record = match world
            .dex
            .get_round(&world.chain, &ctx.resource_iri, ctx.round)
        {
            Ok(Some(record)) => record,
            Ok(None) => return Step::Done(Err(ProcessError::Policy("round vanished".into()))),
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        let endpoint = ctx.endpoint;
        let resource = ctx.resource_iri.clone();
        let round = ctx.round;
        let deliveries = world.claim_deliveries(|d| {
            d.event.topic == topics::ROUND_CLOSED
                && d.recipient == endpoint
                && decode_round_closed(&d.event.data)
                    .is_some_and(|(res, r)| res == resource && r == round)
        });
        if !deliveries.is_empty() {
            world.metrics.incr("process.monitoring.verdicts_delivered");
        }

        let now = world.clock.now();
        let duration = now - started;
        world.metrics.record("process.monitoring.e2e", duration);
        world.metrics.add(
            "process.monitoring.evidence_bytes",
            ctx.evidence_bytes as u64,
        );
        world.trace.record(
            now,
            format!("pm:{webid}"),
            "monitoring.round",
            format!(
                "{} round {}: {} violators",
                ctx.resource_iri,
                ctx.round,
                record.violators().len()
            ),
        );
        Step::Done(Ok(Outcome::Monitored(MonitoringOutcome {
            round: ctx.round,
            expected: ctx.expected_total,
            evidence: ctx.submissions,
            violators: record
                .violators()
                .iter()
                .map(|e| e.device.clone())
                .collect(),
            evidence_bytes: ctx.evidence_bytes,
            duration,
        })))
    }
}

/// Decodes a `MonitoringRequested` event payload.
fn decode_monitoring_request(data: &[u8]) -> Option<(String, u64, Vec<String>)> {
    duc_codec::decode_from_slice(data).ok()
}

/// Decodes the `(resource, round)` prefix of a `RoundClosed` event payload.
fn decode_round_closed(data: &[u8]) -> Option<(String, u64)> {
    duc_codec::decode_from_slice::<(String, u64, u64, Vec<String>)>(data)
        .ok()
        .map(|(res, round, _, _)| (res, round))
}
