//! Market subscription — the certificate prerequisite of process 4 (§II).

use duc_blockchain::{Ledger, Receipt};
use duc_contracts::DistExchangeClient;
use duc_oracle::OracleError;
use duc_sim::SimTime;

use crate::process::ProcessError;
use crate::world::World;

use super::flow::{drive_flow, FlowPoll, TxFlow};
use super::{receipt_ok, Machine, Outcome, Step};

/// Market subscription (prerequisite of process 4, cf. §II).
pub(crate) struct Subscribe<L> {
    device: String,
    started: SimTime,
    phase: SubscribePhase<L>,
}

enum SubscribePhase<L> {
    Start,
    Confirm(TxFlow<L>),
}

impl<L: Ledger> Subscribe<L> {
    pub(super) fn new(device: String, started: SimTime) -> Self {
        Subscribe {
            device,
            started,
            phase: SubscribePhase::Start,
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let Subscribe {
            device,
            started,
            phase,
        } = self;
        match phase {
            SubscribePhase::Start => {
                let Some(dev) = world.try_device(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let endpoint = dev.endpoint;
                let key = dev.key;
                let webid = dev.webid.clone();
                let build = move |w: &World<L>| w.dex.subscribe_tx(&w.chain, &key, &webid);
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        Machine::Subscribe(Subscribe {
                            device,
                            started,
                            phase: SubscribePhase::Confirm(flow),
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Self::finish(world, device, started, res),
                }
            }
            SubscribePhase::Confirm(flow) => drive_flow!(
                world,
                flow,
                |flow| Machine::Subscribe(Subscribe {
                    device: device.clone(),
                    started,
                    phase: SubscribePhase::Confirm(flow),
                }),
                |world: &mut World<L>, res| Self::finish(world, device.clone(), started, res)
            ),
        }
    }

    fn finish(
        world: &mut World<L>,
        device: String,
        started: SimTime,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let cert = match DistExchangeClient::decode_certificate(&receipt.return_data) {
            Ok(cert) => cert,
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        world
            .devices
            .get_mut(&device)
            .expect("validated at submit")
            .certificate = Some(cert);
        let now = world.clock.now();
        world.metrics.record("process.subscribe.e2e", now - started);
        world.metrics.add("process.subscribe.gas", receipt.gas_used);
        Step::Done(Ok(Outcome::Subscribed { certificate: cert }))
    }
}
