//! A fault-aware network hop, the retry/suspend primitive every process
//! machine drives its raw messages (pod fetches, oracle reads, monitoring
//! probes) through.

use duc_blockchain::Ledger;
use duc_oracle::{HopKind, OracleError};
use duc_sim::{EndpointId, SimTime};

use crate::world::World;

use super::{hop_backoff, HOP_TIMEOUT, MAX_HOP_ATTEMPTS};

/// A fault-aware network hop: one message that must cross one link, with
/// bounded deterministic retries against transient loss and suspend/resume
/// across declared crash/partition windows.
///
/// Every process machine drives its raw hops (pod fetches, oracle reads,
/// monitoring probes) through this, so a fault hitting an in-flight process
/// either heals within the hop's budget — the process resumes and completes
/// — or surfaces as a typed [`OracleError::GaveUp`]; a ticket can never
/// hang on a dead link.
pub(crate) struct Hop {
    from: EndpointId,
    to: EndpointId,
    size: u64,
    kind: HopKind,
    attempt: u32,
    deadline: SimTime,
}

/// One advance of a [`Hop`].
pub(crate) enum HopPoll {
    /// The message is on the wire; it arrives at the instant.
    Sent {
        /// Arrival instant at the destination.
        arrives: SimTime,
    },
    /// Not sent (loss backoff or fault-window suspension); re-step the hop
    /// at the instant.
    Retry {
        /// When to re-step.
        at: SimTime,
    },
    /// The retry budget is exhausted or a permanent fault blocks the pair.
    Failed(OracleError),
}

impl Hop {
    pub(crate) fn new<L: Ledger>(
        world: &World<L>,
        from: EndpointId,
        to: EndpointId,
        size: u64,
        kind: HopKind,
    ) -> Hop {
        Hop {
            from,
            to,
            size,
            kind,
            attempt: 0,
            deadline: world.clock.now() + HOP_TIMEOUT,
        }
    }

    fn gave_up<L: Ledger>(&self, world: &mut World<L>) -> HopPoll {
        world.metrics.incr("driver.hop.gave_up");
        HopPoll::Failed(OracleError::GaveUp {
            hop: self.kind,
            attempts: self.attempt,
            deadline: self.deadline,
        })
    }

    pub(crate) fn step<L: Ledger>(&mut self, world: &mut World<L>) -> HopPoll {
        let now = world.clock.now();
        // A declared crash/partition window blocks the pair outright:
        // suspend without burning wire attempts and resume exactly at
        // recovery (or give up when recovery lies past the budget).
        if !world.fault_plan().allows(self.from, self.to, now) {
            world.metrics.incr("driver.hop.suspended");
            return match world.fault_plan().next_clear(self.from, self.to, now) {
                Some(at) if at <= self.deadline => HopPoll::Retry { at },
                _ => self.gave_up(world),
            };
        }
        self.attempt += 1;
        match world
            .net
            .transmit(self.from, self.to, self.size, &mut world.rng)
            .delay()
        {
            Some(d) => HopPoll::Sent { arrives: now + d },
            None => {
                world.metrics.incr("driver.hop.drops");
                if self.attempt >= MAX_HOP_ATTEMPTS {
                    return self.gave_up(world);
                }
                let at = now + hop_backoff(self.attempt);
                if at > self.deadline {
                    self.gave_up(world)
                } else {
                    HopPoll::Retry { at }
                }
            }
        }
    }
}
