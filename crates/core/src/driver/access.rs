//! Process 4 — resource access into the TEE.

use duc_blockchain::{Ledger, Receipt};
use duc_contracts::topics;
use duc_crypto::{Digest, PublicKey};
use duc_oracle::{HopKind, OracleError};
use duc_sim::{EndpointId, SimDuration, SimTime};
use duc_solid::{Body, SolidRequest, Status};

use crate::process::{AccessOutcome, ProcessError};
use crate::world::{IndexEntry, World};

use super::flow::{drive_flow, FlowPoll, TxFlow};
use super::hop::{Hop, HopPoll};
use super::{receipt_ok, Machine, Outcome, Step};

/// Process 4 — resource access into the TEE.
pub(crate) struct Access<L> {
    device: String,
    resource: String,
    started: SimTime,
    phase: AccessPhase<L>,
}

enum AccessPhase<L> {
    Start,
    /// Request hop (device → pod manager), fault-aware.
    ToPod {
        hop: Hop,
        fetch_start: SimTime,
        request: SolidRequest,
        owner_webid: String,
        owner_endpoint: EndpointId,
        dev_endpoint: EndpointId,
        cert_ok: bool,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    AtPod {
        fetch_start: SimTime,
        request: SolidRequest,
        owner_webid: String,
        owner_endpoint: EndpointId,
        dev_endpoint: EndpointId,
        cert_ok: bool,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    /// Response hop (pod manager → device), fault-aware. The pod manager
    /// served the request exactly once; retries only re-send the bytes.
    FromPod {
        hop: Hop,
        fetch_start: SimTime,
        bytes: Vec<u8>,
        dev_endpoint: EndpointId,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    Arrived {
        fetch_start: SimTime,
        bytes: Vec<u8>,
        dev_endpoint: EndpointId,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    Confirm {
        flow: TxFlow<L>,
        fetch: SimDuration,
        bytes_len: usize,
        dev_endpoint: EndpointId,
    },
}

impl<L: Ledger> Access<L> {
    #[allow(clippy::too_many_lines)]
    pub(super) fn new(device: String, resource: String, started: SimTime) -> Self {
        Access {
            device,
            resource,
            started,
            phase: AccessPhase::Start,
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let Access {
            device,
            resource,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        match phase {
            AccessPhase::Start => {
                let Some(dev) = world.try_device(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let Some(entry) = dev.indexed.get(&resource).cloned() else {
                    return Step::Done(Err(ProcessError::NotIndexed { device, resource }));
                };
                let Some(certificate) = dev.certificate else {
                    return Step::Done(Err(ProcessError::NoCertificate(dev.webid.clone())));
                };
                let webid = dev.webid.clone();
                let dev_endpoint = dev.endpoint;

                // Attestation gate: only recognized trusted applications
                // may hold governed copies (the market's terms, §II).
                let Some(quote) = world.attestation.issue_quote(dev.tee.enclave()) else {
                    return Step::Done(Err(ProcessError::Attestation(format!(
                        "measurement not trusted for {device}"
                    ))));
                };

                let Some(owner) = world.try_owner(&entry.owner_webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(entry.owner_webid)));
                };
                let owner_endpoint = owner.endpoint;
                let root = owner.pod_manager.pod().root().to_string();
                let path = entry
                    .location
                    .strip_prefix(&root)
                    .unwrap_or(entry.location.as_str())
                    .to_string();

                // The pod manager verifies the certificate against the DE
                // App (its own blockchain interaction module does a view
                // call).
                let cert_ok = match world
                    .dex
                    .verify_certificate(&world.chain, &certificate, &webid)
                {
                    Ok(ok) => ok,
                    Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                };

                // Request hop: device → pod manager (fault-aware).
                let request = SolidRequest::get(webid, path).with_certificate(certificate);
                let hop = Hop::new(
                    world,
                    dev_endpoint,
                    owner_endpoint,
                    request.size() as u64,
                    HopKind::PodRequest,
                );
                Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::ToPod {
                            hop,
                            fetch_start: now,
                            request,
                            owner_webid: entry.owner_webid.clone(),
                            owner_endpoint,
                            dev_endpoint,
                            cert_ok,
                            entry,
                            enclave_key: quote.enclave_key,
                        },
                    })),
                    now,
                )
            }
            AccessPhase::ToPod {
                mut hop,
                fetch_start,
                request,
                owner_webid,
                owner_endpoint,
                dev_endpoint,
                cert_ok,
                entry,
                enclave_key,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::AtPod {
                            fetch_start,
                            request,
                            owner_webid,
                            owner_endpoint,
                            dev_endpoint,
                            cert_ok,
                            entry,
                            enclave_key,
                        },
                    })),
                    arrives,
                ),
                HopPoll::Retry { at } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::ToPod {
                            hop,
                            fetch_start,
                            request,
                            owner_webid,
                            owner_endpoint,
                            dev_endpoint,
                            cert_ok,
                            entry,
                            enclave_key,
                        },
                    })),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            AccessPhase::AtPod {
                fetch_start,
                request,
                owner_webid,
                owner_endpoint,
                dev_endpoint,
                cert_ok,
                entry,
                enclave_key,
            } => {
                let owner = world
                    .owners
                    .get_mut(&owner_webid)
                    .expect("checked at start");
                let verifier = move |_: &Digest, _: &str| cert_ok;
                let resp = owner.pod_manager.handle_with_verifier(&request, &verifier);
                if resp.status != Status::Ok {
                    return Step::Done(Err(ProcessError::Solid {
                        status: resp.status,
                        detail: resp.detail,
                    }));
                }
                // Response hop: pod manager → device (size-dependent,
                // fault-aware).
                let hop = Hop::new(
                    world,
                    owner_endpoint,
                    dev_endpoint,
                    resp.size() as u64,
                    HopKind::PodResponse,
                );
                let bytes = match resp.body {
                    Body::Turtle(t) | Body::Text(t) => t.into_bytes(),
                    Body::Binary(b) => b,
                    Body::Empty => Vec::new(),
                };
                Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::FromPod {
                            hop,
                            fetch_start,
                            bytes,
                            dev_endpoint,
                            entry,
                            enclave_key,
                        },
                    })),
                    now,
                )
            }
            AccessPhase::FromPod {
                mut hop,
                fetch_start,
                bytes,
                dev_endpoint,
                entry,
                enclave_key,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::Arrived {
                            fetch_start,
                            bytes,
                            dev_endpoint,
                            entry,
                            enclave_key,
                        },
                    })),
                    arrives,
                ),
                HopPoll::Retry { at } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::FromPod {
                            hop,
                            fetch_start,
                            bytes,
                            dev_endpoint,
                            entry,
                            enclave_key,
                        },
                    })),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            AccessPhase::Arrived {
                fetch_start,
                bytes,
                dev_endpoint,
                entry,
                enclave_key,
            } => {
                let fetch = now - fetch_start;
                let bytes_len = bytes.len();
                let dev = world.devices.get_mut(&device).expect("checked at start");
                let webid = dev.webid.clone();
                dev.tee
                    .store_resource(&resource, &bytes, entry.policy.clone(), now);

                // Register the copy on-chain and subscribe to policy
                // updates.
                let build = {
                    let key = dev.key;
                    let resource = resource.clone();
                    let device = device.clone();
                    move |w: &World<L>| {
                        w.dex.register_copy_tx(
                            &w.chain,
                            &key,
                            &resource,
                            &device,
                            &webid,
                            enclave_key,
                        )
                    }
                };
                let (flow, poll) = TxFlow::start(world, dev_endpoint, build);
                let next = Access {
                    device,
                    resource,
                    started,
                    phase: AccessPhase::Confirm {
                        flow,
                        fetch,
                        bytes_len,
                        dev_endpoint,
                    },
                };
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(Machine::Access(Box::new(next)), at),
                    FlowPoll::Done(res) => {
                        let Access {
                            device,
                            resource,
                            started,
                            phase,
                        } = next;
                        let AccessPhase::Confirm {
                            fetch,
                            bytes_len,
                            dev_endpoint,
                            ..
                        } = phase
                        else {
                            unreachable!()
                        };
                        Self::finish(
                            world,
                            device,
                            resource,
                            started,
                            fetch,
                            bytes_len,
                            dev_endpoint,
                            res,
                        )
                    }
                }
            }
            AccessPhase::Confirm {
                flow,
                fetch,
                bytes_len,
                dev_endpoint,
            } => drive_flow!(
                world,
                flow,
                |flow| Machine::Access(Box::new(Access {
                    device: device.clone(),
                    resource: resource.clone(),
                    started,
                    phase: AccessPhase::Confirm {
                        flow,
                        fetch,
                        bytes_len,
                        dev_endpoint
                    },
                })),
                |world: &mut World<L>, res| Self::finish(
                    world,
                    device.clone(),
                    resource.clone(),
                    started,
                    fetch,
                    bytes_len,
                    dev_endpoint,
                    res
                )
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        world: &mut World<L>,
        device: String,
        resource: String,
        started: SimTime,
        fetch: SimDuration,
        bytes_len: usize,
        dev_endpoint: EndpointId,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => {
                // The governed copy was sealed into the TEE before the
                // on-chain registration; a failed registration rolls it
                // back so no *unregistered* copy survives a fault
                // (fail-safe: the TEE never retains what it could not
                // prove it may hold). A re-access whose earlier
                // registration is already on-chain keeps its copy — that
                // registration is still valid and re-registration is
                // idempotent. A timed-out tx that confirms *after* the
                // rollback leaves a stale registry record pointing at a
                // deleted copy; monitoring surfaces exactly that (the
                // device reports nothing for it).
                let now = world.clock.now();
                let registered = world
                    .dex
                    .list_copies(&world.chain, &resource)
                    .is_ok_and(|copies| copies.iter().any(|c| c.device == device));
                if !registered {
                    if let Some(dev) = world.devices.get_mut(&device) {
                        if dev.tee.delete(&resource, now) {
                            world.metrics.incr("driver.access.rolled_back");
                        }
                    }
                }
                return Step::Done(Err(e));
            }
        };
        world
            .push_out
            .subscribe(topics::POLICY_UPDATED, dev_endpoint);
        // The copy is sealed and registered: arm its obligation wakeup so
        // retention/expiry duties fire at their declared instant.
        world.schedule_obligation(&device, &resource);

        let now = world.clock.now();
        let e2e = now - started;
        world.metrics.record("process.access.e2e", e2e);
        world.metrics.record("process.access.fetch", fetch);
        world.metrics.add("process.access.gas", receipt.gas_used);
        world.metrics.add("process.access.bytes", bytes_len as u64);
        world
            .trace
            .record(now, format!("tee:{device}"), "resource.stored", resource);
        Step::Done(Ok(Outcome::Accessed(AccessOutcome {
            bytes: bytes_len,
            e2e,
            fetch,
        })))
    }
}
