//! The obligation scheduler — deadline-driven usage enforcement.
//!
//! When a governed copy enters a TEE (process 4) or its policy changes
//! (process 5 / a `PolicyUpdated` event), the driver registers a wakeup on
//! the [`duc_sim::Scheduler`] at the copy's compiled
//! `PolicyProgram::next_deadline` instant. When the wakeup fires, an
//! internal [`ObligationRun`] machine executes the due duties — the TEE
//! deletes the overdue copy, notification duties surface — and anchors the
//! on-chain evidence (the `unregister_copy` transaction and its
//! `CopyRemoved` event) through the same non-blocking [`TxFlow`] the user
//! processes use. Enforcement therefore lands at the *declared instant*
//! instead of at the next monitoring sweep, and the `enforcement.lag`
//! histogram (now − deadline) measures exactly the violation→enforcement
//! latency experiment E14 reports.
//!
//! Under [`EnforcementMode::Periodic`] the wakeups land on a fixed grid
//! instead — the round-based baseline E14 compares against.

use duc_blockchain::{Ledger, Receipt};
use duc_oracle::OracleError;
use duc_sim::{SimDuration, SimTime};
use duc_tee::EnforcementAction;

use crate::process::ProcessError;
use crate::world::{EnforcementMode, World};

use super::flow::{FlowPoll, TxFlow};
use super::{receipt_ok, Machine, Outcome, Step};

/// Internal machine executing one (device, resource) obligation wakeup.
pub(crate) struct ObligationRun<L> {
    device: String,
    resource: String,
    phase: ObligationPhase<L>,
}

enum ObligationPhase<L> {
    Start,
    /// Awaiting inclusion of the `unregister_copy` evidence.
    Confirm(TxFlow<L>),
}

impl<L: Ledger> ObligationRun<L> {
    pub(crate) fn new(device: String, resource: String) -> Self {
        ObligationRun {
            device,
            resource,
            phase: ObligationPhase::Start,
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let ObligationRun {
            device,
            resource,
            phase,
        } = self;
        let now = world.clock.now();
        match phase {
            ObligationPhase::Start => {
                // Rogue hosts suppress their enclave timers: the wakeup
                // fires into the void (monitoring will surface the
                // violation instead). Under the periodic baseline the
                // next grid sweep must still probe — a host healed later
                // is then enforced; under Deadline mode the advance()
                // deadline fallback self-heals.
                if world.is_rogue_host(&device) {
                    if matches!(world.config.enforcement, EnforcementMode::Periodic(_)) {
                        world.schedule_obligation_after(&device, &resource, now);
                    }
                    return Step::Done(Ok(Outcome::ObligationsEnforced {
                        device,
                        resource,
                        deleted: false,
                    }));
                }
                let Some(dev) = world.devices.get_mut(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let due = dev.tee.next_deadline_for(&resource);
                match due {
                    // The copy is gone or unconstrained: nothing to do.
                    None => Step::Done(Ok(Outcome::ObligationsEnforced {
                        device,
                        resource,
                        deleted: false,
                    })),
                    // A stale wakeup (the policy was relaxed since it was
                    // registered): re-arm at the fresh deadline.
                    Some(due) if due > now => {
                        world.schedule_obligation(&device, &resource);
                        Step::Done(Ok(Outcome::ObligationsEnforced {
                            device,
                            resource,
                            deleted: false,
                        }))
                    }
                    Some(due) => {
                        let key = dev.key;
                        let endpoint = dev.endpoint;
                        let actions = match dev.tee.enforce_due(&resource, now) {
                            Ok(actions) => actions,
                            Err(e) => return Step::Done(Err(ProcessError::Tee(e))),
                        };
                        let lag = now - due;
                        world.metrics.record("enforcement.lag", lag);
                        let mut deleted = false;
                        for action in &actions {
                            match action {
                                EnforcementAction::Deleted { reason, .. } => {
                                    deleted = true;
                                    world.metrics.incr("enforcement.deletions");
                                    world.trace.record(
                                        now,
                                        format!("tee:{device}"),
                                        "obligation.deleted",
                                        format!("{resource}: {reason}"),
                                    );
                                }
                                EnforcementAction::NotifyOwner { by, .. } => {
                                    world.metrics.incr("enforcement.notifications");
                                    world.trace.record(
                                        now,
                                        format!("tee:{device}"),
                                        "obligation.notify",
                                        format!("{resource} by {by}"),
                                    );
                                }
                            }
                        }
                        if !deleted {
                            return Step::Done(Ok(Outcome::ObligationsEnforced {
                                device,
                                resource,
                                deleted,
                            }));
                        }
                        // Anchor the enforcement on-chain: the copy
                        // registry drops the entry and the `CopyRemoved`
                        // event is the duty's evidence trail.
                        let build = {
                            let resource = resource.clone();
                            let device = device.clone();
                            // `now` is the deletion instant: the contract
                            // keeps any registration made at/after it, so
                            // a re-access racing this flow is never
                            // clobbered.
                            move |w: &World<L>| {
                                w.dex
                                    .unregister_copy_tx(&w.chain, &key, &resource, &device, now)
                            }
                        };
                        let (flow, poll) = TxFlow::start(world, endpoint, build);
                        match poll {
                            FlowPoll::Sleep(at) => Step::Sleep(
                                Machine::Obligation(Box::new(ObligationRun {
                                    device,
                                    resource,
                                    phase: ObligationPhase::Confirm(flow),
                                })),
                                at,
                            ),
                            FlowPoll::Done(res) => Self::finish(world, device, resource, res),
                        }
                    }
                }
            }
            ObligationPhase::Confirm(mut flow) => match flow.step(world) {
                FlowPoll::Sleep(at) => Step::Sleep(
                    Machine::Obligation(Box::new(ObligationRun {
                        device,
                        resource,
                        phase: ObligationPhase::Confirm(flow),
                    })),
                    at,
                ),
                FlowPoll::Done(res) => Self::finish(world, device, resource, res),
            },
        }
    }

    fn finish(
        world: &mut World<L>,
        device: String,
        resource: String,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => {
                // The contract's freshness guard returns `(false,)` when a
                // racing re-access re-registered the copy: the local
                // deletion of the *old* copy stands, but no registry
                // change was anchored.
                let removed = duc_codec::decode_from_slice::<(bool,)>(&receipt.return_data)
                    .map(|(r,)| r)
                    .unwrap_or(false);
                if removed {
                    world.metrics.incr("enforcement.evidence_anchored");
                } else {
                    world.metrics.incr("enforcement.anchor_superseded");
                }
                Step::Done(Ok(Outcome::ObligationsEnforced {
                    device,
                    resource,
                    deleted: removed,
                }))
            }
            Err(e) => {
                // The local deletion stands (fail-safe); only the on-chain
                // anchor is missing. Monitoring surfaces the stale
                // registry entry, exactly as for a crashed device.
                world.metrics.incr("enforcement.anchor_failed");
                Step::Done(Err(e))
            }
        }
    }
}

impl<L: Ledger> World<L> {
    /// Registers (or refreshes) the obligation wakeup for one governed
    /// copy: the next retention/expiry deadline of `resource` on `device`,
    /// mapped through the world's [`EnforcementMode`]. A no-op when the
    /// copy has no deadline; an existing wakeup at a different instant is
    /// cancelled first.
    pub fn schedule_obligation(&mut self, device: &str, resource: &str) {
        let Some(dev) = self.devices.get(device) else {
            return;
        };
        let Some(due) = dev.tee.next_deadline_for(resource) else {
            return;
        };
        let at = match self.config.enforcement {
            EnforcementMode::Deadline => due,
            EnforcementMode::Periodic(period) => grid_instant(due, period),
        };
        self.arm_obligation(device, resource, at);
    }

    /// Like [`World::schedule_obligation`], but never earlier than the
    /// first instant strictly after `floor` — used to re-arm an
    /// already-overdue wakeup (e.g. a rogue host under the periodic
    /// baseline) without refiring at the same instant.
    pub(crate) fn schedule_obligation_after(
        &mut self,
        device: &str,
        resource: &str,
        floor: SimTime,
    ) {
        let Some(dev) = self.devices.get(device) else {
            return;
        };
        let Some(due) = dev.tee.next_deadline_for(resource) else {
            return;
        };
        let next = SimTime::from_nanos(floor.as_nanos().saturating_add(1));
        let at = match self.config.enforcement {
            EnforcementMode::Deadline => due.max(next),
            EnforcementMode::Periodic(period) => grid_instant(due.max(next), period),
        };
        self.arm_obligation(device, resource, at);
    }

    fn arm_obligation(&mut self, device: &str, resource: &str, at: SimTime) {
        // Interned key: re-arming on every policy change costs two u32
        // hashes, not two String allocations.
        let key = (self.ids.intern(device), self.ids.intern(resource));
        if let Some((scheduled_at, id)) = self.driver.scheduled_obligations.get(&key) {
            if *scheduled_at == at {
                return;
            }
            self.sched.cancel(*id);
        }
        let queue = self.driver.obligation_woken.clone();
        let id = self
            .sched
            .schedule_at(at, move |_| queue.borrow_mut().push_back(key));
        self.driver.scheduled_obligations.insert(key, (at, id));
    }
}

/// The first instant on the `period` grid at or after `due` (the
/// round-based baseline: a duty waits for the next periodic sweep).
fn grid_instant(due: SimTime, period: SimDuration) -> SimTime {
    let p = period.as_nanos().max(1);
    let due_n = due.as_nanos();
    let rem = due_n % p;
    if rem == 0 {
        due
    } else {
        SimTime::from_nanos(due_n.saturating_add(p - rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rounds_up_to_the_period() {
        let p = SimDuration::from_secs(10);
        assert_eq!(
            grid_instant(SimTime::from_secs(25), p),
            SimTime::from_secs(30)
        );
        assert_eq!(
            grid_instant(SimTime::from_secs(30), p),
            SimTime::from_secs(30)
        );
        assert_eq!(grid_instant(SimTime::ZERO, p), SimTime::ZERO);
    }
}
