//! Process 2 — resource initiation.

use duc_blockchain::{Ledger, Receipt};
use duc_oracle::OracleError;
use duc_policy::{AclMode, AgentSpec, Authorization, UsagePolicy};
use duc_sim::SimTime;
use duc_solid::{Body, SolidRequest};

use crate::process::ProcessError;
use crate::world::World;

use super::flow::{drive_flow, FlowPoll, TxFlow};
use super::{receipt_ok, Machine, Outcome, Step};

/// Process 2 — resource initiation.
pub(crate) struct ResInit<L> {
    webid: String,
    path: String,
    body: Option<Body>,
    policy: Option<UsagePolicy>,
    metadata: Vec<(String, String)>,
    resource_iri: String,
    started: SimTime,
    phase: ResInitPhase<L>,
}

enum ResInitPhase<L> {
    Start,
    Confirm(TxFlow<L>),
}

impl<L: Ledger> ResInit<L> {
    pub(super) fn new(
        webid: String,
        path: String,
        body: Body,
        policy: UsagePolicy,
        metadata: Vec<(String, String)>,
        started: SimTime,
    ) -> Self {
        ResInit {
            webid,
            path,
            body: Some(body),
            policy: Some(policy),
            metadata,
            resource_iri: String::new(),
            started,
            phase: ResInitPhase::Start,
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let ResInit {
            webid,
            path,
            body,
            policy,
            metadata,
            resource_iri,
            started,
            phase,
        } = self;
        match phase {
            ResInitPhase::Start => {
                let Some(owner) = world.owners.get_mut(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                if !owner.pod_registered {
                    return Step::Done(Err(ProcessError::PodNotRegistered(webid)));
                }
                let endpoint = owner.endpoint;
                let owner_key = owner.key;
                let body = body.expect("body present in Start phase");
                let policy = policy.expect("policy present in Start phase");

                // Upload via the Solid protocol (the pod manager checks the
                // ACL).
                let put = SolidRequest::put(webid.clone(), path.clone()).with_body(body);
                let resp = owner.pod_manager.handle(&put);
                if !resp.status.is_success() {
                    return Step::Done(Err(ProcessError::Solid {
                        status: resp.status,
                        detail: resp.detail,
                    }));
                }
                owner.pod_manager.set_policy(&path, policy.clone());
                // Market terms: authenticated subscribers may read this
                // resource (certificate-gated), cf. §II "only subscribed
                // users have access".
                let resource_iri = owner.pod_manager.pod().iri_of(&path);
                let mut acl = owner.pod_manager.acl().clone();
                acl.push(Authorization::for_resource(
                    format!("market-readers-{path}"),
                    resource_iri.clone(),
                    vec![AgentSpec::AuthenticatedAgent],
                    vec![AclMode::Read],
                ));
                owner.pod_manager.set_acl(acl);
                owner.pod_manager.set_require_certificate(true);

                // Push-in oracle: index the resource + publish the policy.
                let envelope = world.envelope(&policy);
                let build = {
                    let iri = resource_iri.clone();
                    let webid = webid.clone();
                    move |w: &World<L>| {
                        w.dex.register_resource_tx(
                            &w.chain,
                            &owner_key,
                            &iri,
                            &iri,
                            &webid,
                            metadata.clone(),
                            envelope.clone(),
                        )
                    }
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                let next = ResInit {
                    webid,
                    path,
                    body: None,
                    policy: None,
                    metadata: Vec::new(),
                    resource_iri,
                    started,
                    phase: ResInitPhase::Confirm(flow),
                };
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(Machine::ResInit(Box::new(next)), at),
                    FlowPoll::Done(res) => {
                        Self::finish(world, next.webid, next.resource_iri, started, res)
                    }
                }
            }
            ResInitPhase::Confirm(flow) => drive_flow!(
                world,
                flow,
                |flow| Machine::ResInit(Box::new(ResInit {
                    webid: webid.clone(),
                    path: path.clone(),
                    body: None,
                    policy: None,
                    metadata: Vec::new(),
                    resource_iri: resource_iri.clone(),
                    started,
                    phase: ResInitPhase::Confirm(flow),
                })),
                |world: &mut World<L>, res| Self::finish(
                    world,
                    webid.clone(),
                    resource_iri.clone(),
                    started,
                    res
                )
            ),
        }
    }

    fn finish(
        world: &mut World<L>,
        webid: String,
        resource_iri: String,
        started: SimTime,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let now = world.clock.now();
        world
            .metrics
            .record("process.resource_init.e2e", now - started);
        world
            .metrics
            .add("process.resource_init.gas", receipt.gas_used);
        world.trace.record(
            now,
            format!("pm:{webid}"),
            "resource.registered",
            resource_iri.clone(),
        );
        Step::Done(Ok(Outcome::ResourceInitiated {
            resource: resource_iri,
        }))
    }
}
