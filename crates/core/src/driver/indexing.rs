//! Process 3 — resource indexing through the pull-out oracle.

use duc_blockchain::Ledger;
use duc_oracle::{HopKind, OracleError, PullOutOracle};
use duc_sim::{EndpointId, SimTime};

use crate::process::ProcessError;
use crate::world::{IndexEntry, World};

use super::hop::{Hop, HopPoll};
use super::{Machine, Outcome, Step};

/// Process 3 — resource indexing through the pull-out oracle.
pub(crate) struct Indexing {
    device: String,
    resource: String,
    started: SimTime,
    phase: IndexingPhase,
}

enum IndexingPhase {
    Start,
    /// Request hop (device → relay), fault-aware.
    Request {
        hop: Hop,
        args: Vec<u8>,
        dev_endpoint: EndpointId,
    },
    AtRelay {
        args: Vec<u8>,
        dev_endpoint: EndpointId,
    },
    /// Response hop (relay → device), fault-aware.
    Respond {
        hop: Hop,
        out: Vec<u8>,
    },
    Arrived {
        out: Vec<u8>,
    },
}

impl Indexing {
    pub(super) fn new(device: String, resource: String, started: SimTime) -> Self {
        Indexing {
            device,
            resource,
            started,
            phase: IndexingPhase::Start,
        }
    }

    pub(super) fn step<L: Ledger>(self, world: &mut World<L>) -> Step<L> {
        let Indexing {
            device,
            resource,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        let wrap = |phase| {
            Machine::Indexing(Indexing {
                device: device.clone(),
                resource: resource.clone(),
                started,
                phase,
            })
        };
        match phase {
            IndexingPhase::Start => {
                let Some(dev) = world.try_device(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let dev_endpoint = dev.endpoint;
                let args = duc_codec::encode_to_vec(&(resource.clone(),));
                world.pull_out.count_read();
                let hop = Hop::new(
                    world,
                    dev_endpoint,
                    world.pull_out.relay,
                    PullOutOracle::request_size("lookup_resource", &args),
                    HopKind::PullOutRequest,
                );
                Step::Sleep(
                    wrap(IndexingPhase::Request {
                        hop,
                        args,
                        dev_endpoint,
                    }),
                    now,
                )
            }
            IndexingPhase::Request {
                mut hop,
                args,
                dev_endpoint,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => {
                    Step::Sleep(wrap(IndexingPhase::AtRelay { args, dev_endpoint }), arrives)
                }
                HopPoll::Retry { at } => Step::Sleep(
                    wrap(IndexingPhase::Request {
                        hop,
                        args,
                        dev_endpoint,
                    }),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            IndexingPhase::AtRelay { args, dev_endpoint } => {
                let out =
                    match world
                        .chain
                        .call_view(world.dex.contract_id(), "lookup_resource", &args)
                    {
                        Ok(out) => out,
                        Err(e) => {
                            return Step::Done(Err(ProcessError::Oracle(OracleError::View(e))))
                        }
                    };
                let hop = Hop::new(
                    world,
                    world.pull_out.relay,
                    dev_endpoint,
                    PullOutOracle::response_size(out.len()),
                    HopKind::PullOutResponse,
                );
                Step::Sleep(wrap(IndexingPhase::Respond { hop, out }), now)
            }
            IndexingPhase::Respond { mut hop, out } => match hop.step(world) {
                HopPoll::Sent { arrives } => {
                    Step::Sleep(wrap(IndexingPhase::Arrived { out }), arrives)
                }
                HopPoll::Retry { at } => Step::Sleep(wrap(IndexingPhase::Respond { hop, out }), at),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            IndexingPhase::Arrived { out } => {
                let record: Option<duc_contracts::ResourceRecord> =
                    match duc_codec::decode_from_slice(&out) {
                        Ok(record) => record,
                        Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                    };
                let Some(record) = record else {
                    return Step::Done(Err(ProcessError::UnknownResource(resource)));
                };
                let policy = match world.open_envelope(&record.policy) {
                    Ok(policy) => policy,
                    Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                };
                let entry = IndexEntry {
                    location: record.location.clone(),
                    owner_webid: record.owner_webid.clone(),
                    policy,
                };
                let dev = world.devices.get_mut(&device).expect("validated at submit");
                dev.indexed.insert(&resource, entry.clone());

                world.metrics.record("process.indexing.e2e", now - started);
                world
                    .trace
                    .record(now, format!("tee:{device}"), "resource.indexed", resource);
                Step::Done(Ok(Outcome::Indexed { entry }))
            }
        }
    }
}
