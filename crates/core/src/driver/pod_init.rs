//! Process 1 — pod initiation.

use duc_blockchain::{Ledger, Receipt};
use duc_contracts::topics;
use duc_oracle::OracleError;
use duc_policy::UsagePolicy;
use duc_sim::SimTime;

use crate::process::ProcessError;
use crate::world::World;

use super::flow::{drive_flow, FlowPoll, TxFlow};
use super::{receipt_ok, Machine, Outcome, Step};

/// Process 1 — pod initiation.
pub(crate) struct PodInit<L> {
    webid: String,
    started: SimTime,
    phase: PodInitPhase<L>,
}

enum PodInitPhase<L> {
    Start,
    Confirm(TxFlow<L>),
}

impl<L: Ledger> PodInit<L> {
    pub(super) fn new(webid: String, started: SimTime) -> Self {
        PodInit {
            webid,
            started,
            phase: PodInitPhase::Start,
        }
    }

    pub(super) fn step(self, world: &mut World<L>) -> Step<L> {
        let PodInit {
            webid,
            started,
            phase,
        } = self;
        match phase {
            PodInitPhase::Start => {
                let Some(owner) = world.owners.get_mut(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                let root = owner.pod_manager.pod().root().to_string();
                let endpoint = owner.endpoint;
                let owner_key = owner.key;

                // Local setup: default policy attached at the pod root.
                let default_policy = UsagePolicy::default_for(root.clone(), &webid);
                owner.pod_manager.set_policy("", default_policy.clone());
                let now = world.clock.now();
                world
                    .trace
                    .record(now, format!("pm:{webid}"), "pod.create", root.clone());

                // Push-in oracle: register the pod on-chain.
                let envelope = world.envelope(&default_policy);
                let build = {
                    let webid = webid.clone();
                    let root = root.clone();
                    move |w: &World<L>| {
                        w.dex
                            .register_pod_tx(&w.chain, &owner_key, &webid, &root, envelope.clone())
                    }
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        Machine::PodInit(PodInit {
                            webid,
                            started,
                            phase: PodInitPhase::Confirm(flow),
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Self::finish(world, webid, started, res),
                }
            }
            PodInitPhase::Confirm(flow) => drive_flow!(
                world,
                flow,
                |flow| Machine::PodInit(PodInit {
                    webid: webid.clone(),
                    started,
                    phase: PodInitPhase::Confirm(flow),
                }),
                |world: &mut World<L>, res| Self::finish(world, webid.clone(), started, res)
            ),
        }
    }

    fn finish(
        world: &mut World<L>,
        webid: String,
        started: SimTime,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let owner = world.owners.get_mut(&webid).expect("validated at submit");
        owner.pod_registered = true;
        let endpoint = owner.endpoint;
        let root = owner.pod_manager.pod().root().to_string();

        // The pod manager listens for monitoring verdicts from now on.
        world.push_out.subscribe(topics::ROUND_CLOSED, endpoint);

        let now = world.clock.now();
        world.metrics.record("process.pod_init.e2e", now - started);
        world.metrics.add("process.pod_init.gas", receipt.gas_used);
        world
            .trace
            .record(now, format!("pm:{webid}"), "pod.registered", root);
        Step::Done(Ok(Outcome::PodInitiated { webid }))
    }
}
