//! The shared transaction sub-machine: push-in submission with bounded
//! retries followed by a non-blocking inclusion wait.

use duc_blockchain::{Ledger, Receipt, SignedTransaction, TxId};
use duc_oracle::{HopKind, InclusionStatus, OracleError, PushInOracle};
use duc_sim::{EndpointId, SimTime};

use crate::world::World;

use super::{CONFIRM_TIMEOUT, HOP_TIMEOUT};

/// Builds a signed transaction against the chain's *current* state. The
/// flow signs at delivery time, so the nonce reflects every transaction
/// that entered the mempool while this one was on the wire — concurrent
/// flows from one sender serialize cleanly instead of colliding.
pub(crate) type TxBuild<L> = Box<dyn Fn(&World<L>) -> SignedTransaction>;

/// Sub-machine: push-in submission (with retries) followed by a
/// non-blocking inclusion wait. Reused by every process that sends a
/// transaction.
pub(crate) enum TxFlow<L> {
    /// Attempting the uplink hop to the relay.
    Send {
        build: TxBuild<L>,
        size: u64,
        from: EndpointId,
        attempt: u32,
        deadline: SimTime,
    },
    /// The transaction is on the wire; it reaches the chain at the wake.
    Deliver { build: TxBuild<L> },
    /// In the mempool; polling for inclusion at slot boundaries.
    Await { id: TxId, deadline: SimTime },
    /// Transient placeholder while stepping.
    Spent,
}

/// One advance of a [`TxFlow`].
pub(crate) enum FlowPoll {
    /// Re-step the flow at the given instant.
    Sleep(SimTime),
    /// The flow finished.
    Done(Result<Receipt, OracleError>),
}

impl<L: Ledger> TxFlow<L> {
    /// Starts a flow: performs the first uplink attempt at the current
    /// instant. The builder runs once now (to price the wire size) and once
    /// more at delivery (to sign with a fresh nonce).
    pub(crate) fn start(
        world: &mut World<L>,
        from: EndpointId,
        build: impl Fn(&World<L>) -> SignedTransaction + 'static,
    ) -> (TxFlow<L>, FlowPoll) {
        let size = build(world).encoded_size() as u64;
        let mut flow = TxFlow::Send {
            build: Box::new(build),
            size,
            from,
            attempt: 0,
            deadline: world.clock.now() + HOP_TIMEOUT,
        };
        let poll = flow.step(world);
        (flow, poll)
    }

    /// Advances the flow at the current clock instant.
    pub(crate) fn step(&mut self, world: &mut World<L>) -> FlowPoll {
        let now = world.clock.now();
        match std::mem::replace(self, TxFlow::Spent) {
            TxFlow::Send {
                build,
                size,
                from,
                attempt,
                deadline,
            } => {
                // Unlike raw [`Hop`]s, the uplink keeps the push-in
                // oracle's own retry contract — its attempt counters, its
                // linear backoff, its `max_attempts`, and the legacy
                // `NetworkDropped` error on exhaustion. Only the
                // fault-window handling (suspension below, deadline
                // give-up) is the driver's.
                //
                // A declared crash/partition window on the uplink suspends
                // the submission (the component is down or cut off, not
                // retrying against a dead wire) and resumes at recovery.
                let relay = world.push_in.relay;
                if !world.fault_plan().allows(from, relay, now) {
                    world.metrics.incr("driver.hop.suspended");
                    return match world.fault_plan().next_clear(from, relay, now) {
                        Some(at) if at <= deadline => {
                            *self = TxFlow::Send {
                                build,
                                size,
                                from,
                                attempt,
                                deadline,
                            };
                            FlowPoll::Sleep(at)
                        }
                        _ => {
                            world.metrics.incr("driver.hop.gave_up");
                            FlowPoll::Done(Err(OracleError::GaveUp {
                                hop: HopKind::PushInUplink,
                                attempts: attempt,
                                deadline,
                            }))
                        }
                    };
                }
                match world
                    .push_in
                    .attempt(&mut world.net, &mut world.rng, from, size, attempt)
                {
                    Some(hop) => {
                        *self = TxFlow::Deliver { build };
                        FlowPoll::Sleep(now + hop)
                    }
                    None => {
                        world.metrics.incr("driver.hop.drops");
                        let next = attempt + 1;
                        if next >= world.push_in.max_attempts {
                            FlowPoll::Done(Err(OracleError::NetworkDropped))
                        } else {
                            let at = now + PushInOracle::backoff(next);
                            if at > deadline {
                                world.metrics.incr("driver.hop.gave_up");
                                FlowPoll::Done(Err(OracleError::GaveUp {
                                    hop: HopKind::PushInUplink,
                                    attempts: next,
                                    deadline,
                                }))
                            } else {
                                *self = TxFlow::Send {
                                    build,
                                    size,
                                    from,
                                    attempt: next,
                                    deadline,
                                };
                                FlowPoll::Sleep(at)
                            }
                        }
                    }
                }
            }
            TxFlow::Deliver { build } => {
                let tx = build(world);
                match world.chain.submit(tx) {
                    Err(e) => FlowPoll::Done(Err(OracleError::Rejected(e))),
                    Ok(id) => {
                        *self = TxFlow::Await {
                            id,
                            deadline: now + CONFIRM_TIMEOUT,
                        };
                        self.step(world)
                    }
                }
            }
            TxFlow::Await { id, deadline } => {
                match duc_oracle::poll_inclusion(&mut world.chain, now, &id, deadline) {
                    InclusionStatus::Included(receipt) => FlowPoll::Done(Ok(receipt)),
                    InclusionStatus::TimedOut { deadline } => {
                        FlowPoll::Done(Err(OracleError::InclusionTimeout { deadline }))
                    }
                    InclusionStatus::Pending { retry_at } => {
                        *self = TxFlow::Await { id, deadline };
                        FlowPoll::Sleep(retry_at)
                    }
                }
            }
            TxFlow::Spent => unreachable!("TxFlow stepped while spent"),
        }
    }
}

/// Shorthand: advance an embedded [`TxFlow`] and either sleep (wrapping the
/// machine back up) or hand the receipt result to `finish`.
macro_rules! drive_flow {
    ($world:expr, $flow:expr, $wrap:expr, $finish:expr) => {{
        let mut flow = $flow;
        match flow.step($world) {
            $crate::driver::flow::FlowPoll::Sleep(at) => {
                $crate::driver::Step::Sleep($wrap(flow), at)
            }
            $crate::driver::flow::FlowPoll::Done(res) => $finish($world, res),
        }
    }};
}
pub(crate) use drive_flow;
