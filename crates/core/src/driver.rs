//! The non-blocking request driver.
//!
//! The six paper processes (plus the market-subscription prerequisite) are
//! expressed as per-process state machines that advance hop-by-hop on the
//! [`duc_sim::Scheduler`]: every network hop and every block-inclusion wait
//! is a scheduled continuation instead of an inline loop, so hundreds of
//! requests from many owners and devices interleave deterministically
//! across block boundaries.
//!
//! - [`World::submit`] enqueues a [`Request`] and returns a [`Ticket`]
//!   immediately (unknown participants fail fast with a typed
//!   [`ProcessError`] instead of panicking).
//! - [`World::run_until_idle`] drives the event loop until no request is
//!   in flight.
//! - Completed work surfaces as [`Outcome`] events via [`Ticket::poll`] /
//!   [`World::drain_events`].
//!
//! The legacy one-shot methods on [`World`] (see [`crate::process`]) are
//! thin wrappers: submit, run to idle, unwrap the single outcome.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use duc_blockchain::{Event, Ledger, Receipt, SignedTransaction, TxId};
use duc_contracts::{topics, DistExchangeClient, EvidenceSubmission};
use duc_crypto::{Digest, PublicKey};
use duc_oracle::{
    HopKind, InclusionStatus, OracleError, OutboundDelivery, PullOutOracle, PushInOracle,
};
use duc_policy::{AclMode, AgentSpec, Authorization, Duty, Rule, UsagePolicy};
use duc_sim::{EndpointId, SimDuration, SimTime};
use duc_solid::{Body, SolidRequest, Status};
use duc_tee::EnforcementAction;

use crate::process::{AccessOutcome, MonitoringOutcome, ProcessError, PropagationOutcome};
use crate::world::{IndexEntry, World};

/// Confirmation timeout for on-chain operations.
pub const CONFIRM_TIMEOUT: SimDuration = SimDuration::from_secs(120);

/// Retry budget window for a single network hop: a hop that cannot be
/// delivered by then resolves with a typed [`OracleError::GaveUp`] instead
/// of waiting longer.
pub const HOP_TIMEOUT: SimDuration = SimDuration::from_secs(60);

/// Maximum delivery attempts per hop against transient loss.
pub const MAX_HOP_ATTEMPTS: u32 = 8;

/// Deterministic exponential backoff before retry number `attempt`
/// (1-based): 50 ms, 100 ms, 200 ms, … capped at 12.8 s.
pub fn hop_backoff(attempt: u32) -> SimDuration {
    SimDuration::from_millis(50u64 << attempt.saturating_sub(1).min(8))
}

// --------------------------------------------------------------------- Hop

/// A fault-aware network hop: one message that must cross one link, with
/// bounded deterministic retries against transient loss and suspend/resume
/// across declared crash/partition windows.
///
/// Every process machine drives its raw hops (pod fetches, oracle reads,
/// monitoring probes) through this, so a fault hitting an in-flight process
/// either heals within the hop's budget — the process resumes and completes
/// — or surfaces as a typed [`OracleError::GaveUp`]; a ticket can never
/// hang on a dead link.
pub(crate) struct Hop {
    from: EndpointId,
    to: EndpointId,
    size: u64,
    kind: HopKind,
    attempt: u32,
    deadline: SimTime,
}

/// One advance of a [`Hop`].
pub(crate) enum HopPoll {
    /// The message is on the wire; it arrives at the instant.
    Sent {
        /// Arrival instant at the destination.
        arrives: SimTime,
    },
    /// Not sent (loss backoff or fault-window suspension); re-step the hop
    /// at the instant.
    Retry {
        /// When to re-step.
        at: SimTime,
    },
    /// The retry budget is exhausted or a permanent fault blocks the pair.
    Failed(OracleError),
}

impl Hop {
    pub(crate) fn new<L: Ledger>(
        world: &World<L>,
        from: EndpointId,
        to: EndpointId,
        size: u64,
        kind: HopKind,
    ) -> Hop {
        Hop {
            from,
            to,
            size,
            kind,
            attempt: 0,
            deadline: world.clock.now() + HOP_TIMEOUT,
        }
    }

    fn gave_up<L: Ledger>(&self, world: &mut World<L>) -> HopPoll {
        world.metrics.incr("driver.hop.gave_up");
        HopPoll::Failed(OracleError::GaveUp {
            hop: self.kind,
            attempts: self.attempt,
            deadline: self.deadline,
        })
    }

    pub(crate) fn step<L: Ledger>(&mut self, world: &mut World<L>) -> HopPoll {
        let now = world.clock.now();
        // A declared crash/partition window blocks the pair outright:
        // suspend without burning wire attempts and resume exactly at
        // recovery (or give up when recovery lies past the budget).
        if !world.fault_plan().allows(self.from, self.to, now) {
            world.metrics.incr("driver.hop.suspended");
            return match world.fault_plan().next_clear(self.from, self.to, now) {
                Some(at) if at <= self.deadline => HopPoll::Retry { at },
                _ => self.gave_up(world),
            };
        }
        self.attempt += 1;
        match world
            .net
            .transmit(self.from, self.to, self.size, &mut world.rng)
            .delay()
        {
            Some(d) => HopPoll::Sent { arrives: now + d },
            None => {
                world.metrics.incr("driver.hop.drops");
                if self.attempt >= MAX_HOP_ATTEMPTS {
                    return self.gave_up(world);
                }
                let at = now + hop_backoff(self.attempt);
                if at > self.deadline {
                    self.gave_up(world)
                } else {
                    HopPoll::Retry { at }
                }
            }
        }
    }
}

/// A typed request against the architecture: one variant per paper process
/// (Fig. 2), plus the market-subscription prerequisite of process 4.
#[derive(Debug, Clone)]
pub enum Request {
    /// Process 1 — register `webid`'s pod on-chain.
    PodInitiation {
        /// Owner WebID.
        webid: String,
    },
    /// Process 2 — upload a resource, attach a policy, index it on-chain.
    ResourceInitiation {
        /// Owner WebID.
        webid: String,
        /// Pod-relative path.
        path: String,
        /// Resource content.
        body: Body,
        /// Usage policy to attach.
        policy: UsagePolicy,
        /// DE App metadata key/value pairs.
        metadata: Vec<(String, String)>,
    },
    /// Process 3 — a device reads a resource's location + policy from the
    /// DE App.
    ResourceIndexing {
        /// Device name.
        device: String,
        /// Resource IRI.
        resource: String,
    },
    /// Market subscription — buy the certificate required by process 4.
    MarketSubscribe {
        /// Device name.
        device: String,
    },
    /// Process 4 — fetch a governed copy into the device's TEE.
    ResourceAccess {
        /// Device name.
        device: String,
        /// Resource IRI.
        resource: String,
    },
    /// Process 5 — amend a policy and fan the update out to copy holders.
    PolicyModification {
        /// Owner WebID.
        webid: String,
        /// Pod-relative path.
        path: String,
        /// Replacement rules.
        rules: Vec<Rule>,
        /// Replacement duties.
        duties: Vec<Duty>,
    },
    /// Process 6 — run a monitoring round over every copy holder.
    PolicyMonitoring {
        /// Owner WebID.
        webid: String,
        /// Pod-relative path.
        path: String,
    },
}

/// What a completed [`Request`] produced.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Process 1 finished; the pod is registered.
    PodInitiated {
        /// Owner WebID.
        webid: String,
    },
    /// Process 2 finished; the resource is indexed on-chain.
    ResourceInitiated {
        /// The resource IRI.
        resource: String,
    },
    /// Process 3 finished; the device stored the index entry.
    Indexed {
        /// What the device learned.
        entry: IndexEntry,
    },
    /// The market subscription was bought.
    Subscribed {
        /// The payment certificate.
        certificate: Digest,
    },
    /// Process 4 finished.
    Accessed(AccessOutcome),
    /// Process 5 finished.
    PolicyPropagated(PropagationOutcome),
    /// Process 6 finished.
    Monitored(MonitoringOutcome),
}

/// Handle on an in-flight (or completed) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub(crate) u64);

impl Ticket {
    /// The raw request id (submission order).
    pub fn id(self) -> u64 {
        self.0
    }

    /// Takes the completed outcome for this ticket, if the request has
    /// finished. Equivalent to [`World::poll_ticket`].
    pub fn poll<L: Ledger>(self, world: &mut World<L>) -> Option<Result<Outcome, ProcessError>> {
        world.poll_ticket(self)
    }
}

/// Checks a receipt for contract-level success.
pub(crate) fn receipt_ok(receipt: Receipt) -> Result<Receipt, ProcessError> {
    match &receipt.status {
        duc_blockchain::TxStatus::Ok => Ok(receipt),
        duc_blockchain::TxStatus::Reverted(msg) => Err(ProcessError::Reverted(msg.clone())),
        duc_blockchain::TxStatus::OutOfGas => Err(ProcessError::Reverted("out of gas".into())),
    }
}

// ------------------------------------------------------------------ TxFlow

/// Builds a signed transaction against the chain's *current* state. The
/// flow signs at delivery time, so the nonce reflects every transaction
/// that entered the mempool while this one was on the wire — concurrent
/// flows from one sender serialize cleanly instead of colliding.
pub(crate) type TxBuild<L> = Box<dyn Fn(&World<L>) -> SignedTransaction>;

/// Sub-machine: push-in submission (with retries) followed by a
/// non-blocking inclusion wait. Reused by every process that sends a
/// transaction.
pub(crate) enum TxFlow<L> {
    /// Attempting the uplink hop to the relay.
    Send {
        build: TxBuild<L>,
        size: u64,
        from: EndpointId,
        attempt: u32,
        deadline: SimTime,
    },
    /// The transaction is on the wire; it reaches the chain at the wake.
    Deliver { build: TxBuild<L> },
    /// In the mempool; polling for inclusion at slot boundaries.
    Await { id: TxId, deadline: SimTime },
    /// Transient placeholder while stepping.
    Spent,
}

/// One advance of a [`TxFlow`].
pub(crate) enum FlowPoll {
    /// Re-step the flow at the given instant.
    Sleep(SimTime),
    /// The flow finished.
    Done(Result<Receipt, OracleError>),
}

impl<L: Ledger> TxFlow<L> {
    /// Starts a flow: performs the first uplink attempt at the current
    /// instant. The builder runs once now (to price the wire size) and once
    /// more at delivery (to sign with a fresh nonce).
    pub(crate) fn start(
        world: &mut World<L>,
        from: EndpointId,
        build: impl Fn(&World<L>) -> SignedTransaction + 'static,
    ) -> (TxFlow<L>, FlowPoll) {
        let size = build(world).encoded_size() as u64;
        let mut flow = TxFlow::Send {
            build: Box::new(build),
            size,
            from,
            attempt: 0,
            deadline: world.clock.now() + HOP_TIMEOUT,
        };
        let poll = flow.step(world);
        (flow, poll)
    }

    /// Advances the flow at the current clock instant.
    pub(crate) fn step(&mut self, world: &mut World<L>) -> FlowPoll {
        let now = world.clock.now();
        match std::mem::replace(self, TxFlow::Spent) {
            TxFlow::Send {
                build,
                size,
                from,
                attempt,
                deadline,
            } => {
                // Unlike raw [`Hop`]s, the uplink keeps the push-in
                // oracle's own retry contract — its attempt counters, its
                // linear backoff, its `max_attempts`, and the legacy
                // `NetworkDropped` error on exhaustion. Only the
                // fault-window handling (suspension below, deadline
                // give-up) is the driver's.
                //
                // A declared crash/partition window on the uplink suspends
                // the submission (the component is down or cut off, not
                // retrying against a dead wire) and resumes at recovery.
                let relay = world.push_in.relay;
                if !world.fault_plan().allows(from, relay, now) {
                    world.metrics.incr("driver.hop.suspended");
                    return match world.fault_plan().next_clear(from, relay, now) {
                        Some(at) if at <= deadline => {
                            *self = TxFlow::Send {
                                build,
                                size,
                                from,
                                attempt,
                                deadline,
                            };
                            FlowPoll::Sleep(at)
                        }
                        _ => {
                            world.metrics.incr("driver.hop.gave_up");
                            FlowPoll::Done(Err(OracleError::GaveUp {
                                hop: HopKind::PushInUplink,
                                attempts: attempt,
                                deadline,
                            }))
                        }
                    };
                }
                match world
                    .push_in
                    .attempt(&mut world.net, &mut world.rng, from, size, attempt)
                {
                    Some(hop) => {
                        *self = TxFlow::Deliver { build };
                        FlowPoll::Sleep(now + hop)
                    }
                    None => {
                        world.metrics.incr("driver.hop.drops");
                        let next = attempt + 1;
                        if next >= world.push_in.max_attempts {
                            FlowPoll::Done(Err(OracleError::NetworkDropped))
                        } else {
                            let at = now + PushInOracle::backoff(next);
                            if at > deadline {
                                world.metrics.incr("driver.hop.gave_up");
                                FlowPoll::Done(Err(OracleError::GaveUp {
                                    hop: HopKind::PushInUplink,
                                    attempts: next,
                                    deadline,
                                }))
                            } else {
                                *self = TxFlow::Send {
                                    build,
                                    size,
                                    from,
                                    attempt: next,
                                    deadline,
                                };
                                FlowPoll::Sleep(at)
                            }
                        }
                    }
                }
            }
            TxFlow::Deliver { build } => {
                let tx = build(world);
                match world.chain.submit(tx) {
                    Err(e) => FlowPoll::Done(Err(OracleError::Rejected(e))),
                    Ok(id) => {
                        *self = TxFlow::Await {
                            id,
                            deadline: now + CONFIRM_TIMEOUT,
                        };
                        self.step(world)
                    }
                }
            }
            TxFlow::Await { id, deadline } => {
                match duc_oracle::poll_inclusion(&mut world.chain, now, &id, deadline) {
                    InclusionStatus::Included(receipt) => FlowPoll::Done(Ok(receipt)),
                    InclusionStatus::TimedOut { deadline } => {
                        FlowPoll::Done(Err(OracleError::InclusionTimeout { deadline }))
                    }
                    InclusionStatus::Pending { retry_at } => {
                        *self = TxFlow::Await { id, deadline };
                        FlowPoll::Sleep(retry_at)
                    }
                }
            }
            TxFlow::Spent => unreachable!("TxFlow stepped while spent"),
        }
    }
}

// ---------------------------------------------------------------- machines

/// One advance of a process machine.
pub(crate) enum Step<L> {
    /// Store the machine back and wake it at the given instant (an instant
    /// not in the future means "re-step in this scheduling round").
    Sleep(Machine<L>, SimTime),
    /// The request completed.
    Done(Result<Outcome, ProcessError>),
}

/// The per-process state machines.
pub(crate) enum Machine<L> {
    PodInit(PodInit<L>),
    ResInit(Box<ResInit<L>>),
    Indexing(Indexing),
    Subscribe(Subscribe<L>),
    Access(Box<Access<L>>),
    PolicyMod(Box<PolicyMod<L>>),
    Monitoring(Box<Monitoring<L>>),
}

impl<L: Ledger> Machine<L> {
    pub(crate) fn step(self, world: &mut World<L>) -> Step<L> {
        match self {
            Machine::PodInit(m) => m.step(world),
            Machine::ResInit(m) => m.step(world),
            Machine::Indexing(m) => m.step(world),
            Machine::Subscribe(m) => m.step(world),
            Machine::Access(m) => m.step(world),
            Machine::PolicyMod(m) => m.step(world),
            Machine::Monitoring(m) => m.step(world),
        }
    }
}

/// Shorthand: advance an embedded [`TxFlow`] and either sleep (wrapping the
/// machine back up) or hand the receipt result to `finish`.
macro_rules! drive_flow {
    ($world:expr, $flow:expr, $wrap:expr, $finish:expr) => {{
        let mut flow = $flow;
        match flow.step($world) {
            FlowPoll::Sleep(at) => Step::Sleep($wrap(flow), at),
            FlowPoll::Done(res) => $finish($world, res),
        }
    }};
}

// -------------------------------------------------------------- process 1

/// Process 1 — pod initiation.
pub(crate) struct PodInit<L> {
    webid: String,
    started: SimTime,
    phase: PodInitPhase<L>,
}

enum PodInitPhase<L> {
    Start,
    Confirm(TxFlow<L>),
}

impl<L: Ledger> PodInit<L> {
    fn new(webid: String, started: SimTime) -> Self {
        PodInit {
            webid,
            started,
            phase: PodInitPhase::Start,
        }
    }

    fn step(self, world: &mut World<L>) -> Step<L> {
        let PodInit {
            webid,
            started,
            phase,
        } = self;
        match phase {
            PodInitPhase::Start => {
                let Some(owner) = world.owners.get_mut(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                let root = owner.pod_manager.pod().root().to_string();
                let endpoint = owner.endpoint;
                let owner_key = owner.key;

                // Local setup: default policy attached at the pod root.
                let default_policy = UsagePolicy::default_for(root.clone(), &webid);
                owner.pod_manager.set_policy("", default_policy.clone());
                let now = world.clock.now();
                world
                    .trace
                    .record(now, format!("pm:{webid}"), "pod.create", root.clone());

                // Push-in oracle: register the pod on-chain.
                let envelope = world.envelope(&default_policy);
                let build = {
                    let webid = webid.clone();
                    let root = root.clone();
                    move |w: &World<L>| {
                        w.dex
                            .register_pod_tx(&w.chain, &owner_key, &webid, &root, envelope.clone())
                    }
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        Machine::PodInit(PodInit {
                            webid,
                            started,
                            phase: PodInitPhase::Confirm(flow),
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Self::finish(world, webid, started, res),
                }
            }
            PodInitPhase::Confirm(flow) => drive_flow!(
                world,
                flow,
                |flow| Machine::PodInit(PodInit {
                    webid: webid.clone(),
                    started,
                    phase: PodInitPhase::Confirm(flow),
                }),
                |world: &mut World<L>, res| Self::finish(world, webid.clone(), started, res)
            ),
        }
    }

    fn finish(
        world: &mut World<L>,
        webid: String,
        started: SimTime,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let owner = world.owners.get_mut(&webid).expect("validated at submit");
        owner.pod_registered = true;
        let endpoint = owner.endpoint;
        let root = owner.pod_manager.pod().root().to_string();

        // The pod manager listens for monitoring verdicts from now on.
        world.push_out.subscribe(topics::ROUND_CLOSED, endpoint);

        let now = world.clock.now();
        world.metrics.record("process.pod_init.e2e", now - started);
        world.metrics.add("process.pod_init.gas", receipt.gas_used);
        world
            .trace
            .record(now, format!("pm:{webid}"), "pod.registered", root);
        Step::Done(Ok(Outcome::PodInitiated { webid }))
    }
}

// -------------------------------------------------------------- process 2

/// Process 2 — resource initiation.
pub(crate) struct ResInit<L> {
    webid: String,
    path: String,
    body: Option<Body>,
    policy: Option<UsagePolicy>,
    metadata: Vec<(String, String)>,
    resource_iri: String,
    started: SimTime,
    phase: ResInitPhase<L>,
}

enum ResInitPhase<L> {
    Start,
    Confirm(TxFlow<L>),
}

impl<L: Ledger> ResInit<L> {
    fn step(self, world: &mut World<L>) -> Step<L> {
        let ResInit {
            webid,
            path,
            body,
            policy,
            metadata,
            resource_iri,
            started,
            phase,
        } = self;
        match phase {
            ResInitPhase::Start => {
                let Some(owner) = world.owners.get_mut(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                if !owner.pod_registered {
                    return Step::Done(Err(ProcessError::PodNotRegistered(webid)));
                }
                let endpoint = owner.endpoint;
                let owner_key = owner.key;
                let body = body.expect("body present in Start phase");
                let policy = policy.expect("policy present in Start phase");

                // Upload via the Solid protocol (the pod manager checks the
                // ACL).
                let put = SolidRequest::put(webid.clone(), path.clone()).with_body(body);
                let resp = owner.pod_manager.handle(&put);
                if !resp.status.is_success() {
                    return Step::Done(Err(ProcessError::Solid {
                        status: resp.status,
                        detail: resp.detail,
                    }));
                }
                owner.pod_manager.set_policy(&path, policy.clone());
                // Market terms: authenticated subscribers may read this
                // resource (certificate-gated), cf. §II "only subscribed
                // users have access".
                let resource_iri = owner.pod_manager.pod().iri_of(&path);
                let mut acl = owner.pod_manager.acl().clone();
                acl.push(Authorization::for_resource(
                    format!("market-readers-{path}"),
                    resource_iri.clone(),
                    vec![AgentSpec::AuthenticatedAgent],
                    vec![AclMode::Read],
                ));
                owner.pod_manager.set_acl(acl);
                owner.pod_manager.set_require_certificate(true);

                // Push-in oracle: index the resource + publish the policy.
                let envelope = world.envelope(&policy);
                let build = {
                    let iri = resource_iri.clone();
                    let webid = webid.clone();
                    move |w: &World<L>| {
                        w.dex.register_resource_tx(
                            &w.chain,
                            &owner_key,
                            &iri,
                            &iri,
                            &webid,
                            metadata.clone(),
                            envelope.clone(),
                        )
                    }
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                let next = ResInit {
                    webid,
                    path,
                    body: None,
                    policy: None,
                    metadata: Vec::new(),
                    resource_iri,
                    started,
                    phase: ResInitPhase::Confirm(flow),
                };
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(Machine::ResInit(Box::new(next)), at),
                    FlowPoll::Done(res) => {
                        Self::finish(world, next.webid, next.resource_iri, started, res)
                    }
                }
            }
            ResInitPhase::Confirm(flow) => drive_flow!(
                world,
                flow,
                |flow| Machine::ResInit(Box::new(ResInit {
                    webid: webid.clone(),
                    path: path.clone(),
                    body: None,
                    policy: None,
                    metadata: Vec::new(),
                    resource_iri: resource_iri.clone(),
                    started,
                    phase: ResInitPhase::Confirm(flow),
                })),
                |world: &mut World<L>, res| Self::finish(
                    world,
                    webid.clone(),
                    resource_iri.clone(),
                    started,
                    res
                )
            ),
        }
    }

    fn finish(
        world: &mut World<L>,
        webid: String,
        resource_iri: String,
        started: SimTime,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let now = world.clock.now();
        world
            .metrics
            .record("process.resource_init.e2e", now - started);
        world
            .metrics
            .add("process.resource_init.gas", receipt.gas_used);
        world.trace.record(
            now,
            format!("pm:{webid}"),
            "resource.registered",
            resource_iri.clone(),
        );
        Step::Done(Ok(Outcome::ResourceInitiated {
            resource: resource_iri,
        }))
    }
}

// -------------------------------------------------------------- process 3

/// Process 3 — resource indexing through the pull-out oracle.
pub(crate) struct Indexing {
    device: String,
    resource: String,
    started: SimTime,
    phase: IndexingPhase,
}

enum IndexingPhase {
    Start,
    /// Request hop (device → relay), fault-aware.
    Request {
        hop: Hop,
        args: Vec<u8>,
        dev_endpoint: EndpointId,
    },
    AtRelay {
        args: Vec<u8>,
        dev_endpoint: EndpointId,
    },
    /// Response hop (relay → device), fault-aware.
    Respond {
        hop: Hop,
        out: Vec<u8>,
    },
    Arrived {
        out: Vec<u8>,
    },
}

impl Indexing {
    fn step<L: Ledger>(self, world: &mut World<L>) -> Step<L> {
        let Indexing {
            device,
            resource,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        let wrap = |phase| {
            Machine::Indexing(Indexing {
                device: device.clone(),
                resource: resource.clone(),
                started,
                phase,
            })
        };
        match phase {
            IndexingPhase::Start => {
                let Some(dev) = world.try_device(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let dev_endpoint = dev.endpoint;
                let args = duc_codec::encode_to_vec(&(resource.clone(),));
                world.pull_out.count_read();
                let hop = Hop::new(
                    world,
                    dev_endpoint,
                    world.pull_out.relay,
                    PullOutOracle::request_size("lookup_resource", &args),
                    HopKind::PullOutRequest,
                );
                Step::Sleep(
                    wrap(IndexingPhase::Request {
                        hop,
                        args,
                        dev_endpoint,
                    }),
                    now,
                )
            }
            IndexingPhase::Request {
                mut hop,
                args,
                dev_endpoint,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => {
                    Step::Sleep(wrap(IndexingPhase::AtRelay { args, dev_endpoint }), arrives)
                }
                HopPoll::Retry { at } => Step::Sleep(
                    wrap(IndexingPhase::Request {
                        hop,
                        args,
                        dev_endpoint,
                    }),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            IndexingPhase::AtRelay { args, dev_endpoint } => {
                let out =
                    match world
                        .chain
                        .call_view(world.dex.contract_id(), "lookup_resource", &args)
                    {
                        Ok(out) => out,
                        Err(e) => {
                            return Step::Done(Err(ProcessError::Oracle(OracleError::View(e))))
                        }
                    };
                let hop = Hop::new(
                    world,
                    world.pull_out.relay,
                    dev_endpoint,
                    PullOutOracle::response_size(out.len()),
                    HopKind::PullOutResponse,
                );
                Step::Sleep(wrap(IndexingPhase::Respond { hop, out }), now)
            }
            IndexingPhase::Respond { mut hop, out } => match hop.step(world) {
                HopPoll::Sent { arrives } => {
                    Step::Sleep(wrap(IndexingPhase::Arrived { out }), arrives)
                }
                HopPoll::Retry { at } => Step::Sleep(wrap(IndexingPhase::Respond { hop, out }), at),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            IndexingPhase::Arrived { out } => {
                let record: Option<duc_contracts::ResourceRecord> =
                    match duc_codec::decode_from_slice(&out) {
                        Ok(record) => record,
                        Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                    };
                let Some(record) = record else {
                    return Step::Done(Err(ProcessError::UnknownResource(resource)));
                };
                let policy = match world.open_envelope(&record.policy) {
                    Ok(policy) => policy,
                    Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                };
                let entry = IndexEntry {
                    location: record.location.clone(),
                    owner_webid: record.owner_webid.clone(),
                    policy,
                };
                let dev = world.devices.get_mut(&device).expect("validated at submit");
                dev.indexed.insert(resource.clone(), entry.clone());

                world.metrics.record("process.indexing.e2e", now - started);
                world
                    .trace
                    .record(now, format!("tee:{device}"), "resource.indexed", resource);
                Step::Done(Ok(Outcome::Indexed { entry }))
            }
        }
    }
}

// ---------------------------------------------------- market subscription

/// Market subscription (prerequisite of process 4, cf. §II).
pub(crate) struct Subscribe<L> {
    device: String,
    started: SimTime,
    phase: SubscribePhase<L>,
}

enum SubscribePhase<L> {
    Start,
    Confirm(TxFlow<L>),
}

impl<L: Ledger> Subscribe<L> {
    fn step(self, world: &mut World<L>) -> Step<L> {
        let Subscribe {
            device,
            started,
            phase,
        } = self;
        match phase {
            SubscribePhase::Start => {
                let Some(dev) = world.try_device(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let endpoint = dev.endpoint;
                let key = dev.key;
                let webid = dev.webid.clone();
                let build = move |w: &World<L>| w.dex.subscribe_tx(&w.chain, &key, &webid);
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        Machine::Subscribe(Subscribe {
                            device,
                            started,
                            phase: SubscribePhase::Confirm(flow),
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Self::finish(world, device, started, res),
                }
            }
            SubscribePhase::Confirm(flow) => drive_flow!(
                world,
                flow,
                |flow| Machine::Subscribe(Subscribe {
                    device: device.clone(),
                    started,
                    phase: SubscribePhase::Confirm(flow),
                }),
                |world: &mut World<L>, res| Self::finish(world, device.clone(), started, res)
            ),
        }
    }

    fn finish(
        world: &mut World<L>,
        device: String,
        started: SimTime,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let cert = match DistExchangeClient::decode_certificate(&receipt.return_data) {
            Ok(cert) => cert,
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        world
            .devices
            .get_mut(&device)
            .expect("validated at submit")
            .certificate = Some(cert);
        let now = world.clock.now();
        world.metrics.record("process.subscribe.e2e", now - started);
        world.metrics.add("process.subscribe.gas", receipt.gas_used);
        Step::Done(Ok(Outcome::Subscribed { certificate: cert }))
    }
}

// -------------------------------------------------------------- process 4

/// Process 4 — resource access into the TEE.
pub(crate) struct Access<L> {
    device: String,
    resource: String,
    started: SimTime,
    phase: AccessPhase<L>,
}

enum AccessPhase<L> {
    Start,
    /// Request hop (device → pod manager), fault-aware.
    ToPod {
        hop: Hop,
        fetch_start: SimTime,
        request: SolidRequest,
        owner_webid: String,
        owner_endpoint: EndpointId,
        dev_endpoint: EndpointId,
        cert_ok: bool,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    AtPod {
        fetch_start: SimTime,
        request: SolidRequest,
        owner_webid: String,
        owner_endpoint: EndpointId,
        dev_endpoint: EndpointId,
        cert_ok: bool,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    /// Response hop (pod manager → device), fault-aware. The pod manager
    /// served the request exactly once; retries only re-send the bytes.
    FromPod {
        hop: Hop,
        fetch_start: SimTime,
        bytes: Vec<u8>,
        dev_endpoint: EndpointId,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    Arrived {
        fetch_start: SimTime,
        bytes: Vec<u8>,
        dev_endpoint: EndpointId,
        entry: IndexEntry,
        enclave_key: PublicKey,
    },
    Confirm {
        flow: TxFlow<L>,
        fetch: SimDuration,
        bytes_len: usize,
        dev_endpoint: EndpointId,
    },
}

impl<L: Ledger> Access<L> {
    #[allow(clippy::too_many_lines)]
    fn step(self, world: &mut World<L>) -> Step<L> {
        let Access {
            device,
            resource,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        match phase {
            AccessPhase::Start => {
                let Some(dev) = world.try_device(&device) else {
                    return Step::Done(Err(ProcessError::UnknownDevice(device)));
                };
                let Some(entry) = dev.indexed.get(&resource).cloned() else {
                    return Step::Done(Err(ProcessError::NotIndexed { device, resource }));
                };
                let Some(certificate) = dev.certificate else {
                    return Step::Done(Err(ProcessError::NoCertificate(dev.webid.clone())));
                };
                let webid = dev.webid.clone();
                let dev_endpoint = dev.endpoint;

                // Attestation gate: only recognized trusted applications
                // may hold governed copies (the market's terms, §II).
                let Some(quote) = world.attestation.issue_quote(dev.tee.enclave()) else {
                    return Step::Done(Err(ProcessError::Attestation(format!(
                        "measurement not trusted for {device}"
                    ))));
                };

                let Some(owner) = world.try_owner(&entry.owner_webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(entry.owner_webid)));
                };
                let owner_endpoint = owner.endpoint;
                let root = owner.pod_manager.pod().root().to_string();
                let path = entry
                    .location
                    .strip_prefix(&root)
                    .unwrap_or(entry.location.as_str())
                    .to_string();

                // The pod manager verifies the certificate against the DE
                // App (its own blockchain interaction module does a view
                // call).
                let cert_ok = match world
                    .dex
                    .verify_certificate(&world.chain, &certificate, &webid)
                {
                    Ok(ok) => ok,
                    Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                };

                // Request hop: device → pod manager (fault-aware).
                let request = SolidRequest::get(webid, path).with_certificate(certificate);
                let hop = Hop::new(
                    world,
                    dev_endpoint,
                    owner_endpoint,
                    request.size() as u64,
                    HopKind::PodRequest,
                );
                Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::ToPod {
                            hop,
                            fetch_start: now,
                            request,
                            owner_webid: entry.owner_webid.clone(),
                            owner_endpoint,
                            dev_endpoint,
                            cert_ok,
                            entry,
                            enclave_key: quote.enclave_key,
                        },
                    })),
                    now,
                )
            }
            AccessPhase::ToPod {
                mut hop,
                fetch_start,
                request,
                owner_webid,
                owner_endpoint,
                dev_endpoint,
                cert_ok,
                entry,
                enclave_key,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::AtPod {
                            fetch_start,
                            request,
                            owner_webid,
                            owner_endpoint,
                            dev_endpoint,
                            cert_ok,
                            entry,
                            enclave_key,
                        },
                    })),
                    arrives,
                ),
                HopPoll::Retry { at } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::ToPod {
                            hop,
                            fetch_start,
                            request,
                            owner_webid,
                            owner_endpoint,
                            dev_endpoint,
                            cert_ok,
                            entry,
                            enclave_key,
                        },
                    })),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            AccessPhase::AtPod {
                fetch_start,
                request,
                owner_webid,
                owner_endpoint,
                dev_endpoint,
                cert_ok,
                entry,
                enclave_key,
            } => {
                let owner = world
                    .owners
                    .get_mut(&owner_webid)
                    .expect("checked at start");
                let verifier = move |_: &Digest, _: &str| cert_ok;
                let resp = owner.pod_manager.handle_with_verifier(&request, &verifier);
                if resp.status != Status::Ok {
                    return Step::Done(Err(ProcessError::Solid {
                        status: resp.status,
                        detail: resp.detail,
                    }));
                }
                // Response hop: pod manager → device (size-dependent,
                // fault-aware).
                let hop = Hop::new(
                    world,
                    owner_endpoint,
                    dev_endpoint,
                    resp.size() as u64,
                    HopKind::PodResponse,
                );
                let bytes = match resp.body {
                    Body::Turtle(t) | Body::Text(t) => t.into_bytes(),
                    Body::Binary(b) => b,
                    Body::Empty => Vec::new(),
                };
                Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::FromPod {
                            hop,
                            fetch_start,
                            bytes,
                            dev_endpoint,
                            entry,
                            enclave_key,
                        },
                    })),
                    now,
                )
            }
            AccessPhase::FromPod {
                mut hop,
                fetch_start,
                bytes,
                dev_endpoint,
                entry,
                enclave_key,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::Arrived {
                            fetch_start,
                            bytes,
                            dev_endpoint,
                            entry,
                            enclave_key,
                        },
                    })),
                    arrives,
                ),
                HopPoll::Retry { at } => Step::Sleep(
                    Machine::Access(Box::new(Access {
                        device,
                        resource,
                        started,
                        phase: AccessPhase::FromPod {
                            hop,
                            fetch_start,
                            bytes,
                            dev_endpoint,
                            entry,
                            enclave_key,
                        },
                    })),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            AccessPhase::Arrived {
                fetch_start,
                bytes,
                dev_endpoint,
                entry,
                enclave_key,
            } => {
                let fetch = now - fetch_start;
                let bytes_len = bytes.len();
                let dev = world.devices.get_mut(&device).expect("checked at start");
                let webid = dev.webid.clone();
                dev.tee
                    .store_resource(&resource, &bytes, entry.policy.clone(), now);

                // Register the copy on-chain and subscribe to policy
                // updates.
                let build = {
                    let key = dev.key;
                    let resource = resource.clone();
                    let device = device.clone();
                    move |w: &World<L>| {
                        w.dex.register_copy_tx(
                            &w.chain,
                            &key,
                            &resource,
                            &device,
                            &webid,
                            enclave_key,
                        )
                    }
                };
                let (flow, poll) = TxFlow::start(world, dev_endpoint, build);
                let next = Access {
                    device,
                    resource,
                    started,
                    phase: AccessPhase::Confirm {
                        flow,
                        fetch,
                        bytes_len,
                        dev_endpoint,
                    },
                };
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(Machine::Access(Box::new(next)), at),
                    FlowPoll::Done(res) => {
                        let Access {
                            device,
                            resource,
                            started,
                            phase,
                        } = next;
                        let AccessPhase::Confirm {
                            fetch,
                            bytes_len,
                            dev_endpoint,
                            ..
                        } = phase
                        else {
                            unreachable!()
                        };
                        Self::finish(
                            world,
                            device,
                            resource,
                            started,
                            fetch,
                            bytes_len,
                            dev_endpoint,
                            res,
                        )
                    }
                }
            }
            AccessPhase::Confirm {
                flow,
                fetch,
                bytes_len,
                dev_endpoint,
            } => drive_flow!(
                world,
                flow,
                |flow| Machine::Access(Box::new(Access {
                    device: device.clone(),
                    resource: resource.clone(),
                    started,
                    phase: AccessPhase::Confirm {
                        flow,
                        fetch,
                        bytes_len,
                        dev_endpoint
                    },
                })),
                |world: &mut World<L>, res| Self::finish(
                    world,
                    device.clone(),
                    resource.clone(),
                    started,
                    fetch,
                    bytes_len,
                    dev_endpoint,
                    res
                )
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        world: &mut World<L>,
        device: String,
        resource: String,
        started: SimTime,
        fetch: SimDuration,
        bytes_len: usize,
        dev_endpoint: EndpointId,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => {
                // The governed copy was sealed into the TEE before the
                // on-chain registration; a failed registration rolls it
                // back so no *unregistered* copy survives a fault
                // (fail-safe: the TEE never retains what it could not
                // prove it may hold). A re-access whose earlier
                // registration is already on-chain keeps its copy — that
                // registration is still valid and re-registration is
                // idempotent. A timed-out tx that confirms *after* the
                // rollback leaves a stale registry record pointing at a
                // deleted copy; monitoring surfaces exactly that (the
                // device reports nothing for it).
                let now = world.clock.now();
                let registered = world
                    .dex
                    .list_copies(&world.chain, &resource)
                    .is_ok_and(|copies| copies.iter().any(|c| c.device == device));
                if !registered {
                    if let Some(dev) = world.devices.get_mut(&device) {
                        if dev.tee.delete(&resource, now) {
                            world.metrics.incr("driver.access.rolled_back");
                        }
                    }
                }
                return Step::Done(Err(e));
            }
        };
        world
            .push_out
            .subscribe(topics::POLICY_UPDATED, dev_endpoint);

        let now = world.clock.now();
        let e2e = now - started;
        world.metrics.record("process.access.e2e", e2e);
        world.metrics.record("process.access.fetch", fetch);
        world.metrics.add("process.access.gas", receipt.gas_used);
        world.metrics.add("process.access.bytes", bytes_len as u64);
        world
            .trace
            .record(now, format!("tee:{device}"), "resource.stored", resource);
        Step::Done(Ok(Outcome::Accessed(AccessOutcome {
            bytes: bytes_len,
            e2e,
            fetch,
        })))
    }
}

// -------------------------------------------------------------- process 5

/// Process 5 — policy modification and push-out fan-out.
pub(crate) struct PolicyMod<L> {
    webid: String,
    path: String,
    started: SimTime,
    phase: PolicyModPhase<L>,
}

enum PolicyModPhase<L> {
    Start {
        rules: Vec<Rule>,
        duties: Vec<Duty>,
    },
    Confirm {
        flow: TxFlow<L>,
        resource_iri: String,
        version: u64,
    },
    Fanout(FanoutState),
    ConfirmUnregisters(FanoutState),
}

/// Accumulated fan-out state shared by the last two phases of process 5.
struct FanoutState {
    resource_iri: String,
    version: u64,
    deliveries: VecDeque<(OutboundDelivery, UsagePolicy)>,
    by_endpoint: HashMap<EndpointId, String>,
    notified: usize,
    enforcement: Vec<(String, EnforcementAction)>,
    pending: VecDeque<TxId>,
    current: Option<(TxId, SimTime)>,
}

impl<L: Ledger> PolicyMod<L> {
    fn step(self, world: &mut World<L>) -> Step<L> {
        let PolicyMod {
            webid,
            path,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        match phase {
            PolicyModPhase::Start { rules, duties } => {
                let Some(owner) = world.owners.get_mut(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                let endpoint = owner.endpoint;
                let owner_key = owner.key;
                let amended = match owner
                    .pod_manager
                    .modify_policy(&webid, &path, rules, duties)
                {
                    Ok(amended) => amended,
                    Err(status) => {
                        return Step::Done(Err(ProcessError::Solid {
                            status,
                            detail: Some("policy modification refused".into()),
                        }))
                    }
                };
                let resource_iri = owner.pod_manager.pod().iri_of(&path);

                let envelope = world.envelope(&amended);
                let version = amended.version;
                let build = {
                    let iri = resource_iri.clone();
                    move |w: &World<L>| {
                        w.dex.update_policy_tx(
                            &w.chain,
                            &owner_key,
                            &iri,
                            envelope.clone(),
                            version,
                        )
                    }
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        Machine::PolicyMod(Box::new(PolicyMod {
                            webid,
                            path,
                            started,
                            phase: PolicyModPhase::Confirm {
                                flow,
                                resource_iri,
                                version,
                            },
                        })),
                        at,
                    ),
                    FlowPoll::Done(res) => {
                        Self::after_confirm(world, webid, path, started, resource_iri, version, res)
                    }
                }
            }
            PolicyModPhase::Confirm {
                flow,
                resource_iri,
                version,
            } => drive_flow!(
                world,
                flow,
                |flow| Machine::PolicyMod(Box::new(PolicyMod {
                    webid: webid.clone(),
                    path: path.clone(),
                    started,
                    phase: PolicyModPhase::Confirm {
                        flow,
                        resource_iri: resource_iri.clone(),
                        version,
                    },
                })),
                |world: &mut World<L>, res| Self::after_confirm(
                    world,
                    webid.clone(),
                    path.clone(),
                    started,
                    resource_iri.clone(),
                    version,
                    res
                )
            ),
            PolicyModPhase::Fanout(mut state) => {
                // Apply every delivery that has arrived by now.
                while state
                    .deliveries
                    .front()
                    .is_some_and(|(d, _)| d.arrives_at <= now)
                {
                    let (delivery, policy) = state.deliveries.pop_front().expect("peeked");
                    let Some(device_name) = state.by_endpoint.get(&delivery.recipient).cloned()
                    else {
                        continue;
                    };
                    let device = world
                        .devices
                        .get_mut(&device_name)
                        .expect("endpoint map is fresh");
                    if !device.tee.has_copy(&state.resource_iri) {
                        continue;
                    }
                    let actions = device.tee.apply_policy_update(
                        &state.resource_iri,
                        policy,
                        delivery.arrives_at,
                    );
                    world.metrics.record(
                        "process.policy_mod.propagation",
                        delivery.arrives_at - started,
                    );
                    state.notified += 1;
                    for action in actions {
                        if let EnforcementAction::Deleted { .. } = &action {
                            world.metrics.incr("enforcement.deletions");
                            // The copy registry is updated so future rounds
                            // skip this device.
                            let tx = world.dex.unregister_copy_tx(
                                &world.chain,
                                &device.key,
                                &state.resource_iri,
                                &device_name,
                            );
                            if let Ok(id) = world.chain.submit(tx) {
                                state.pending.push_back(id);
                            }
                        }
                        state.enforcement.push((device_name.clone(), action));
                    }
                }
                match state.deliveries.front() {
                    Some((d, _)) => {
                        let at = d.arrives_at;
                        Step::Sleep(
                            Machine::PolicyMod(Box::new(PolicyMod {
                                webid,
                                path,
                                started,
                                phase: PolicyModPhase::Fanout(state),
                            })),
                            at,
                        )
                    }
                    None => PolicyMod {
                        webid,
                        path,
                        started,
                        phase: PolicyModPhase::ConfirmUnregisters(state),
                    }
                    .step(world),
                }
            }
            PolicyModPhase::ConfirmUnregisters(mut state) => {
                // Await inclusion of *every* pending unregistration so an
                // earlier deletion cannot race a later monitoring round.
                loop {
                    if let Some((id, deadline)) = state.current.take() {
                        match duc_oracle::poll_inclusion(&mut world.chain, now, &id, deadline) {
                            InclusionStatus::Included(_) | InclusionStatus::TimedOut { .. } => {}
                            InclusionStatus::Pending { retry_at } => {
                                state.current = Some((id, deadline));
                                return Step::Sleep(
                                    Machine::PolicyMod(Box::new(PolicyMod {
                                        webid,
                                        path,
                                        started,
                                        phase: PolicyModPhase::ConfirmUnregisters(state),
                                    })),
                                    retry_at,
                                );
                            }
                        }
                    } else if let Some(id) = state.pending.pop_front() {
                        state.current = Some((id, now + CONFIRM_TIMEOUT));
                    } else {
                        break;
                    }
                }
                world.sync_chain();

                let e2e = now - started;
                world.metrics.record("process.policy_mod.e2e", e2e);
                world.trace.record(
                    now,
                    format!("pm:{webid}"),
                    "policy.updated",
                    format!("{} v{}", state.resource_iri, state.version),
                );
                Step::Done(Ok(Outcome::PolicyPropagated(PropagationOutcome {
                    version: state.version,
                    devices_notified: state.notified,
                    enforcement: state.enforcement,
                    e2e,
                })))
            }
        }
    }

    /// Transition out of the confirm phase: record gas, claim this
    /// resource's push-out deliveries and start the fan-out.
    fn after_confirm(
        world: &mut World<L>,
        webid: String,
        path: String,
        started: SimTime,
        resource_iri: String,
        version: u64,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        world
            .metrics
            .add("process.policy_mod.gas", receipt.gas_used);

        // Push-out fan-out to subscribed devices: claim the deliveries that
        // belong to *this* resource; others stay in the shared inbox for
        // their own in-flight processes.
        let iri = resource_iri.clone();
        let claimed = world.claim_deliveries(|d| {
            d.event.topic == topics::POLICY_UPDATED
                && decode_policy_update(&d.event.data).is_some_and(|(res, _, _)| res == iri)
        });
        let mut deliveries: Vec<(OutboundDelivery, UsagePolicy)> = Vec::new();
        for delivery in claimed {
            let Some((_, _, policy_env)) = decode_policy_update(&delivery.event.data) else {
                continue;
            };
            let policy = match world.open_envelope(&policy_env) {
                Ok(policy) => policy,
                Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
            };
            deliveries.push((delivery, policy));
        }
        deliveries.sort_by_key(|(d, _)| d.arrives_at);

        let by_endpoint: HashMap<EndpointId, String> = world
            .devices
            .iter()
            .map(|(name, d)| (d.endpoint, name.clone()))
            .collect();
        PolicyMod {
            webid,
            path,
            started,
            phase: PolicyModPhase::Fanout(FanoutState {
                resource_iri,
                version,
                deliveries: deliveries.into(),
                by_endpoint,
                notified: 0,
                enforcement: Vec::new(),
                pending: VecDeque::new(),
                current: None,
            }),
        }
        .step(world)
    }
}

/// Decodes a `PolicyUpdated` event payload.
fn decode_policy_update(data: &[u8]) -> Option<(String, u64, duc_contracts::PolicyEnvelope)> {
    duc_codec::decode_from_slice(data).ok()
}

// -------------------------------------------------------------- process 6

/// Process 6 — policy monitoring round.
pub(crate) struct Monitoring<L> {
    webid: String,
    path: String,
    started: SimTime,
    phase: MonPhase<L>,
}

/// Context accumulated while a monitoring round runs.
struct MonCtx {
    resource_iri: String,
    endpoint: EndpointId,
    round: u64,
    expected: VecDeque<String>,
    expected_total: usize,
    evidence_bytes: usize,
    submissions: usize,
}

enum MonPhase<L> {
    Open,
    OpenConfirm {
        flow: TxFlow<L>,
        resource_iri: String,
        endpoint: EndpointId,
    },
    /// Poll hop (relay → gateway), fault-aware.
    PollOut {
        ctx: MonCtx,
        hop: Hop,
    },
    PollGateway(MonCtx),
    /// Return hop (gateway → relay), fault-aware; the cursor commits only
    /// when the response actually arrives.
    PollReturn {
        ctx: MonCtx,
        events: Vec<(u64, Event)>,
        cursor_to: u64,
        hop: Hop,
    },
    PollArrived {
        ctx: MonCtx,
        events: Vec<(u64, Event)>,
        cursor_to: u64,
    },
    DeviceRequest(MonCtx),
    /// Evidence probe hop (relay → device), fault-aware: a device that
    /// stays unreachable past the hop budget is skipped, not fatal.
    DeviceProbe {
        ctx: MonCtx,
        device: String,
        hop: Hop,
    },
    DeviceReport {
        ctx: MonCtx,
        device: String,
    },
    EvidenceConfirm {
        ctx: MonCtx,
        flow: TxFlow<L>,
    },
}

impl<L: Ledger> Monitoring<L> {
    #[allow(clippy::too_many_lines)]
    fn step(self, world: &mut World<L>) -> Step<L> {
        let Monitoring {
            webid,
            path,
            started,
            phase,
        } = self;
        let now = world.clock.now();
        let wrap = |phase| {
            Machine::Monitoring(Box::new(Monitoring {
                webid: webid.clone(),
                path: path.clone(),
                started,
                phase,
            }))
        };
        match phase {
            MonPhase::Open => {
                let Some(owner) = world.try_owner(&webid) else {
                    return Step::Done(Err(ProcessError::UnknownOwner(webid)));
                };
                let endpoint = owner.endpoint;
                let resource_iri = owner.pod_manager.pod().iri_of(&path);
                let owner_key = owner.key;

                // Open the round.
                let build = {
                    let iri = resource_iri.clone();
                    move |w: &World<L>| w.dex.start_monitoring_tx(&w.chain, &owner_key, &iri)
                };
                let (flow, poll) = TxFlow::start(world, endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        wrap(MonPhase::OpenConfirm {
                            flow,
                            resource_iri,
                            endpoint,
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::OpenConfirm {
                            flow: TxFlow::Spent,
                            resource_iri,
                            endpoint,
                        },
                    }
                    .open_confirmed(world, res),
                }
            }
            MonPhase::OpenConfirm {
                flow,
                resource_iri,
                endpoint,
            } => {
                let mut flow = flow;
                match flow.step(world) {
                    FlowPoll::Sleep(at) => Step::Sleep(
                        wrap(MonPhase::OpenConfirm {
                            flow,
                            resource_iri,
                            endpoint,
                        }),
                        at,
                    ),
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::OpenConfirm {
                            flow: TxFlow::Spent,
                            resource_iri,
                            endpoint,
                        },
                    }
                    .open_confirmed(world, res),
                }
            }
            MonPhase::PollOut { ctx, mut hop } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(wrap(MonPhase::PollGateway(ctx)), arrives),
                HopPoll::Retry { at } => Step::Sleep(wrap(MonPhase::PollOut { ctx, hop }), at),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            MonPhase::PollGateway(ctx) => {
                // At the gateway: collect the request events and ship them
                // back to the relay. The cursor commits only when the
                // response arrives, so a lost hop never strands events.
                let (events, response_size, cursor_to) =
                    world.pull_in.collect_requests(&world.chain);
                let hop = Hop::new(
                    world,
                    world.gateway,
                    world.pull_in.relay,
                    response_size,
                    HopKind::PullInReturn,
                );
                Step::Sleep(
                    wrap(MonPhase::PollReturn {
                        ctx,
                        events,
                        cursor_to,
                        hop,
                    }),
                    now,
                )
            }
            MonPhase::PollReturn {
                ctx,
                events,
                cursor_to,
                mut hop,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => Step::Sleep(
                    wrap(MonPhase::PollArrived {
                        ctx,
                        events,
                        cursor_to,
                    }),
                    arrives,
                ),
                HopPoll::Retry { at } => Step::Sleep(
                    wrap(MonPhase::PollReturn {
                        ctx,
                        events,
                        cursor_to,
                        hop,
                    }),
                    at,
                ),
                HopPoll::Failed(e) => Step::Done(Err(ProcessError::Oracle(e))),
            },
            MonPhase::PollArrived {
                mut ctx,
                events,
                cursor_to,
            } => {
                world.pull_in.commit_cursor(cursor_to);
                // Find our round's request among the fresh events and any
                // stashed by sibling rounds; stash the rest for them.
                let mut matched: Option<Vec<String>> = None;
                let stashed = std::mem::take(&mut world.driver.monitoring_inbox);
                for (height, event) in stashed {
                    match decode_monitoring_request(&event.data) {
                        Some((res, r, devices))
                            if matched.is_none() && res == ctx.resource_iri && r == ctx.round =>
                        {
                            matched = Some(devices);
                        }
                        _ => world.driver.monitoring_inbox.push((height, event)),
                    }
                }
                for (height, event) in events {
                    let decoded = match duc_codec::decode_from_slice::<(String, u64, Vec<String>)>(
                        &event.data,
                    ) {
                        Ok(decoded) => decoded,
                        Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
                    };
                    let (res, r, devices) = decoded;
                    if matched.is_none() && res == ctx.resource_iri && r == ctx.round {
                        matched = Some(devices);
                    } else {
                        world.driver.monitoring_inbox.push((height, event));
                    }
                }
                if let Some(devices) = matched {
                    ctx.expected_total = devices.len();
                    ctx.expected = devices.into();
                }
                Monitoring {
                    webid,
                    path,
                    started,
                    phase: MonPhase::DeviceRequest(ctx),
                }
                .step(world)
            }
            MonPhase::DeviceRequest(mut ctx) => {
                // Collect signed evidence from each expected device, in
                // order; devices that stay unreachable past the probe
                // budget are skipped without stalling the round.
                loop {
                    let Some(device_name) = ctx.expected.pop_front() else {
                        return Self::finish(world, webid, started, ctx);
                    };
                    let Some(device) = world.try_device(&device_name) else {
                        continue;
                    };
                    let dev_endpoint = device.endpoint;
                    // Request hop: oracle → device (fault-aware).
                    let hop = Hop::new(
                        world,
                        world.pull_in.relay,
                        dev_endpoint,
                        128,
                        HopKind::DeviceProbe,
                    );
                    return Step::Sleep(
                        wrap(MonPhase::DeviceProbe {
                            ctx,
                            device: device_name,
                            hop,
                        }),
                        now,
                    );
                }
            }
            MonPhase::DeviceProbe {
                ctx,
                device,
                mut hop,
            } => match hop.step(world) {
                HopPoll::Sent { arrives } => {
                    Step::Sleep(wrap(MonPhase::DeviceReport { ctx, device }), arrives)
                }
                HopPoll::Retry { at } => {
                    Step::Sleep(wrap(MonPhase::DeviceProbe { ctx, device, hop }), at)
                }
                HopPoll::Failed(_) => {
                    // The device could not be reached within the probe
                    // budget: record it and move on — absent evidence is
                    // itself visible in the on-chain round.
                    world.metrics.incr("process.monitoring.unreachable");
                    Monitoring {
                        webid: webid.clone(),
                        path: path.clone(),
                        started,
                        phase: MonPhase::DeviceRequest(ctx),
                    }
                    .step(world)
                }
            },
            MonPhase::DeviceReport { mut ctx, device } => {
                let Some(dev) = world.try_device(&device) else {
                    return Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::DeviceRequest(ctx),
                    }
                    .step(world);
                };
                let Some(report) = dev.tee.report(&ctx.resource_iri, now) else {
                    return Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::DeviceRequest(ctx),
                    }
                    .step(world);
                };
                let mut submission = EvidenceSubmission {
                    resource: ctx.resource_iri.clone(),
                    round: ctx.round,
                    device: device.clone(),
                    compliant: report.compliant,
                    violations: report.violations.clone(),
                    evidence_digest: report.log_digest,
                    signature: duc_crypto::Signature { e: 0, s: 0 },
                };
                submission.signature = dev.tee.enclave().sign(&submission.signing_bytes());
                ctx.evidence_bytes += duc_codec::encode_to_vec(&submission).len();
                let dev_endpoint = dev.endpoint;
                let build = {
                    let key = dev.key;
                    move |w: &World<L>| w.dex.record_evidence_tx(&w.chain, &key, &submission)
                };
                let (flow, poll) = TxFlow::start(world, dev_endpoint, build);
                match poll {
                    FlowPoll::Sleep(at) => {
                        Step::Sleep(wrap(MonPhase::EvidenceConfirm { ctx, flow }), at)
                    }
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::EvidenceConfirm {
                            ctx,
                            flow: TxFlow::Spent,
                        },
                    }
                    .evidence_confirmed(world, res),
                }
            }
            MonPhase::EvidenceConfirm { ctx, flow } => {
                let mut flow = flow;
                match flow.step(world) {
                    FlowPoll::Sleep(at) => {
                        Step::Sleep(wrap(MonPhase::EvidenceConfirm { ctx, flow }), at)
                    }
                    FlowPoll::Done(res) => Monitoring {
                        webid,
                        path,
                        started,
                        phase: MonPhase::EvidenceConfirm {
                            ctx,
                            flow: TxFlow::Spent,
                        },
                    }
                    .evidence_confirmed(world, res),
                }
            }
        }
    }

    /// The round-opening transaction confirmed: decode the round number and
    /// start the pull-in poll.
    fn open_confirmed(self, world: &mut World<L>, res: Result<Receipt, OracleError>) -> Step<L> {
        let Monitoring {
            webid,
            path,
            started,
            phase,
        } = self;
        let MonPhase::OpenConfirm {
            resource_iri,
            endpoint,
            ..
        } = phase
        else {
            unreachable!("open_confirmed called outside OpenConfirm")
        };
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        let round = match DistExchangeClient::decode_round_number(&receipt.return_data) {
            Ok(round) => round,
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        world
            .metrics
            .add("process.monitoring.gas", receipt.gas_used);

        // Pull-in oracle: poll the gateway for the request event
        // (fault-aware hop).
        let now = world.clock.now();
        let hop = Hop::new(
            world,
            world.pull_in.relay,
            world.gateway,
            64,
            HopKind::PullInPoll,
        );
        Step::Sleep(
            Machine::Monitoring(Box::new(Monitoring {
                webid,
                path,
                started,
                phase: MonPhase::PollOut {
                    ctx: MonCtx {
                        resource_iri,
                        endpoint,
                        round,
                        expected: VecDeque::new(),
                        expected_total: 0,
                        evidence_bytes: 0,
                        submissions: 0,
                    },
                    hop,
                },
            })),
            now,
        )
    }

    /// One device's evidence transaction confirmed: account for it and move
    /// on to the next device.
    fn evidence_confirmed(
        self,
        world: &mut World<L>,
        res: Result<Receipt, OracleError>,
    ) -> Step<L> {
        let Monitoring {
            webid,
            path,
            started,
            phase,
        } = self;
        let MonPhase::EvidenceConfirm { mut ctx, .. } = phase else {
            unreachable!("evidence_confirmed called outside EvidenceConfirm")
        };
        let receipt = match res.map_err(ProcessError::from).and_then(receipt_ok) {
            Ok(receipt) => receipt,
            Err(e) => return Step::Done(Err(e)),
        };
        world
            .metrics
            .add("process.monitoring.gas", receipt.gas_used);
        ctx.submissions += 1;
        Monitoring {
            webid,
            path,
            started,
            phase: MonPhase::DeviceRequest(ctx),
        }
        .step(world)
    }

    /// Every expected device was visited: read the verdict, deliver it to
    /// the pod manager (push-out) and complete.
    fn finish(world: &mut World<L>, webid: String, started: SimTime, ctx: MonCtx) -> Step<L> {
        let record = match world
            .dex
            .get_round(&world.chain, &ctx.resource_iri, ctx.round)
        {
            Ok(Some(record)) => record,
            Ok(None) => return Step::Done(Err(ProcessError::Policy("round vanished".into()))),
            Err(e) => return Step::Done(Err(ProcessError::Policy(e.to_string()))),
        };
        let endpoint = ctx.endpoint;
        let resource = ctx.resource_iri.clone();
        let round = ctx.round;
        let deliveries = world.claim_deliveries(|d| {
            d.event.topic == topics::ROUND_CLOSED
                && d.recipient == endpoint
                && decode_round_closed(&d.event.data)
                    .is_some_and(|(res, r)| res == resource && r == round)
        });
        if !deliveries.is_empty() {
            world.metrics.incr("process.monitoring.verdicts_delivered");
        }

        let now = world.clock.now();
        let duration = now - started;
        world.metrics.record("process.monitoring.e2e", duration);
        world.metrics.add(
            "process.monitoring.evidence_bytes",
            ctx.evidence_bytes as u64,
        );
        world.trace.record(
            now,
            format!("pm:{webid}"),
            "monitoring.round",
            format!(
                "{} round {}: {} violators",
                ctx.resource_iri,
                ctx.round,
                record.violators().len()
            ),
        );
        Step::Done(Ok(Outcome::Monitored(MonitoringOutcome {
            round: ctx.round,
            expected: ctx.expected_total,
            evidence: ctx.submissions,
            violators: record
                .violators()
                .iter()
                .map(|e| e.device.clone())
                .collect(),
            evidence_bytes: ctx.evidence_bytes,
            duration,
        })))
    }
}

/// Decodes a `MonitoringRequested` event payload.
fn decode_monitoring_request(data: &[u8]) -> Option<(String, u64, Vec<String>)> {
    duc_codec::decode_from_slice(data).ok()
}

/// Decodes the `(resource, round)` prefix of a `RoundClosed` event payload.
fn decode_round_closed(data: &[u8]) -> Option<(String, u64)> {
    duc_codec::decode_from_slice::<(String, u64, u64, Vec<String>)>(data)
        .ok()
        .map(|(res, round, _, _)| (res, round))
}

// ------------------------------------------------------------ driver state

/// Per-world driver bookkeeping: in-flight machines, wake queue, completed
/// outcomes, and the shared push-out/pull-in inboxes that keep concurrent
/// processes from stealing each other's events.
pub(crate) struct DriverState<L> {
    next_ticket: u64,
    inflight: HashMap<u64, Machine<L>>,
    woken: Rc<RefCell<VecDeque<u64>>>,
    completed: VecDeque<(Ticket, Result<Outcome, ProcessError>)>,
    pub(crate) inbox: Vec<OutboundDelivery>,
    pub(crate) monitoring_inbox: Vec<(u64, Event)>,
}

impl<L> DriverState<L> {
    pub(crate) fn new() -> DriverState<L> {
        DriverState {
            next_ticket: 0,
            inflight: HashMap::new(),
            woken: Rc::new(RefCell::new(VecDeque::new())),
            completed: VecDeque::new(),
            inbox: Vec::new(),
            monitoring_inbox: Vec::new(),
        }
    }
}

impl<L: Ledger> World<L> {
    /// Submits a request to the driver and returns its ticket immediately.
    ///
    /// Unknown owners/devices complete at once with a typed error (no
    /// panic); everything else starts advancing when the event loop runs
    /// ([`World::run_until_idle`], or [`World::advance`] up to a horizon).
    pub fn submit(&mut self, request: Request) -> Ticket {
        let ticket = Ticket(self.driver.next_ticket);
        self.driver.next_ticket += 1;
        let started = self.clock.now();

        // Participant validation up front: a typed error, not a panic.
        let rejection = match &request {
            Request::PodInitiation { webid }
            | Request::ResourceInitiation { webid, .. }
            | Request::PolicyModification { webid, .. }
            | Request::PolicyMonitoring { webid, .. } => (!self.owners.contains_key(webid))
                .then(|| ProcessError::UnknownOwner(webid.clone())),
            Request::ResourceIndexing { device, .. }
            | Request::MarketSubscribe { device }
            | Request::ResourceAccess { device, .. } => (!self.devices.contains_key(device))
                .then(|| ProcessError::UnknownDevice(device.clone())),
        };
        if let Some(err) = rejection {
            self.driver.completed.push_back((ticket, Err(err)));
            return ticket;
        }

        let machine = match request {
            Request::PodInitiation { webid } => Machine::PodInit(PodInit::new(webid, started)),
            Request::ResourceInitiation {
                webid,
                path,
                body,
                policy,
                metadata,
            } => Machine::ResInit(Box::new(ResInit {
                webid,
                path,
                body: Some(body),
                policy: Some(policy),
                metadata,
                resource_iri: String::new(),
                started,
                phase: ResInitPhase::Start,
            })),
            Request::ResourceIndexing { device, resource } => Machine::Indexing(Indexing {
                device,
                resource,
                started,
                phase: IndexingPhase::Start,
            }),
            Request::MarketSubscribe { device } => Machine::Subscribe(Subscribe {
                device,
                started,
                phase: SubscribePhase::Start,
            }),
            Request::ResourceAccess { device, resource } => Machine::Access(Box::new(Access {
                device,
                resource,
                started,
                phase: AccessPhase::Start,
            })),
            Request::PolicyModification {
                webid,
                path,
                rules,
                duties,
            } => Machine::PolicyMod(Box::new(PolicyMod {
                webid,
                path,
                started,
                phase: PolicyModPhase::Start { rules, duties },
            })),
            Request::PolicyMonitoring { webid, path } => {
                Machine::Monitoring(Box::new(Monitoring {
                    webid,
                    path,
                    started,
                    phase: MonPhase::Open,
                }))
            }
        };
        self.driver.inflight.insert(ticket.0, machine);
        self.driver.woken.borrow_mut().push_back(ticket.0);
        ticket
    }

    /// Number of requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.driver.inflight.len()
    }

    /// Takes the completed outcome for `ticket`, if the request finished.
    pub fn poll_ticket(&mut self, ticket: Ticket) -> Option<Result<Outcome, ProcessError>> {
        let pos = self
            .driver
            .completed
            .iter()
            .position(|(t, _)| *t == ticket)?;
        self.driver.completed.remove(pos).map(|(_, res)| res)
    }

    /// Drains every completed outcome, in completion order.
    pub fn drain_events(&mut self) -> Vec<(Ticket, Result<Outcome, ProcessError>)> {
        self.driver.completed.drain(..).collect()
    }

    /// Steps every process woken at the current instant.
    pub(crate) fn step_woken(&mut self) {
        loop {
            let Some(pid) = self.driver.woken.borrow_mut().pop_front() else {
                break;
            };
            self.step_process(pid);
        }
    }

    fn step_process(&mut self, pid: u64) {
        let Some(machine) = self.driver.inflight.remove(&pid) else {
            return;
        };
        match machine.step(self) {
            Step::Sleep(machine, at) => {
                self.driver.inflight.insert(pid, machine);
                if at <= self.clock.now() {
                    self.driver.woken.borrow_mut().push_back(pid);
                } else {
                    let woken = self.driver.woken.clone();
                    self.sched
                        .schedule_at(at, move |_| woken.borrow_mut().push_back(pid));
                }
            }
            Step::Done(result) => self.driver.completed.push_back((Ticket(pid), result)),
        }
    }

    /// Drives the event loop until no request is in flight: steps every
    /// woken process, then hops the scheduler to the next wake, repeating.
    /// Returns the number of process steps executed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut steps = 0;
        self.apply_faults();
        loop {
            while let Some(pid) = {
                let popped = self.driver.woken.borrow_mut().pop_front();
                popped
            } {
                self.step_process(pid);
                steps += 1;
            }
            // Idle means no request in flight; remaining scheduler entries
            // can only be fault-plan boundary markers, which must not drag
            // the clock forward on their own.
            if self.driver.inflight.is_empty() {
                break;
            }
            let Some(at) = self.sched.next_event_at() else {
                break;
            };
            self.sched.run_until(at);
            // The chain catches up under the pre-boundary fault state;
            // plan transitions due at this instant flip afterwards.
            self.chain.advance_to(self.clock.now());
            self.apply_faults();
        }
        if self.driver.inflight.is_empty() {
            // Nothing left to claim them: drop unclaimed deliveries, like
            // the one-shot processes did.
            self.driver.inbox.clear();
            self.driver.monitoring_inbox.clear();
        }
        self.sync_chain();
        steps
    }

    /// Drains fresh push-out deliveries into the shared inbox, then removes
    /// and returns those matching `pred`. Non-matching deliveries stay for
    /// other in-flight processes.
    pub(crate) fn claim_deliveries(
        &mut self,
        mut pred: impl FnMut(&OutboundDelivery) -> bool,
    ) -> Vec<OutboundDelivery> {
        let fresh = self
            .push_out
            .drain(&self.chain, &mut self.net, &self.clock, &mut self.rng);
        self.driver.inbox.extend(fresh);
        let mut claimed = Vec::new();
        let mut rest = Vec::new();
        for d in self.driver.inbox.drain(..) {
            if pred(&d) {
                claimed.push(d);
            } else {
                rest.push(d);
            }
        }
        self.driver.inbox = rest;
        claimed
    }
}
