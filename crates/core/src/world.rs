//! The simulated deployment: all components of Fig. 1, wired together.

use duc_blockchain::{
    Address, Blockchain, ContractId, ExecMode, Ledger, ShardedLedger, StorageConfig,
};
use duc_contracts::{topics, DistExchange, DistExchangeClient, PolicyEnvelope, DEX_CONTRACT_ID};
use duc_crypto::KeyPair;
use duc_intern::{Registry, SharedInterner};
use duc_oracle::{PullInOracle, PullOutOracle, PushInOracle, PushOutOracle};
use duc_policy::{PolicyEngine, UsagePolicy};
use duc_sim::{
    Clock, EndpointId, FaultPlan, LinkConfig, MetricsRegistry, NetworkModel, Rng, Scheduler,
    SimDuration, TraceRecorder,
};
use duc_solid::PodManager;
use duc_tee::{AttestationAuthority, Enclave, TrustedApplication};

/// How TEE obligations (retention/expiry deletion, notification) are
/// driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementMode {
    /// Deadline-driven (the default): the driver's obligation scheduler
    /// registers a wakeup at each copy's exact `next_transition` /
    /// deadline instant, so enforcement fires the moment a decision can
    /// flip — no polling.
    Deadline,
    /// Round-based baseline (experiment E14): obligations are only
    /// checked on a fixed-period grid, so a violation waits for the next
    /// sweep — the behaviour the paper's round-based monitoring implies.
    Periodic(SimDuration),
}

/// Configuration for one simulated deployment.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed (the whole run is a function of this and the workload).
    pub seed: u64,
    /// PoA validator count.
    pub validators: usize,
    /// Block interval.
    pub block_interval: SimDuration,
    /// Default network link profile.
    pub link: LinkConfig,
    /// Market subscription fee (native tokens).
    pub market_fee: u128,
    /// Certificate validity window.
    pub cert_validity: SimDuration,
    /// Store usage policies on-chain encrypted (privacy experiment E9).
    pub encrypt_policies: bool,
    /// Record a structured trace of every process hop.
    pub trace: bool,
    /// Genesis balance for every participant.
    pub initial_balance: u128,
    /// Shard count for multi-chain backends ([`World::new_sharded`]);
    /// single-chain worlds ignore it.
    pub shards: usize,
    /// Obligation-enforcement mode (see [`EnforcementMode`]).
    pub enforcement: EnforcementMode,
    /// Block/state storage policy: checkpoint interval, retained block
    /// window and optional archive path (disabled by default — every
    /// block stays resident, the pre-storage behaviour).
    pub storage: StorageConfig,
    /// Block-execution mode: serial (the default) or the deterministic
    /// parallel executor. Defaults from `DUC_EXEC_MODE`; both produce
    /// byte-identical chains.
    pub exec_mode: ExecMode,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            validators: 4,
            block_interval: SimDuration::from_secs(2),
            link: LinkConfig::default(),
            market_fee: 10_000,
            cert_validity: SimDuration::from_days(30),
            encrypt_policies: false,
            trace: false,
            initial_balance: 10_000_000_000,
            shards: 1,
            enforcement: EnforcementMode::Deadline,
            storage: StorageConfig::disabled(),
            exec_mode: ExecMode::from_env(),
        }
    }
}

/// The fault-plan state a world has currently pushed into its components
/// (network model + chain). Diffed against the plan at every transition
/// boundary; manual fault toggles outside the plan are never clobbered.
#[derive(Debug, Clone, Default)]
struct AppliedFaults {
    crashed: std::collections::BTreeSet<EndpointId>,
    partitioned: std::collections::BTreeSet<(EndpointId, EndpointId)>,
    lossy: std::collections::BTreeMap<(EndpointId, EndpointId), u16>,
    stalled: std::collections::BTreeSet<usize>,
}

/// A data owner: a chain identity plus a pod manager.
pub struct Owner {
    /// Chain signing key.
    pub key: KeyPair,
    /// The pod manager fronting the owner's pod.
    pub pod_manager: PodManager,
    /// The pod manager's network endpoint.
    pub endpoint: EndpointId,
    /// Whether the pod has been registered on-chain (process 1 done).
    pub pod_registered: bool,
}

/// What a device learned about a resource from the DE App (paper process 3
/// stores these "in the TEE").
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// Physical location of the resource.
    pub location: String,
    /// WebID of the data owner.
    pub owner_webid: String,
    /// The usage policy at indexing time.
    pub policy: UsagePolicy,
}

/// A consumer device: a chain identity plus a TEE.
pub struct Device {
    /// WebID of the consumer operating the device.
    pub webid: String,
    /// Chain signing key (pays for copy registration and evidence).
    pub key: KeyPair,
    /// The trusted application in this device's enclave.
    pub tee: TrustedApplication,
    /// The device's network endpoint.
    pub endpoint: EndpointId,
    /// Market certificate, once subscribed.
    pub certificate: Option<duc_crypto::Digest>,
    /// Indexed resources by IRI (interned in the world's symbol space).
    pub indexed: Registry<IndexEntry>,
}

/// One simulated deployment of the whole architecture, generic over the
/// [`Ledger`] backend hosting the DE App. The default is the legacy
/// single-chain backend ([`World::new`]); [`World::new_sharded`] builds the
/// same deployment over a [`ShardedLedger`].
pub struct World<L = Blockchain> {
    /// Deployment configuration.
    pub config: WorldConfig,
    /// Logical clock shared by every component.
    pub clock: Clock,
    /// The network model.
    pub net: NetworkModel,
    /// Seeded randomness.
    pub rng: Rng,
    /// The ledger hosting the DE App.
    pub chain: L,
    /// Typed DE App client.
    pub dex: DistExchangeClient,
    /// Push-in oracle (off-chain → chain transactions).
    pub push_in: PushInOracle,
    /// Push-out oracle (chain events → devices/pod managers).
    pub push_out: PushOutOracle,
    /// Pull-out oracle (off-chain reads of chain state).
    pub pull_out: PullOutOracle,
    /// Pull-in oracle (chain-initiated data requests).
    pub pull_in: PullInOracle,
    /// The attestation authority trusted by the DE App deployment.
    pub attestation: AttestationAuthority,
    /// The world's shared identity table: WebIDs, device names, pod URLs
    /// and resource IRIs all intern into one symbol space, so the hot-path
    /// maps below key on `u32` symbols instead of re-hashing strings.
    pub ids: SharedInterner,
    /// Data owners by WebID (flat, interned; deterministic iteration).
    pub owners: Registry<Owner>,
    /// Consumer devices by device name (flat, interned).
    pub devices: Registry<Device>,
    /// Collected measurements.
    pub metrics: MetricsRegistry,
    /// Structured event trace (enabled by [`WorldConfig::trace`]).
    pub trace: TraceRecorder,
    /// The chain gateway endpoint (where view calls land).
    pub gateway: EndpointId,
    /// The discrete-event scheduler driving in-flight request machines
    /// (shares this world's clock).
    pub sched: Scheduler,
    /// Non-blocking request driver bookkeeping (see [`crate::driver`]).
    pub(crate) driver: crate::driver::DriverState<L>,
    /// The declarative fault plan driving chaos runs (see
    /// [`World::set_fault_plan`]).
    fault_plan: FaultPlan,
    /// Fault-plan state currently applied to the components, so boundary
    /// transitions toggle exactly what the plan controls and nothing else.
    applied_faults: AppliedFaults,
    /// Devices whose hosts suppress enclave timers (fault injection).
    rogue_hosts: std::collections::HashSet<String>,
    /// Devices whose trusted application reported a damaged state
    /// ([`duc_tee::TeeError`]): excluded from the deadline poll so a
    /// permanently faulted enclave cannot pin [`World::advance`] to the
    /// same overdue instant forever.
    tee_faulted: std::collections::HashSet<String>,
    /// Key material for encrypted policy envelopes (E9). In a production
    /// deployment this would come from a key-distribution service; the
    /// simulation provisions it to owners and TEEs out of band.
    pub policy_key: ([u8; 32], [u8; 12]),
    engine: PolicyEngine,
}

impl World {
    /// Builds a deployment over the legacy single-chain backend: chain +
    /// DE App + oracles, no participants yet.
    pub fn new(config: WorldConfig) -> World {
        let chain = Blockchain::builder()
            .validators(config.validators)
            .block_interval(config.block_interval)
            .storage(config.storage.clone())
            .exec_mode(config.exec_mode)
            .build();
        World::with_ledger(config, chain)
    }
}

impl World<ShardedLedger> {
    /// Builds the same deployment over a [`ShardedLedger`] with
    /// [`WorldConfig::shards`] independent chains, the DE App deployed and
    /// initialized on each, and the DE App router installed
    /// (`duc_contracts::routing`).
    pub fn new_sharded(config: WorldConfig) -> World<ShardedLedger> {
        let chain = ShardedLedger::new(
            config.shards.max(1),
            config.validators,
            config.block_interval,
        )
        .with_storage(config.storage.clone())
        .with_exec_mode(config.exec_mode)
        .with_router(duc_contracts::routing::dex_router());
        World::with_ledger(config, chain)
    }
}

impl<L: Ledger> World<L> {
    /// Builds a deployment on a caller-supplied [`Ledger`] backend: deploys
    /// the DE App on every shard, runs the per-shard market initialization,
    /// and wires the oracles. For the single-chain backend this is
    /// step-for-step the pre-trait constructor (byte-identical runs).
    pub fn with_ledger(config: WorldConfig, mut chain: L) -> World<L> {
        chain.deploy_with(ContractId::new(DEX_CONTRACT_ID), &|| {
            Box::new(DistExchange::default())
        });
        chain.install_access_fn(&duc_contracts::dex_access_fn);
        let dex = DistExchangeClient::new();

        // Market initialization by a deployment admin, once per shard.
        let admin = chain.create_funded_account(b"duc/market-admin", 1_000_000_000);
        let treasury = Address::from_seed(b"duc/market-treasury");
        for shard in 0..chain.shard_count() {
            let init = dex.init_tx_on(
                &chain,
                shard,
                &admin,
                config.market_fee,
                config.cert_validity.as_nanos(),
                treasury,
            );
            chain.submit_on(shard, init).expect("genesis init is valid");
        }
        chain.advance_to(duc_sim::SimTime::ZERO + config.block_interval);

        let mut net = NetworkModel::new(config.link.clone());
        let relay = net.add_endpoint("oracle-relay");
        let gateway = net.add_endpoint("chain-gateway");

        let clock = Clock::new();
        clock.advance(config.block_interval); // genesis block has passed
        let trace = if config.trace {
            TraceRecorder::new()
        } else {
            TraceRecorder::disabled()
        };
        let ids = SharedInterner::new();
        World {
            rng: Rng::seed_from_u64(config.seed),
            sched: Scheduler::new(clock.clone()),
            driver: crate::driver::DriverState::new(),
            fault_plan: FaultPlan::none(),
            applied_faults: AppliedFaults::default(),
            push_in: PushInOracle::new(relay),
            push_out: PushOutOracle::new(relay),
            pull_out: PullOutOracle::new(relay),
            pull_in: PullInOracle::new(relay, topics::MONITORING_REQUESTED),
            attestation: AttestationAuthority::new(b"duc/attestation-root"),
            owners: Registry::new(ids.clone()),
            devices: Registry::new(ids.clone()),
            ids,
            metrics: MetricsRegistry::new(),
            trace,
            gateway,
            rogue_hosts: std::collections::HashSet::new(),
            tee_faulted: std::collections::HashSet::new(),
            policy_key: ([0x42; 32], [0x17; 12]),
            engine: PolicyEngine::default(),
            config,
            clock,
            net,
            chain,
            dex,
        }
    }

    /// The policy engine (standard purpose taxonomy).
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Registers a data owner with a pod rooted at `pod_root`.
    /// (Participant setup; the on-chain half happens in process 1.)
    pub fn add_owner(&mut self, webid: impl Into<String>, pod_root: impl Into<String>) {
        let webid = webid.into();
        let pod_root = pod_root.into();
        let key = self
            .chain
            .create_funded_account(webid.as_bytes(), self.config.initial_balance);
        // Sharded backends co-locate everything the owner anchors: resource
        // IRIs under the pod root route to the owner's shard.
        self.chain.register_route_alias(&pod_root, &webid);
        let endpoint = self.net.add_endpoint(format!("pod-manager:{webid}"));
        let owner = Owner {
            key,
            pod_manager: PodManager::new(pod_root, webid.clone()),
            endpoint,
            pod_registered: false,
        };
        self.owners.insert(&webid, owner);
    }

    /// Registers a consumer device operated by `webid`, running the
    /// canonical trusted application (whitelisted with the attestation
    /// authority).
    pub fn add_device(&mut self, device: impl Into<String>, webid: impl Into<String>) {
        let device = device.into();
        let webid = webid.into();
        let enclave = Enclave::new(device.clone(), b"duc/trusted-app-v1");
        self.attestation.trust_measurement(enclave.measurement());
        let key = self
            .chain
            .create_funded_account(device.as_bytes(), self.config.initial_balance);
        let endpoint = self.net.add_endpoint(format!("device:{device}"));
        self.devices.insert(
            &device,
            Device {
                tee: TrustedApplication::new(enclave, webid.clone()),
                webid,
                key,
                endpoint,
                certificate: None,
                indexed: Registry::new(self.ids.clone()),
            },
        );
    }

    /// Wraps a policy for on-chain storage per the deployment's privacy
    /// configuration.
    pub fn envelope(&self, policy: &UsagePolicy) -> PolicyEnvelope {
        if self.config.encrypt_policies {
            PolicyEnvelope::sealed(policy, self.policy_key.0, self.policy_key.1)
        } else {
            PolicyEnvelope::plain(policy)
        }
    }

    /// Opens an on-chain policy envelope per the deployment configuration.
    ///
    /// # Errors
    /// Propagates envelope decode errors (wrong key, corrupt bytes).
    pub fn open_envelope(
        &self,
        env: &PolicyEnvelope,
    ) -> Result<UsagePolicy, duc_codec::DecodeError> {
        if env.encrypted {
            env.open(Some(self.policy_key))
        } else {
            env.open(None)
        }
    }

    /// Produces blocks due at the current clock and returns the height.
    ///
    /// When the chain prunes behind a checkpoint, idle oracle cursors are
    /// fast-forwarded to the new horizon (the relay observing the
    /// checkpoint announcement): every event below it is evicted, so the
    /// lift is exactly the resync the next poll would be forced into, and
    /// cursors stay within `[prune_horizon, height]` at every quiescent
    /// point (a chaos invariant).
    pub fn sync_chain(&mut self) -> u64 {
        self.chain.advance_to(self.clock.now());
        let horizon = self.chain.prune_horizon();
        if horizon > 0 {
            self.push_out.resync(horizon);
            self.pull_in.resync(horizon);
        }
        self.chain.height()
    }

    /// Installs a declarative [`FaultPlan`] for this run.
    ///
    /// Crashes, partitions, drop windows and validator stalls flip at
    /// exactly their declared boundaries while the event loop runs: the
    /// plan's transition instants are scheduled as events, so every hop of
    /// every in-flight process observes the fault state of its own instant.
    /// The driver's machines additionally *suspend* hops blocked by a
    /// declared crash/partition window and resume at recovery (see
    /// [`crate::driver`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let now = self.clock.now();
        for boundary in plan.boundaries() {
            if boundary > now {
                // A no-op event: it makes the event loop pause at the
                // boundary, where `apply_faults` flips component state.
                self.sched.schedule_at(boundary, |_| {});
            }
        }
        self.fault_plan = plan;
        self.apply_faults();
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Synchronizes component fault state (network down/partition/loss,
    /// chain validator stalls) with the plan at the current instant. Only
    /// differences against the previously applied state are toggled, so
    /// manual fault injection outside the plan is preserved.
    pub(crate) fn apply_faults(&mut self) {
        let applied_empty = self.applied_faults.crashed.is_empty()
            && self.applied_faults.partitioned.is_empty()
            && self.applied_faults.lossy.is_empty()
            && self.applied_faults.stalled.is_empty();
        if self.fault_plan.is_empty() && applied_empty {
            return;
        }
        let now = self.clock.now();
        let mut applied = std::mem::take(&mut self.applied_faults);

        let crashed = self.fault_plan.crashed_at(now);
        for ep in applied.crashed.difference(&crashed) {
            self.net.set_down(*ep, false);
        }
        for ep in crashed.difference(&applied.crashed) {
            self.net.set_down(*ep, true);
        }
        applied.crashed = crashed;

        let partitioned = self.fault_plan.partitions_at(now);
        for (a, b) in applied.partitioned.difference(&partitioned) {
            self.net.heal(*a, *b);
        }
        for (a, b) in partitioned.difference(&applied.partitioned) {
            self.net.partition(*a, *b);
        }
        applied.partitioned = partitioned;

        let lossy = self.fault_plan.lossy_at(now);
        for (pair, _) in applied
            .lossy
            .iter()
            .filter(|(p, _)| !lossy.contains_key(*p))
        {
            self.net.clear_extra_drop(pair.0, pair.1);
        }
        for (pair, per_mille) in &lossy {
            if applied.lossy.get(pair) != Some(per_mille) {
                self.net
                    .set_extra_drop(pair.0, pair.1, f64::from(*per_mille) / 1000.0);
            }
        }
        applied.lossy = lossy;

        let stalled = self.fault_plan.stalled_at(now);
        for idx in applied.stalled.difference(&stalled) {
            self.chain.set_validator_down(*idx, false);
        }
        for idx in stalled.difference(&applied.stalled) {
            self.chain.set_validator_down(*idx, true);
        }
        applied.stalled = stalled;

        self.applied_faults = applied;
    }

    /// Marks a device's host as rogue: its enclave timer interrupts are
    /// suppressed, so obligation sweeps never fire autonomously (the
    /// monitoring experiments use this to create detectable violators; the
    /// enclave still cannot *forge* evidence).
    pub fn set_rogue_host(&mut self, device: impl Into<String>, rogue: bool) {
        let device = device.into();
        if rogue {
            self.rogue_hosts.insert(device);
        } else {
            self.rogue_hosts.remove(&device);
        }
    }

    /// Whether a device's host currently suppresses its enclave timers.
    pub fn is_rogue_host(&self, device: &str) -> bool {
        self.rogue_hosts.contains(device)
    }

    /// Advances simulated time. TEE obligation timers fire at their exact
    /// deadlines along the way (paper §III-C: "the TEE automatically
    /// deletes the resource ... after one week has passed, as per the
    /// policy"), in-flight driver requests progress through their scheduled
    /// continuations, and the chain catches up to the final instant.
    ///
    /// Copies that entered through the driver (process 4) are enforced by
    /// the obligation scheduler's own wakeup events; the deadline poll
    /// below is a fallback for copies stored directly into a TEE by test
    /// or bench harnesses, and is disabled under
    /// [`EnforcementMode::Periodic`] (where the grid wakeups are the whole
    /// point).
    pub fn advance(&mut self, d: SimDuration) {
        let target = self.clock.now() + d;
        loop {
            // Driver work due at the current instant runs first.
            self.step_woken();
            let next_deadline = self.next_obligation_deadline().filter(|at| *at <= target);
            let next_event = self.sched.next_event_at().filter(|at| *at <= target);
            match (next_event, next_deadline) {
                (Some(event_at), deadline) if deadline.is_none_or(|dl| event_at <= dl) => {
                    self.sched.run_until(event_at);
                    // The chain catches up under the pre-boundary fault
                    // state; plan transitions due at this instant flip
                    // afterwards.
                    self.chain.advance_to(self.clock.now());
                    self.apply_faults();
                }
                (_, Some(deadline)) => {
                    self.clock.advance_to(deadline);
                    self.apply_faults();
                    self.sweep_devices();
                }
                _ => break,
            }
        }
        self.step_woken();
        self.clock.advance_to(target);
        self.chain.advance_to(self.clock.now());
        self.apply_faults();
    }

    /// The earliest pending TEE obligation deadline across healthy
    /// devices — the fallback poll [`World::advance`] honours. `None`
    /// under [`EnforcementMode::Periodic`], where the grid wakeups are the
    /// whole point.
    pub fn next_obligation_deadline(&self) -> Option<duc_sim::SimTime> {
        match self.config.enforcement {
            EnforcementMode::Periodic(_) => None,
            EnforcementMode::Deadline => self
                .devices
                .iter()
                .filter(|(name, _)| {
                    !self.rogue_hosts.contains(*name) && !self.tee_faulted.contains(*name)
                })
                .filter_map(|(_, dev)| dev.tee.next_obligation_deadline())
                .min(),
        }
    }

    /// The next logical instant at which this world has internal work: the
    /// scheduler's next event or the next obligation deadline, whichever
    /// comes first. The wall-clock pacing loop mirrors this instant into a
    /// real timer (`duc-runtime`'s drive loop); sim-mode callers can keep
    /// using [`World::advance`] / [`World::run_until_idle`] directly.
    pub fn next_wakeup_at(&mut self) -> Option<duc_sim::SimTime> {
        match (self.sched.next_event_at(), self.next_obligation_deadline()) {
            (Some(event), Some(deadline)) => Some(event.min(deadline)),
            (event, deadline) => event.or(deadline),
        }
    }

    /// Mirrors every metric this world keeps — the sim registry's counters
    /// and histograms, per-method gas from the ledger, the TEE decision
    /// caches — into a shared [`duc_runtime::MetricsHub`], where the
    /// Prometheus endpoint and the bench report read them.
    ///
    /// Counter families keep their dotted registry names, normalised
    /// (`net.messages_sent` → `duc_net_messages_sent_total`); histograms
    /// gain a `_seconds` suffix and are re-bucketed from raw nanosecond
    /// samples. The mirror is idempotent: totals only ever rise
    /// (`counter_raise_to`) and histogram cells are replaced, so periodic
    /// exports and the final flush agree.
    pub fn export_metrics(&mut self, hub: &duc_runtime::MetricsHub) {
        // Network counters are delta-published into the registry on
        // demand; flush them first so the mirror below sees them.
        self.net.publish_metrics(&mut self.metrics);
        for (name, value) in self.metrics.counters() {
            hub.counter_raise_to(&duc_runtime::prom_name(name, "_total"), &[], value);
        }
        let names: Vec<String> = self.metrics.histogram_names().map(str::to_string).collect();
        for name in &names {
            if let Some(h) = self.metrics.histogram(name) {
                hub.mirror_histogram_nanos(
                    &duc_runtime::prom_name(name, "_seconds"),
                    &[],
                    h.samples(),
                );
            }
        }
        for ((contract, method), (calls, total, _max)) in self.chain.gas_by_method() {
            let labels = [("contract", contract.as_str()), ("method", method.as_str())];
            hub.counter_raise_to("duc_gas_calls_total", &labels, calls);
            hub.counter_raise_to("duc_gas_used_total", &labels, total);
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for (_, device) in self.devices.iter() {
            let (h, m) = device.tee.decision_cache_stats();
            hits += h;
            misses += m;
        }
        // World-state paging residency: gauges for what is resident *now*,
        // monotone counters for eviction/fault-in/compaction traffic. Read
        // from `Ledger::paging_stats()` and only ever surfaced here —
        // eviction order under the parallel executor is nondeterministic,
        // so these numbers must never enter the sim registry (and hence
        // the replay fingerprint).
        let paging = self.chain.paging_stats();
        hub.gauge_set(
            "duc_state_resident_pages",
            &[],
            paging.resident_pages as f64,
        );
        hub.gauge_set("duc_state_total_pages", &[], paging.total_pages as f64);
        hub.gauge_set(
            "duc_state_resident_bytes",
            &[],
            paging.resident_bytes as f64,
        );
        hub.gauge_set(
            "duc_state_spilled_live_bytes",
            &[],
            paging.spilled_live_bytes as f64,
        );
        hub.counter_raise_to("duc_state_evictions_total", &[], paging.evictions);
        hub.counter_raise_to("duc_state_fault_ins_total", &[], paging.fault_ins);
        hub.counter_raise_to("duc_state_page_compactions_total", &[], paging.compactions);
        hub.set_help(
            "duc_state_resident_pages",
            "World-state pages currently resident in memory.",
        );
        hub.set_help(
            "duc_state_resident_bytes",
            "Bytes of world-state slot data held by resident pages.",
        );
        hub.set_help(
            "duc_state_evictions_total",
            "World-state pages evicted to the spill store.",
        );
        hub.set_help(
            "duc_state_fault_ins_total",
            "World-state pages faulted back in from the spill store.",
        );
        hub.counter_raise_to("duc_tee_decision_cache_total", &[("result", "hit")], hits);
        hub.counter_raise_to(
            "duc_tee_decision_cache_total",
            &[("result", "miss")],
            misses,
        );
        hub.set_help(
            "duc_tee_decision_cache_total",
            "TEE usage-decision cache lookups by result.",
        );
        hub.set_help(
            "duc_gas_used_total",
            "Gas consumed by confirmed contract calls, by contract and method.",
        );
    }

    /// Runs every device's obligation sweep at the current instant (the
    /// TEEs' periodic timers; cf. ablation E11) and returns executed
    /// actions. Deletions also unregister the on-chain copy.
    ///
    /// The unregister confirmation is a *blocking* wait: it advances the
    /// shared clock up to one block. Drive in-flight driver requests to
    /// idle before sweeping (the wrappers and [`World::advance`] do) or
    /// their scheduled wakes fire late by the sweep's confirmation time.
    pub fn sweep_devices(&mut self) -> Vec<(String, duc_tee::EnforcementAction)> {
        let now = self.clock.now();
        let mut all = Vec::new();
        let mut pending = Vec::new();
        let mut names: Vec<String> = self
            .devices
            .keys()
            .filter(|n| !self.rogue_hosts.contains(*n) && !self.tee_faulted.contains(*n))
            .map(str::to_string)
            .collect();
        // Sorted: HashMap iteration order is per-process random, and the
        // unregister transactions below must land in the same order on
        // every identically-seeded run (byte-identical determinism).
        names.sort_unstable();
        for name in names {
            let device = self.devices.get_mut(&name).expect("key exists");
            let actions = match device.tee.sweep(now) {
                Ok(actions) => actions,
                Err(e) => {
                    // A damaged enclave state is permanent: record it and
                    // quarantine the device from the deadline poll, so the
                    // fault surfaces in metrics/trace instead of pinning
                    // the advance loop to the same overdue instant.
                    self.metrics.incr("enforcement.tee_faults");
                    self.tee_faulted.insert(name.clone());
                    self.trace
                        .record(now, format!("tee:{name}"), "tee.fault", e.to_string());
                    continue;
                }
            };
            for action in actions {
                if let duc_tee::EnforcementAction::Deleted { resource, .. } = &action {
                    self.metrics.incr("enforcement.deletions");
                    let tx =
                        self.dex
                            .unregister_copy_tx(&self.chain, &device.key, resource, &name, now);
                    if let Ok(id) = self.chain.submit(tx) {
                        pending.push(id);
                    }
                }
                all.push((name.clone(), action));
            }
        }
        // Confirm *every* unregistration before anything else (e.g. a
        // monitoring round) can race it within one block: awaiting only the
        // last id would let an earlier unregister tx that missed the block
        // slip past the barrier.
        for id in &pending {
            let _ = duc_oracle::await_inclusion(
                &mut self.chain,
                &self.clock,
                id,
                SimDuration::from_secs(120),
            );
        }
        self.sync_chain();
        all
    }

    /// Immutable owner lookup; `None` when the WebID is unknown. Internal
    /// callers that can legitimately see unknown ids (the driver validates
    /// requests against arbitrary input) use this instead of panicking.
    pub fn try_owner(&self, webid: &str) -> Option<&Owner> {
        self.owners.get(webid)
    }

    /// Immutable device lookup; `None` when the device name is unknown.
    pub fn try_device(&self, device: &str) -> Option<&Device> {
        self.devices.get(device)
    }

    /// Immutable owner lookup.
    ///
    /// # Panics
    /// Panics when the owner is unknown — worlds are built by the test or
    /// bench harness, so a missing participant is a harness bug. Use
    /// [`World::try_owner`] for ids that may legitimately be unknown.
    pub fn owner(&self, webid: &str) -> &Owner {
        self.try_owner(webid).expect("unknown owner webid")
    }

    /// Immutable device lookup.
    ///
    /// # Panics
    /// Panics when the device is unknown (harness bug). Use
    /// [`World::try_device`] for ids that may legitimately be unknown.
    pub fn device(&self, device: &str) -> &Device {
        self.try_device(device).expect("unknown device")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_boots_with_initialized_market() {
        let world = World::new(WorldConfig::default());
        assert!(world.chain.has_contract(&ContractId::new(DEX_CONTRACT_ID)));
        assert_eq!(world.chain.height(), 1, "genesis init block");
        assert!(world.dex.list_resources(&world.chain).unwrap().is_empty());
    }

    #[test]
    fn participants_get_funded_accounts_and_endpoints() {
        let mut world = World::new(WorldConfig::default());
        world.add_owner("https://alice.id/me", "https://alice.pod/");
        world.add_device("alice-laptop", "https://alice.id/me");
        let owner = world.owner("https://alice.id/me");
        assert!(
            world
                .chain
                .balance(&Address::from_public_key(&owner.key.public()))
                > 0
        );
        assert_eq!(
            world.net.endpoint_name(owner.endpoint),
            "pod-manager:https://alice.id/me"
        );
        let device = world.device("alice-laptop");
        assert_eq!(device.webid, "https://alice.id/me");
        assert!(device.certificate.is_none());
    }

    #[test]
    fn envelope_respects_privacy_configuration() {
        let plain_world = World::new(WorldConfig::default());
        let sealed_world = World::new(WorldConfig {
            encrypt_policies: true,
            ..WorldConfig::default()
        });
        let policy = UsagePolicy::default_for("urn:r", "urn:o");
        assert!(!plain_world.envelope(&policy).encrypted);
        let env = sealed_world.envelope(&policy);
        assert!(env.encrypted);
        assert_eq!(sealed_world.open_envelope(&env).unwrap(), policy);
        assert_eq!(
            plain_world
                .open_envelope(&plain_world.envelope(&policy))
                .unwrap(),
            policy
        );
    }

    #[test]
    fn advance_moves_clock_and_chain_together() {
        let mut world = World::new(WorldConfig::default());
        let t0 = world.clock.now();
        world.advance(SimDuration::from_secs(10));
        assert_eq!(world.clock.now(), t0 + SimDuration::from_secs(10));
        assert_eq!(world.chain.current_time(), world.clock.now());
    }
}
