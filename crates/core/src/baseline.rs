//! Comparison baselines (experiment E10).
//!
//! * [`PlainSolidBaseline`] — what Solid offers today: access control only.
//!   A consumer fetches the resource and the owner's control ends there: no
//!   copy registration, no policy propagation, no monitoring. Cheaper per
//!   access — and the measured difference *is* the price of usage control.
//! * [`CentralizedAuditBaseline`] — usage monitoring without blockchain or
//!   oracles: the owner polls every device directly. Fewer hops than the
//!   on-chain round, but evidence is neither signed into a tamper-proof
//!   ledger nor available to third parties, and the owner must know every
//!   copy-holder out of band (the trust gaps §V-2 attributes to
//!   centralized designs).

use duc_blockchain::Ledger;
use duc_crypto::sha256;
use duc_oracle::OracleError;
use duc_sim::SimDuration;
use duc_solid::{SolidRequest, Status};

use crate::process::ProcessError;
use crate::world::World;

/// Access-control-only Solid (no usage control).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainSolidBaseline;

impl PlainSolidBaseline {
    /// Fetches `path` from `owner_webid`'s pod for `device`, with plain
    /// ACL checking only. Returns the end-to-end latency.
    ///
    /// # Errors
    /// Fails on unknown participants, network loss, or an ACL denial.
    pub fn access<L: Ledger>(
        world: &mut World<L>,
        device: &str,
        owner_webid: &str,
        path: &str,
    ) -> Result<SimDuration, ProcessError> {
        let start = world.clock.now();
        let dev = world
            .devices
            .get(device)
            .ok_or_else(|| ProcessError::UnknownDevice(device.to_string()))?;
        let dev_endpoint = dev.endpoint;
        let webid = dev.webid.clone();
        let owner = world
            .owners
            .get(owner_webid)
            .ok_or_else(|| ProcessError::UnknownOwner(owner_webid.to_string()))?;
        let owner_endpoint = owner.endpoint;

        // Request hop. The baseline still authenticates (WebID) but there
        // is no certificate economy; a placeholder digest satisfies the
        // transport framing.
        let request = SolidRequest::get(webid, path).with_certificate(sha256(b"n/a"));
        let hop = world
            .net
            .transmit(
                dev_endpoint,
                owner_endpoint,
                request.size() as u64,
                &mut world.rng,
            )
            .delay()
            .ok_or(ProcessError::Oracle(OracleError::NetworkDropped))?;
        world.clock.advance(hop);

        let owner = world.owners.get_mut(owner_webid).expect("checked above");
        let accept_all = |_: &duc_crypto::Digest, _: &str| true;
        let resp = owner
            .pod_manager
            .handle_with_verifier(&request, &accept_all);
        if resp.status != Status::Ok {
            return Err(ProcessError::Solid {
                status: resp.status,
                detail: resp.detail,
            });
        }
        let hop_back = world
            .net
            .transmit(
                owner_endpoint,
                dev_endpoint,
                resp.size() as u64,
                &mut world.rng,
            )
            .delay()
            .ok_or(ProcessError::Oracle(OracleError::NetworkDropped))?;
        world.clock.advance(hop_back);

        let e2e = world.clock.now() - start;
        world.metrics.record("baseline.plain_solid.access", e2e);
        Ok(e2e)
    }
}

/// The result of one centralized audit sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentralizedAuditOutcome {
    /// Devices successfully polled.
    pub polled: usize,
    /// Devices that reported violations.
    pub violators: Vec<String>,
    /// Report bytes shipped.
    pub bytes: usize,
    /// Wall-clock duration.
    pub duration: SimDuration,
}

/// Usage monitoring by direct owner-to-device polling (no chain).
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedAuditBaseline;

impl CentralizedAuditBaseline {
    /// Polls `devices` about `path` directly from the owner's pod manager.
    ///
    /// # Errors
    /// Fails on unknown participants. Unreachable devices are skipped (and
    /// simply missing from the outcome — the baseline has no ledger to
    /// record the gap in, which is exactly its weakness).
    pub fn monitor<L: Ledger>(
        world: &mut World<L>,
        owner_webid: &str,
        path: &str,
        devices: &[String],
    ) -> Result<CentralizedAuditOutcome, ProcessError> {
        let start = world.clock.now();
        let owner = world
            .owners
            .get(owner_webid)
            .ok_or_else(|| ProcessError::UnknownOwner(owner_webid.to_string()))?;
        let owner_endpoint = owner.endpoint;
        let resource_iri = owner.pod_manager.pod().iri_of(path);

        let mut polled = 0usize;
        let mut violators = Vec::new();
        let mut bytes = 0usize;
        for name in devices {
            let Some(device) = world.devices.get(name) else {
                continue;
            };
            let dev_endpoint = device.endpoint;
            let Some(hop) = world
                .net
                .transmit(owner_endpoint, dev_endpoint, 128, &mut world.rng)
                .delay()
            else {
                continue;
            };
            world.clock.advance(hop);
            let Some(report) = device.tee.report(&resource_iri, world.clock.now()) else {
                continue;
            };
            let report_size = 128 + report.violations.iter().map(String::len).sum::<usize>();
            let Some(hop_back) = world
                .net
                .transmit(
                    dev_endpoint,
                    owner_endpoint,
                    report_size as u64,
                    &mut world.rng,
                )
                .delay()
            else {
                continue;
            };
            world.clock.advance(hop_back);
            polled += 1;
            bytes += report_size;
            if !report.compliant {
                violators.push(name.clone());
            }
        }
        let duration = world.clock.now() - start;
        world
            .metrics
            .record("baseline.central_audit.round", duration);
        Ok(CentralizedAuditOutcome {
            polled,
            violators,
            bytes,
            duration,
        })
    }
}
