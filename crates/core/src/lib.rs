//! # duc-core — the decentralized usage-control architecture
//!
//! This crate assembles every substrate into the architecture of the paper
//! (Fig. 1) and implements its six processes (Fig. 2):
//!
//! 1. **Pod initiation** — [`World::pod_initiation`]
//! 2. **Resource initiation** — [`World::resource_initiation`]
//! 3. **Resource indexing** — [`World::resource_indexing`]
//! 4. **Resource access** — [`World::resource_access`]
//! 5. **Policy modification** — [`World::policy_modification`]
//! 6. **Policy monitoring** — [`World::policy_monitoring`]
//!
//! A [`World`] is one simulated deployment: a ledger with the
//! DistExchange app, oracles in all four pattern quadrants, pod managers
//! for each data owner and TEE devices for each consumer, all wired over a
//! deterministic network model. Every process records end-to-end and
//! per-hop latencies plus gas into a [`duc_sim::MetricsRegistry`], which is
//! what the benchmark harness reports.
//!
//! The world is generic over its [`duc_blockchain::Ledger`] backend:
//! [`World::new`] runs the legacy single PoA chain, while
//! [`World::new_sharded`] runs the same deployment over a
//! [`duc_blockchain::ShardedLedger`] — N chains with deterministic
//! owner/contract routing, so concurrent requests from disjoint owners no
//! longer serialize through one mempool (experiment E13).
//!
//! The one-shot methods above are wrappers over the **non-blocking driver
//! API** ([`driver`]): [`World::submit`] enqueues a typed [`Request`] and
//! returns a [`Ticket`]; [`World::run_until_idle`] interleaves every
//! in-flight process hop-by-hop on the simulation scheduler; outcomes
//! surface via [`Ticket::poll`] / [`World::drain_events`].
//!
//! ## Example
//! ```
//! use duc_core::prelude::*;
//!
//! let mut world = World::new(WorldConfig::default());
//! world.add_owner("https://bob.id/me", "https://bob.pod/");
//! world.pod_initiation("https://bob.id/me")?;
//! # Ok::<(), duc_core::ProcessError>(())
//! ```

pub mod baseline;
pub mod chaos;
pub mod driver;
pub mod process;
pub mod runtime;
pub mod scenario;
pub mod world;

pub use driver::{Outcome, Request, Ticket};
pub use process::{AccessOutcome, MonitoringOutcome, ProcessError, PropagationOutcome};
pub use runtime::{
    market_world, outcome_key, outcome_set, run_scripted, run_wall, PacedWorld, RuntimeMode,
    RuntimeRun,
};
pub use world::{EnforcementMode, World, WorldConfig};

/// Common imports.
pub mod prelude {
    pub use crate::baseline::{self, CentralizedAuditBaseline, PlainSolidBaseline};
    pub use crate::chaos;
    pub use crate::driver::{Outcome, Request, Ticket};
    pub use crate::process::{AccessOutcome, MonitoringOutcome, ProcessError, PropagationOutcome};
    pub use crate::runtime::{outcome_set, run_scripted, RuntimeMode, RuntimeRun};
    pub use crate::scenario;
    pub use crate::world::{EnforcementMode, World, WorldConfig};
    pub use duc_policy::prelude::*;
    pub use duc_runtime::{DriveConfig, MetricsHub, MetricsServer, ShutdownSignal};
    pub use duc_sim::{SimDuration, SimTime};
}
