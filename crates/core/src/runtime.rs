//! Execution modes: one [`World`], two clocks.
//!
//! The driver's state machines only ever observe logical [`SimTime`];
//! this module adapts a [`World`] to `duc-runtime`'s clock-generic drive
//! loop so the *same* machines run either deterministically
//! ([`RuntimeMode::Sim`]) or on real time ([`RuntimeMode::Wall`], with
//! optional time compression). A scripted run admits [`Request`]s at
//! absolute logical instants; wall mode additionally accepts live
//! injection from producer threads through a
//! [`WallHandle`](duc_runtime::WallHandle).
//!
//! Outcomes are compared across modes with [`outcome_key`], which
//! deliberately ignores every timing-derived field: wall-clock jitter
//! shifts *when* a process runs, never *what* it decides.

use duc_blockchain::Ledger;
use duc_runtime::{
    drive, DriveConfig, DriveReport, MetricsHub, ShutdownSignal, SimClock, Tick, WallClock,
    WallHandle, Workload,
};
use duc_sim::SimTime;

use crate::driver::{Outcome, Request, Ticket};
use crate::process::ProcessError;
use crate::world::World;

/// Which clock drives the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Deterministic discrete-event execution (the default everywhere
    /// else in this repository); logical time hops instantly.
    Sim,
    /// Real-time execution on a [`WallClock`]: one logical second takes
    /// `1/scale` real seconds. `scale: 1` is true wall-clock pace.
    Wall {
        /// Time-compression factor (logical seconds per real second).
        scale: u64,
    },
}

/// What a scripted runtime-mode run produced.
#[derive(Debug)]
pub struct RuntimeRun {
    /// The drive loop's accounting (admissions, wakeups, drain status).
    pub report: DriveReport,
    /// Every completed outcome, in completion order.
    pub outcomes: Vec<(Ticket, Result<Outcome, ProcessError>)>,
}

/// [`Workload`] adapter pacing a [`World`] on any [`Clock`](duc_runtime::Clock).
///
/// `pace(now)` advances the world by the logical delta since its own
/// clock (zero in sim mode, where the [`SimClock`] shares the world's
/// time cell) and collects completions; `next_due` exposes
/// [`World::next_wakeup_at`] so the drive loop mirrors the world's
/// internal event queue into a single re-armable timer.
pub struct PacedWorld<'w, L: Ledger = duc_blockchain::Blockchain> {
    world: &'w mut World<L>,
    hub: Option<MetricsHub>,
    outcomes: Vec<(Ticket, Result<Outcome, ProcessError>)>,
}

impl<'w, L: Ledger> PacedWorld<'w, L> {
    /// Wraps a world; `hub` receives metric exports when given.
    pub fn new(world: &'w mut World<L>, hub: Option<MetricsHub>) -> Self {
        PacedWorld {
            world,
            hub,
            outcomes: Vec::new(),
        }
    }

    /// Consumes the adapter, returning the collected outcomes.
    pub fn into_outcomes(self) -> Vec<(Ticket, Result<Outcome, ProcessError>)> {
        self.outcomes
    }
}

impl<L: Ledger> Workload for PacedWorld<'_, L> {
    type Cmd = Request;

    fn admit(&mut self, cmd: Request) {
        self.world.submit(cmd);
    }

    fn pace(&mut self, now: SimTime) {
        let behind = now.saturating_since(self.world.clock.now());
        self.world.advance(behind);
        self.outcomes.extend(self.world.drain_events());
    }

    fn next_due(&mut self) -> Option<SimTime> {
        self.world.next_wakeup_at()
    }

    fn in_flight(&self) -> usize {
        self.world.in_flight()
    }

    fn export(&mut self) {
        if let Some(hub) = &self.hub {
            let hub = hub.clone();
            self.world.export_metrics(&hub);
        }
    }
}

/// Runs a scripted workload — [`Request`]s admitted at absolute logical
/// instants — to completion under `mode`, collecting every outcome.
///
/// In sim mode the [`SimClock`] shares the world's time cell, so this is
/// exactly the classic submit/advance loop; in wall mode the same script
/// replays against real time (compressed by `scale`) on the calling
/// thread, with the world's internal events paced by a timer thread.
pub fn run_scripted<L: Ledger>(
    world: &mut World<L>,
    script: Vec<(SimTime, Request)>,
    mode: RuntimeMode,
    hub: Option<MetricsHub>,
    shutdown: &ShutdownSignal,
    config: &DriveConfig,
) -> RuntimeRun {
    match mode {
        RuntimeMode::Sim => {
            let mut clock: SimClock<Tick<Request>> = SimClock::new(world.clock.clone());
            let mut paced = PacedWorld::new(world, hub);
            let report = drive(&mut clock, &mut paced, script, shutdown, config);
            RuntimeRun {
                report,
                outcomes: paced.into_outcomes(),
            }
        }
        RuntimeMode::Wall { scale } => {
            run_wall(world, script, scale, hub, shutdown, config, |_handle| {
                Vec::new()
            })
        }
    }
}

/// Wall-clock run with live producers: `spawn_producers` receives a
/// [`WallHandle`](duc_runtime::WallHandle) for injecting requests from
/// other threads and returns their join handles, which are joined after
/// the drive loop exits. The loop keeps waiting while any producer still
/// holds a handle clone, so late injections are never lost — they are
/// admitted (or, after a shutdown request, counted as rejected).
pub fn run_wall<L, F>(
    world: &mut World<L>,
    script: Vec<(SimTime, Request)>,
    scale: u64,
    hub: Option<MetricsHub>,
    shutdown: &ShutdownSignal,
    config: &DriveConfig,
    spawn_producers: F,
) -> RuntimeRun
where
    L: Ledger,
    F: FnOnce(WallHandle<Tick<Request>>) -> Vec<std::thread::JoinHandle<()>>,
{
    let mut clock: WallClock<Tick<Request>> = WallClock::with_scale(world.clock.now(), scale);
    let producers = spawn_producers(clock.handle());
    let mut paced = PacedWorld::new(world, hub);
    let report = drive(&mut clock, &mut paced, script, shutdown, config);
    for producer in producers {
        let _ = producer.join();
    }
    RuntimeRun {
        report,
        outcomes: paced.into_outcomes(),
    }
}

/// The concurrent-market workload shared by the E18 gate, the
/// runtime-mode tests and the `concurrent_market --wall-clock` example:
/// one owner with two datasets, `devices` consumer devices that all
/// subscribe, index and fetch both resources, then two monitoring rounds.
///
/// The survey dataset carries a 90-second retention, so its copies are
/// deleted by the TEEs *during* the run — the obligation wakeups land
/// between the access wave and the monitoring rounds, exercising the
/// enforcement path (and its metrics) in both execution modes. Script
/// instants are spaced so that each phase completes with a wide logical
/// margin before the next begins; wall-clock jitter would need to exceed
/// that margin (tens of logical seconds) to reorder phases.
pub fn market_world(devices: usize, seed: u64) -> (World, Vec<(SimTime, Request)>) {
    use duc_policy::{Action, Constraint, Duty, Rule, UsagePolicy};
    use duc_sim::SimDuration;
    use duc_solid::Body;

    const OWNER: &str = "https://owner.id/me";
    let mut world = World::new(crate::world::WorldConfig {
        seed,
        ..Default::default()
    });
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..devices {
        world.add_device(format!("device-{i}"), format!("https://consumer-{i}.id/me"));
    }
    world.pod_initiation(OWNER).expect("pod initiation");
    let mut resources = Vec::new();
    for (path, retention) in [
        ("data/telemetry.csv", SimDuration::from_days(30)),
        ("data/survey.csv", SimDuration::from_secs(90)),
    ] {
        let iri = world.owner(OWNER).pod_manager.pod().iri_of(path);
        let policy = UsagePolicy::builder(format!("{iri}#policy"), &iri, OWNER)
            .permit(
                Rule::permit([Action::Use]).with_constraint(Constraint::MaxRetention(retention)),
            )
            .duty(Duty::DeleteWithin(retention))
            .duty(Duty::LogAccesses)
            .build();
        let resource = world
            .resource_initiation(
                OWNER,
                path,
                Body::Text("ts,value\n".repeat(256)),
                policy,
                vec![("domain".into(), "iot".into())],
            )
            .expect("resource initiation");
        resources.push(resource);
    }

    let t0 = world.clock.now();
    let mut script = Vec::new();
    for i in 0..devices {
        script.push((
            t0 + SimDuration::from_millis(200 * i as u64),
            Request::MarketSubscribe {
                device: format!("device-{i}"),
            },
        ));
        for (j, resource) in resources.iter().enumerate() {
            script.push((
                t0 + SimDuration::from_secs(8) + SimDuration::from_millis(200 * (2 * i + j) as u64),
                Request::ResourceIndexing {
                    device: format!("device-{i}"),
                    resource: resource.clone(),
                },
            ));
            script.push((
                t0 + SimDuration::from_secs(40)
                    + SimDuration::from_millis(250 * (2 * i + j) as u64),
                Request::ResourceAccess {
                    device: format!("device-{i}"),
                    resource: resource.clone(),
                },
            ));
        }
    }
    // Monitoring runs after the survey copies' 90 s retention has lapsed
    // (their deletions land around t0+130 s), so each round observes the
    // same post-enforcement market in both modes.
    for (j, path) in ["data/telemetry.csv", "data/survey.csv"].iter().enumerate() {
        script.push((
            t0 + SimDuration::from_secs(180 + 2 * j as u64),
            Request::PolicyMonitoring {
                webid: OWNER.into(),
                path: (*path).into(),
            },
        ));
    }
    (world, script)
}

/// Canonical timing-free identity of an outcome, for cross-mode
/// comparison: what a process decided and delivered, never when. Latency
/// fields, certificates (bound to validity windows), block numbers and
/// gas are all excluded; counts and identities are kept.
pub fn outcome_key(result: &Result<Outcome, ProcessError>) -> String {
    match result {
        Ok(Outcome::PodInitiated { webid }) => format!("pod_initiated:{webid}"),
        Ok(Outcome::ResourceInitiated { resource }) => format!("resource_initiated:{resource}"),
        Ok(Outcome::Indexed { entry }) => {
            format!("indexed:{}:{}", entry.owner_webid, entry.location)
        }
        Ok(Outcome::Subscribed { .. }) => "subscribed".to_string(),
        Ok(Outcome::Accessed(access)) => format!("accessed:{}b", access.bytes),
        Ok(Outcome::PolicyPropagated(p)) => format!(
            "policy_propagated:v{}:{}notified:{}enforced",
            p.version,
            p.devices_notified,
            p.enforcement.len()
        ),
        Ok(Outcome::Monitored(m)) => {
            let mut violators = m.violators.clone();
            violators.sort_unstable();
            format!(
                "monitored:r{}:{}/{}:{:?}",
                m.round, m.evidence, m.expected, violators
            )
        }
        Ok(Outcome::ObligationsEnforced {
            device,
            resource,
            deleted,
        }) => format!("obligations_enforced:{device}:{resource}:{deleted}"),
        Err(e) => format!("error:{e}"),
    }
}

/// Sorted multiset of [`outcome_key`]s — the cross-mode equivalence
/// fingerprint (completion *order* is timing, so it is not part of it).
pub fn outcome_set(outcomes: &[(Ticket, Result<Outcome, ProcessError>)]) -> Vec<String> {
    let mut keys: Vec<String> = outcomes.iter().map(|(_, r)| outcome_key(r)).collect();
    keys.sort_unstable();
    keys
}

// Wall mode moves scripted requests across threads (consumer loop + timer
// thread + producers); this pins the requirement at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Request>();
};
