//! The motivating use-case scenario (paper §II), executable end to end.
//!
//! Alice and Bob join the data market; Bob trades medical data restricted
//! to medical purposes, Alice trades browsing data with a one-month
//! retention that she later tightens to one week; Bob's copy is erased when
//! the shorter deadline lapses, while Alice — whose application serves a
//! university hospital — retains access to Bob's data when he narrows its
//! purpose to academic pursuits.

use std::collections::BTreeSet;

use duc_blockchain::{Ledger, TxId};
use duc_contracts::{topics, DistExchangeClient};
use duc_policy::{
    AclMode, Action, AgentSpec, Authorization, Constraint, Duty, Purpose, Rule, UsagePolicy,
};
use duc_sim::SimDuration;
use duc_solid::{Body, SolidRequest};
use duc_tee::EnforcementAction;

use crate::driver::Request;
use crate::process::{MonitoringOutcome, ProcessError};
use crate::world::{IndexEntry, World, WorldConfig};

/// Alice's WebID.
pub const ALICE: &str = "https://alice.id/me";
/// Bob's WebID.
pub const BOB: &str = "https://bob.id/me";
/// Alice's device.
pub const ALICE_DEVICE: &str = "alice-laptop";
/// Bob's device.
pub const BOB_DEVICE: &str = "bob-workstation";
/// Path of Bob's medical dataset in his pod.
pub const MEDICAL_PATH: &str = "data/medical.ttl";
/// Path of Alice's browsing dataset in her pod.
pub const BROWSING_PATH: &str = "data/browsing.csv";

/// What happened in a full scenario run (the integration tests and the
/// quickstart example assert on these fields).
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// IRI of Bob's medical resource.
    pub medical_iri: String,
    /// IRI of Alice's browsing resource.
    pub browsing_iri: String,
    /// Bytes Alice retrieved from Bob's pod.
    pub alice_got_bytes: usize,
    /// Bytes Bob retrieved from Alice's pod.
    pub bob_got_bytes: usize,
    /// Whether Bob's copy of the browsing data was deleted by his TEE
    /// after Alice tightened the retention to one week.
    pub bob_copy_deleted: bool,
    /// Whether Alice could still use Bob's medical data after he narrowed
    /// the allowed purpose to academic pursuits.
    pub alice_still_permitted: bool,
    /// Monitoring outcome for Alice's browsing resource.
    pub browsing_monitoring: MonitoringOutcome,
    /// Monitoring outcome for Bob's medical resource.
    pub medical_monitoring: MonitoringOutcome,
    /// Total gas spent across the run.
    pub total_gas: u64,
}

/// Builds the two-party world of §II.
pub fn build_world(config: WorldConfig) -> World {
    let mut world = World::new(config);
    populate(&mut world);
    world
}

/// Registers the two owners and two devices of §II on any backend (the
/// conformance suite runs the scenario against every [`Ledger`]).
pub fn populate<L: Ledger>(world: &mut World<L>) {
    world.add_owner(ALICE, "https://alice.pod/");
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device(ALICE_DEVICE, ALICE);
    world.add_device(BOB_DEVICE, BOB);
}

/// Bob's medical policy: use for medical purposes only; log accesses.
pub fn medical_policy(resource_iri: &str) -> UsagePolicy {
    UsagePolicy::builder(format!("{resource_iri}#policy"), resource_iri, BOB)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")])),
        )
        .rule(Rule::prohibit([Action::Distribute]))
        .duty(Duty::LogAccesses)
        .build()
}

/// Alice's browsing policy: keep at most `retention_days`, then delete.
pub fn browsing_policy(resource_iri: &str, retention_days: u64) -> UsagePolicy {
    UsagePolicy::builder(format!("{resource_iri}#policy"), resource_iri, ALICE)
        .permit(
            Rule::permit([Action::Use]).with_constraint(Constraint::MaxRetention(
                SimDuration::from_days(retention_days),
            )),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(retention_days)))
        .duty(Duty::LogAccesses)
        .build()
}

/// Runs the full §II scenario on `world`.
///
/// # Errors
/// Propagates the first process failure (a fault-free default world runs
/// cleanly; fault-injected worlds may legitimately fail here).
pub fn run<L: Ledger>(world: &mut World<L>) -> Result<ScenarioReport, ProcessError> {
    // --- Registration (process 1 for both owners).
    world.pod_initiation(ALICE)?;
    world.pod_initiation(BOB)?;

    // --- Resource initiation (process 2).
    let medical_iri = {
        let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
        let policy = medical_policy(&iri);
        world.resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Turtle(
                "@prefix duc: <https://w3id.org/duc/ns#> .\n\
                 <urn:dataset:medical> duc:registeredAt 1 .\n"
                    .into(),
            ),
            policy,
            vec![("domain".into(), "health".into())],
        )?
    };
    let browsing_iri = {
        let iri = world.owner(ALICE).pod_manager.pod().iri_of(BROWSING_PATH);
        let policy = browsing_policy(&iri, 30);
        world.resource_initiation(
            ALICE,
            BROWSING_PATH,
            Body::Text("url,timestamp\nexample.org,100\n".repeat(16)),
            policy,
            vec![("domain".into(), "web-analytics".into())],
        )?
    };

    // --- Market subscriptions and discovery (process 3).
    world.market_subscribe(ALICE_DEVICE)?;
    world.market_subscribe(BOB_DEVICE)?;
    world.resource_indexing(ALICE_DEVICE, &medical_iri)?;
    world.resource_indexing(BOB_DEVICE, &browsing_iri)?;

    // --- Resource access (process 4).
    let alice_got = world.resource_access(ALICE_DEVICE, &medical_iri)?;
    let bob_got = world.resource_access(BOB_DEVICE, &browsing_iri)?;

    // Alice works with Bob's data inside her TEE (for a university
    // hospital, i.e. both medical and academic research).
    {
        let device = world.devices.get_mut(ALICE_DEVICE).expect("alice device");
        device
            .tee
            .access(
                &medical_iri,
                Action::Read,
                Purpose::new("university-hospital-research"),
                world.clock.now(),
            )
            .map_err(|e| ProcessError::Policy(e.to_string()))?;
    }

    // --- Two days pass; Alice tightens retention to one week, Bob narrows
    // --- his purpose to academic pursuits (process 5, twice).
    world.advance(SimDuration::from_days(2));
    let tightened = world.policy_modification(
        ALICE,
        BROWSING_PATH,
        vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
        vec![
            Duty::DeleteWithin(SimDuration::from_days(7)),
            Duty::LogAccesses,
        ],
    )?;
    debug_assert_eq!(tightened.version, 2);
    world.policy_modification(
        BOB,
        MEDICAL_PATH,
        vec![
            Rule::permit([Action::Use])
                .with_constraint(Constraint::Purpose(vec![Purpose::new("academic")])),
            Rule::prohibit([Action::Distribute]),
        ],
        vec![Duty::LogAccesses],
    )?;

    // Alice's access grant survives: her purpose is academic *and* medical.
    let alice_still_permitted = {
        let device = world.devices.get_mut(ALICE_DEVICE).expect("alice device");
        device
            .tee
            .access(
                &medical_iri,
                Action::Read,
                Purpose::new("university-hospital-research"),
                world.clock.now(),
            )
            .is_ok()
    };

    // --- Six more days: Bob's copy (now 8 days old) crosses the one-week
    // --- retention bound; his TEE timer erases it.
    world.advance(SimDuration::from_days(6));
    let actions = world.sweep_devices();
    let bob_copy_deleted = actions.iter().any(|(device, action)| {
        device == BOB_DEVICE
            && matches!(
                action,
                EnforcementAction::Deleted { resource, .. } if resource == &browsing_iri
            )
    }) || !world.device(BOB_DEVICE).tee.has_copy(&browsing_iri);

    // --- Monitoring (process 6) on both resources.
    let browsing_monitoring = world.policy_monitoring(ALICE, BROWSING_PATH)?;
    let medical_monitoring = world.policy_monitoring(BOB, MEDICAL_PATH)?;

    let total_gas: u64 = world.chain.gas_used_total();
    Ok(ScenarioReport {
        medical_iri,
        browsing_iri,
        alice_got_bytes: alice_got.bytes,
        bob_got_bytes: bob_got.bytes,
        bob_copy_deleted,
        alice_still_permitted,
        browsing_monitoring,
        medical_monitoring,
        total_gas,
    })
}

// ------------------------------------------------------------- population

/// Pod path of every population resource.
pub const POPULATION_PATH: &str = "data/set.bin";

/// Submission chunk for the bulk direct-transaction setup: comfortably
/// below the chain's 10 000-entry mempool bound.
const FLUSH_CHUNK: usize = 4_096;

/// A synthetic market population (experiment E15): `owners` pods with one
/// resource each, `devices_per_owner` subscribed consumer devices,
/// Zipf-skewed resource popularity, bursty access waves and device churn
/// between waves. All randomness comes from the world's seeded RNG, so a
/// population run replays byte-identically.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// Number of pod owners; each registers exactly one resource.
    pub owners: usize,
    /// Consumer devices enrolled per owner.
    pub devices_per_owner: usize,
    /// Body size of every resource, in bytes.
    pub body_bytes: usize,
    /// Retention bound of every policy, in days.
    pub retention_days: u64,
    /// Zipf exponent of resource popularity (rank 0 is the hottest).
    pub zipf_s: f64,
    /// Number of bursty access waves.
    pub waves: usize,
    /// Concurrent accesses submitted per wave.
    pub accesses_per_wave: usize,
    /// Devices retired and replaced between consecutive waves.
    pub churn_per_wave: usize,
    /// Mean think-time between waves (exponentially distributed).
    pub mean_wave_gap: SimDuration,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        PopulationSpec {
            owners: 100,
            devices_per_owner: 1,
            body_bytes: 256,
            retention_days: 30,
            zipf_s: 1.1,
            waves: 3,
            accesses_per_wave: 128,
            churn_per_wave: 4,
            mean_wave_gap: SimDuration::from_millis(500),
        }
    }
}

/// A generated population: owner WebIDs and resource IRIs are
/// index-aligned (index = popularity rank), `devices` is the live consumer
/// fleet (churn retires from the front, enrolls at the back).
#[derive(Debug, Clone)]
pub struct Population {
    /// Owner WebIDs by popularity rank.
    pub owners: Vec<String>,
    /// Resource IRIs by popularity rank.
    pub resources: Vec<String>,
    /// Live consumer devices.
    pub devices: Vec<String>,
    /// Devices ever enrolled (names stay unique across churn).
    spawned: usize,
}

/// What the wave-driven workload did (E15 reports these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationRunReport {
    /// Access requests submitted across every wave.
    pub requests: usize,
    /// Requests that completed successfully.
    pub ok: usize,
    /// Devices retired and replaced between waves.
    pub churned: usize,
    /// Simulated time from first wave to last completion.
    pub makespan: SimDuration,
}

/// The population's per-resource policy: use permitted under a
/// `retention_days` retention bound, deletion owed at the deadline.
pub fn population_policy(resource_iri: &str, owner: &str, retention_days: u64) -> UsagePolicy {
    UsagePolicy::builder(format!("{resource_iri}#policy"), resource_iri, owner)
        .permit(
            Rule::permit([Action::Use]).with_constraint(Constraint::MaxRetention(
                SimDuration::from_days(retention_days),
            )),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(retention_days)))
        .duty(Duty::LogAccesses)
        .build()
}

/// Seals every block needed to drain the mempool.
fn drain_mempool<L: Ledger>(world: &mut World<L>) {
    while world.chain.pending_count() > 0 {
        world.advance(SimDuration::from_secs(2));
    }
}

/// Builds a population at market scale. Pods, resources and subscriptions
/// are registered through *direct* transactions (the driver's processes 1,
/// 2 and the subscription, minus their per-party network round-trips),
/// chunk-flushed under the mempool bound — the measured workload is
/// [`run_population`], not the bulk enrolment.
pub fn populate_population<L: Ledger>(world: &mut World<L>, spec: &PopulationSpec) -> Population {
    assert!(spec.owners > 0, "population needs at least one owner");
    let owner_webid = |o: usize| format!("https://p{o}.id/me");
    for o in 0..spec.owners {
        world.add_owner(owner_webid(o), format!("https://p{o}.pod/"));
    }

    // Pass 1 — register every pod (process 1, direct).
    for o in 0..spec.owners {
        let webid = owner_webid(o);
        let (root, key, endpoint) = {
            let owner = world.owners.get(&webid).expect("just added");
            (
                owner.pod_manager.pod().root().to_string(),
                owner.key,
                owner.endpoint,
            )
        };
        let default_policy = UsagePolicy::default_for(root.clone(), &webid);
        world
            .owners
            .get_mut(&webid)
            .expect("just added")
            .pod_manager
            .set_policy("", default_policy.clone());
        let env = world.envelope(&default_policy);
        let tx = world
            .dex
            .register_pod_tx(&world.chain, &key, &webid, &root, env);
        world.chain.submit(tx).expect("pod tx fits the mempool");
        world.push_out.subscribe(topics::ROUND_CLOSED, endpoint);
        if (o + 1) % FLUSH_CHUNK == 0 {
            drain_mempool(world);
        }
    }
    drain_mempool(world);
    for o in 0..spec.owners {
        world
            .owners
            .get_mut(&owner_webid(o))
            .expect("added")
            .pod_registered = true;
    }

    // Pass 2 — upload every body, attach its policy, open the market ACL
    // and register the resource (process 2, direct).
    let mut resources = Vec::with_capacity(spec.owners);
    for o in 0..spec.owners {
        let webid = owner_webid(o);
        let (iri, policy, key) = {
            let owner = world.owners.get_mut(&webid).expect("added");
            let put = SolidRequest::put(webid.clone(), POPULATION_PATH)
                .with_body(Body::Binary(vec![0xA5; spec.body_bytes]));
            let resp = owner.pod_manager.handle(&put);
            assert!(resp.status.is_success(), "population PUT succeeds");
            let iri = owner.pod_manager.pod().iri_of(POPULATION_PATH);
            let policy = population_policy(&iri, &webid, spec.retention_days);
            owner
                .pod_manager
                .set_policy(POPULATION_PATH, policy.clone());
            let mut acl = owner.pod_manager.acl().clone();
            acl.push(Authorization::for_resource(
                format!("market-readers-{POPULATION_PATH}"),
                iri.clone(),
                vec![AgentSpec::AuthenticatedAgent],
                vec![AclMode::Read],
            ));
            owner.pod_manager.set_acl(acl);
            owner.pod_manager.set_require_certificate(true);
            (iri, policy, owner.key)
        };
        let env = world.envelope(&policy);
        let tx =
            world
                .dex
                .register_resource_tx(&world.chain, &key, &iri, &iri, &webid, vec![], env);
        world
            .chain
            .submit(tx)
            .expect("resource tx fits the mempool");
        resources.push(iri);
        if (o + 1) % FLUSH_CHUNK == 0 {
            drain_mempool(world);
        }
    }
    drain_mempool(world);

    let mut pop = Population {
        owners: (0..spec.owners).map(owner_webid).collect(),
        resources,
        devices: Vec::with_capacity(spec.owners * spec.devices_per_owner),
        spawned: 0,
    };
    enroll_devices(world, &mut pop, spec.owners * spec.devices_per_owner);

    debug_assert!(
        world
            .dex
            .get_pod(&world.chain, pop.owners.last().expect("nonempty"))
            .expect("view")
            .is_some(),
        "last pod registered on-chain"
    );
    pop
}

/// Enrolls `count` fresh consumer devices: funded account, direct
/// subscription transaction, market certificate installed from the
/// receipt. Used by the initial build-out and by inter-wave churn.
fn enroll_devices<L: Ledger>(world: &mut World<L>, pop: &mut Population, count: usize) {
    let mut pending: Vec<(String, TxId)> = Vec::with_capacity(count.min(FLUSH_CHUNK));
    for _ in 0..count {
        let n = pop.spawned;
        pop.spawned += 1;
        let name = format!("pop-dev-{n}");
        world.add_device(name.clone(), format!("https://pd{n}.id/me"));
        let (key, webid) = {
            let dev = world.device(&name);
            (dev.key, dev.webid.clone())
        };
        let tx = world.dex.subscribe_tx(&world.chain, &key, &webid);
        let id = world
            .chain
            .submit(tx)
            .expect("subscribe tx fits the mempool");
        pending.push((name, id));
        if pending.len() == FLUSH_CHUNK {
            certify_enrolled(world, pop, &mut pending);
        }
    }
    certify_enrolled(world, pop, &mut pending);
}

/// Drains the mempool and installs the market certificate of every pending
/// subscription, moving the devices into the live fleet.
///
/// Receipts are harvested *while* the chunk drains, not after: a pruning
/// chain ([`crate::world::WorldConfig::storage`]) evicts receipts together
/// with their blocks, and a chunk can span far more blocks than the
/// resident window. Harvesting per block reads every receipt within one
/// block interval of sealing; the certificates are then installed in the
/// original submission order, so the fleet order — and everything drawn
/// from it — is byte-identical to the drain-then-read path.
fn certify_enrolled<L: Ledger>(
    world: &mut World<L>,
    pop: &mut Population,
    pending: &mut Vec<(String, TxId)>,
) {
    let mut harvested: std::collections::HashMap<TxId, duc_blockchain::Receipt> =
        std::collections::HashMap::with_capacity(pending.len());
    loop {
        for (_, id) in pending.iter() {
            if !harvested.contains_key(id) {
                if let Some(receipt) = world.chain.receipt(id) {
                    harvested.insert(*id, receipt.clone());
                }
            }
        }
        if world.chain.pending_count() == 0 {
            break;
        }
        world.advance(SimDuration::from_secs(2));
    }
    for (name, id) in pending.drain(..) {
        let receipt = harvested.get(&id).expect("subscription included");
        let cert = DistExchangeClient::decode_certificate(&receipt.return_data)
            .expect("subscription certificate");
        world
            .devices
            .get_mut(&name)
            .expect("just added")
            .certificate = Some(cert);
        pop.devices.push(name);
    }
}

/// Hands `device` the pull-out oracle's answer for rank `rank` directly
/// (the entry the driver's process 3 would fetch over two relay hops), so
/// a wave can start from a cold index without serializing 10⁴ lookups.
fn index_direct<L: Ledger>(world: &mut World<L>, pop: &Population, device: &str, rank: usize) {
    let iri = &pop.resources[rank];
    if world.device(device).indexed.contains_key(iri) {
        return;
    }
    let webid = &pop.owners[rank];
    let policy = world
        .owner(webid)
        .pod_manager
        .policy_for(POPULATION_PATH)
        .expect("population policy attached")
        .clone();
    let entry = IndexEntry {
        location: iri.clone(),
        owner_webid: webid.clone(),
        policy,
    };
    world
        .devices
        .get_mut(device)
        .expect("live device")
        .indexed
        .insert(iri, entry);
}

/// Drives the wave-based population workload: per wave, a burst of
/// concurrent resource accesses with Zipf-ranked resource choice and
/// uniformly drawn live devices; between waves, exponential think time and
/// device churn (the oldest devices retire, replacements enroll and
/// subscribe). Requests run through the concurrent driver.
pub fn run_population<L: Ledger>(
    world: &mut World<L>,
    pop: &mut Population,
    spec: &PopulationSpec,
) -> PopulationRunReport {
    let t0 = world.clock.now();
    let (mut requests, mut ok, mut churned) = (0usize, 0usize, 0usize);
    for wave in 0..spec.waves {
        if wave > 0 {
            // Bursty arrivals: exponentially distributed inter-wave gap.
            let gap_ms = world
                .rng
                .gen_exponential(spec.mean_wave_gap.as_millis_f64());
            world.advance(SimDuration::from_millis(gap_ms as u64 + 1));
            // Churn: retire from the front, enroll fresh subscribers. The
            // retired devices stay in the world (their TEE copies keep
            // their obligations) but stop driving load.
            let churn = spec.churn_per_wave.min(pop.devices.len().saturating_sub(1));
            pop.devices.drain(..churn);
            enroll_devices(world, pop, churn);
            churned += churn;
        }
        // One burst: distinct (device, resource) pairs, Zipf-skewed over
        // resource ranks, uniform over the live fleet.
        let mut picks: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut attempts = 0;
        while picks.len() < spec.accesses_per_wave && attempts < spec.accesses_per_wave * 8 {
            attempts += 1;
            let rank = world.rng.gen_zipf(pop.resources.len(), spec.zipf_s);
            let dev = world.rng.gen_range(pop.devices.len() as u64) as usize;
            picks.insert((dev, rank));
        }
        for (dev, rank) in &picks {
            let device = pop.devices[*dev].clone();
            index_direct(world, pop, &device, *rank);
        }
        let tickets: Vec<crate::Ticket> = picks
            .iter()
            .map(|(dev, rank)| {
                world.submit(Request::ResourceAccess {
                    device: pop.devices[*dev].clone(),
                    resource: pop.resources[*rank].clone(),
                })
            })
            .collect();
        requests += tickets.len();
        world.run_until_idle();
        ok += tickets
            .into_iter()
            .filter(|t| matches!(t.poll(world), Some(Ok(_))))
            .count();
    }
    PopulationRunReport {
        requests,
        ok,
        churned,
        makespan: world.clock.now() - t0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_motivating_scenario_plays_out() {
        let mut world = build_world(WorldConfig::default());
        let report = run(&mut world).expect("fault-free run succeeds");

        assert!(report.alice_got_bytes > 0);
        assert!(report.bob_got_bytes > 0);
        assert!(
            report.bob_copy_deleted,
            "retention tightening erased Bob's copy"
        );
        assert!(
            report.alice_still_permitted,
            "university-hospital research satisfies the academic narrowing"
        );
        // Bob's device deleted the copy on time → compliant; the round
        // may have zero expected devices (copy unregistered) or report a
        // compliant device.
        assert!(report.browsing_monitoring.violators.is_empty());
        assert!(report.medical_monitoring.violators.is_empty());
        assert_eq!(
            report.medical_monitoring.evidence,
            report.medical_monitoring.expected
        );
        assert!(report.total_gas > 0);
    }

    #[test]
    fn scenario_is_deterministic_across_runs() {
        let run_once = |seed: u64| {
            let mut world = build_world(WorldConfig {
                seed,
                ..WorldConfig::default()
            });
            let report = run(&mut world).expect("runs");
            (
                report.total_gas,
                world.clock.now(),
                report.alice_got_bytes,
                report.browsing_monitoring.duration,
            )
        };
        assert_eq!(run_once(7), run_once(7), "same seed, same trajectory");
    }

    fn small_spec() -> PopulationSpec {
        PopulationSpec {
            owners: 6,
            devices_per_owner: 2,
            waves: 2,
            accesses_per_wave: 8,
            churn_per_wave: 2,
            ..PopulationSpec::default()
        }
    }

    #[test]
    fn population_builds_and_every_access_succeeds() {
        let spec = small_spec();
        let mut world = World::new(WorldConfig {
            seed: 15,
            ..WorldConfig::default()
        });
        let mut pop = populate_population(&mut world, &spec);
        assert_eq!(pop.resources.len(), 6);
        assert_eq!(pop.devices.len(), 12);
        for name in &pop.devices {
            assert!(
                world.device(name).certificate.is_some(),
                "{name} holds a market certificate"
            );
        }
        let report = run_population(&mut world, &mut pop, &spec);
        assert_eq!(report.requests, report.ok, "every access succeeds");
        assert_eq!(report.churned, 2, "one churn step between two waves");
        assert_eq!(pop.devices.len(), 12, "churn replaces what it retires");
        assert!(report.requests >= spec.accesses_per_wave);
        assert!(report.makespan > SimDuration::ZERO);
    }

    #[test]
    fn population_replays_byte_identically() {
        let run_once = || {
            let spec = small_spec();
            let mut world = World::new(WorldConfig {
                seed: 16,
                ..WorldConfig::default()
            });
            let mut pop = populate_population(&mut world, &spec);
            let report = run_population(&mut world, &mut pop, &spec);
            (report, world.chain.gas_used_total(), world.clock.now())
        };
        assert_eq!(run_once(), run_once(), "same seed, same trajectory");
    }

    #[test]
    fn scenario_works_with_encrypted_policies() {
        let mut world = build_world(WorldConfig {
            encrypt_policies: true,
            ..WorldConfig::default()
        });
        let report = run(&mut world).expect("sealed-policy run succeeds");
        assert!(report.bob_copy_deleted);
        assert!(report.alice_still_permitted);
    }
}
