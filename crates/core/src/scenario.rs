//! The motivating use-case scenario (paper §II), executable end to end.
//!
//! Alice and Bob join the data market; Bob trades medical data restricted
//! to medical purposes, Alice trades browsing data with a one-month
//! retention that she later tightens to one week; Bob's copy is erased when
//! the shorter deadline lapses, while Alice — whose application serves a
//! university hospital — retains access to Bob's data when he narrows its
//! purpose to academic pursuits.

use duc_blockchain::Ledger;
use duc_policy::{Action, Constraint, Duty, Purpose, Rule, UsagePolicy};
use duc_sim::SimDuration;
use duc_solid::Body;
use duc_tee::EnforcementAction;

use crate::process::{MonitoringOutcome, ProcessError};
use crate::world::{World, WorldConfig};

/// Alice's WebID.
pub const ALICE: &str = "https://alice.id/me";
/// Bob's WebID.
pub const BOB: &str = "https://bob.id/me";
/// Alice's device.
pub const ALICE_DEVICE: &str = "alice-laptop";
/// Bob's device.
pub const BOB_DEVICE: &str = "bob-workstation";
/// Path of Bob's medical dataset in his pod.
pub const MEDICAL_PATH: &str = "data/medical.ttl";
/// Path of Alice's browsing dataset in her pod.
pub const BROWSING_PATH: &str = "data/browsing.csv";

/// What happened in a full scenario run (the integration tests and the
/// quickstart example assert on these fields).
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// IRI of Bob's medical resource.
    pub medical_iri: String,
    /// IRI of Alice's browsing resource.
    pub browsing_iri: String,
    /// Bytes Alice retrieved from Bob's pod.
    pub alice_got_bytes: usize,
    /// Bytes Bob retrieved from Alice's pod.
    pub bob_got_bytes: usize,
    /// Whether Bob's copy of the browsing data was deleted by his TEE
    /// after Alice tightened the retention to one week.
    pub bob_copy_deleted: bool,
    /// Whether Alice could still use Bob's medical data after he narrowed
    /// the allowed purpose to academic pursuits.
    pub alice_still_permitted: bool,
    /// Monitoring outcome for Alice's browsing resource.
    pub browsing_monitoring: MonitoringOutcome,
    /// Monitoring outcome for Bob's medical resource.
    pub medical_monitoring: MonitoringOutcome,
    /// Total gas spent across the run.
    pub total_gas: u64,
}

/// Builds the two-party world of §II.
pub fn build_world(config: WorldConfig) -> World {
    let mut world = World::new(config);
    populate(&mut world);
    world
}

/// Registers the two owners and two devices of §II on any backend (the
/// conformance suite runs the scenario against every [`Ledger`]).
pub fn populate<L: Ledger>(world: &mut World<L>) {
    world.add_owner(ALICE, "https://alice.pod/");
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device(ALICE_DEVICE, ALICE);
    world.add_device(BOB_DEVICE, BOB);
}

/// Bob's medical policy: use for medical purposes only; log accesses.
pub fn medical_policy(resource_iri: &str) -> UsagePolicy {
    UsagePolicy::builder(format!("{resource_iri}#policy"), resource_iri, BOB)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")])),
        )
        .rule(Rule::prohibit([Action::Distribute]))
        .duty(Duty::LogAccesses)
        .build()
}

/// Alice's browsing policy: keep at most `retention_days`, then delete.
pub fn browsing_policy(resource_iri: &str, retention_days: u64) -> UsagePolicy {
    UsagePolicy::builder(format!("{resource_iri}#policy"), resource_iri, ALICE)
        .permit(
            Rule::permit([Action::Use]).with_constraint(Constraint::MaxRetention(
                SimDuration::from_days(retention_days),
            )),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(retention_days)))
        .duty(Duty::LogAccesses)
        .build()
}

/// Runs the full §II scenario on `world`.
///
/// # Errors
/// Propagates the first process failure (a fault-free default world runs
/// cleanly; fault-injected worlds may legitimately fail here).
pub fn run<L: Ledger>(world: &mut World<L>) -> Result<ScenarioReport, ProcessError> {
    // --- Registration (process 1 for both owners).
    world.pod_initiation(ALICE)?;
    world.pod_initiation(BOB)?;

    // --- Resource initiation (process 2).
    let medical_iri = {
        let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
        let policy = medical_policy(&iri);
        world.resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Turtle(
                "@prefix duc: <https://w3id.org/duc/ns#> .\n\
                 <urn:dataset:medical> duc:registeredAt 1 .\n"
                    .into(),
            ),
            policy,
            vec![("domain".into(), "health".into())],
        )?
    };
    let browsing_iri = {
        let iri = world.owner(ALICE).pod_manager.pod().iri_of(BROWSING_PATH);
        let policy = browsing_policy(&iri, 30);
        world.resource_initiation(
            ALICE,
            BROWSING_PATH,
            Body::Text("url,timestamp\nexample.org,100\n".repeat(16)),
            policy,
            vec![("domain".into(), "web-analytics".into())],
        )?
    };

    // --- Market subscriptions and discovery (process 3).
    world.market_subscribe(ALICE_DEVICE)?;
    world.market_subscribe(BOB_DEVICE)?;
    world.resource_indexing(ALICE_DEVICE, &medical_iri)?;
    world.resource_indexing(BOB_DEVICE, &browsing_iri)?;

    // --- Resource access (process 4).
    let alice_got = world.resource_access(ALICE_DEVICE, &medical_iri)?;
    let bob_got = world.resource_access(BOB_DEVICE, &browsing_iri)?;

    // Alice works with Bob's data inside her TEE (for a university
    // hospital, i.e. both medical and academic research).
    {
        let device = world.devices.get_mut(ALICE_DEVICE).expect("alice device");
        device
            .tee
            .access(
                &medical_iri,
                Action::Read,
                Purpose::new("university-hospital-research"),
                world.clock.now(),
            )
            .map_err(|e| ProcessError::Policy(e.to_string()))?;
    }

    // --- Two days pass; Alice tightens retention to one week, Bob narrows
    // --- his purpose to academic pursuits (process 5, twice).
    world.advance(SimDuration::from_days(2));
    let tightened = world.policy_modification(
        ALICE,
        BROWSING_PATH,
        vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
        vec![
            Duty::DeleteWithin(SimDuration::from_days(7)),
            Duty::LogAccesses,
        ],
    )?;
    debug_assert_eq!(tightened.version, 2);
    world.policy_modification(
        BOB,
        MEDICAL_PATH,
        vec![
            Rule::permit([Action::Use])
                .with_constraint(Constraint::Purpose(vec![Purpose::new("academic")])),
            Rule::prohibit([Action::Distribute]),
        ],
        vec![Duty::LogAccesses],
    )?;

    // Alice's access grant survives: her purpose is academic *and* medical.
    let alice_still_permitted = {
        let device = world.devices.get_mut(ALICE_DEVICE).expect("alice device");
        device
            .tee
            .access(
                &medical_iri,
                Action::Read,
                Purpose::new("university-hospital-research"),
                world.clock.now(),
            )
            .is_ok()
    };

    // --- Six more days: Bob's copy (now 8 days old) crosses the one-week
    // --- retention bound; his TEE timer erases it.
    world.advance(SimDuration::from_days(6));
    let actions = world.sweep_devices();
    let bob_copy_deleted = actions.iter().any(|(device, action)| {
        device == BOB_DEVICE
            && matches!(
                action,
                EnforcementAction::Deleted { resource, .. } if resource == &browsing_iri
            )
    }) || !world.device(BOB_DEVICE).tee.has_copy(&browsing_iri);

    // --- Monitoring (process 6) on both resources.
    let browsing_monitoring = world.policy_monitoring(ALICE, BROWSING_PATH)?;
    let medical_monitoring = world.policy_monitoring(BOB, MEDICAL_PATH)?;

    let total_gas: u64 = world.chain.gas_used_total();
    Ok(ScenarioReport {
        medical_iri,
        browsing_iri,
        alice_got_bytes: alice_got.bytes,
        bob_got_bytes: bob_got.bytes,
        bob_copy_deleted,
        alice_still_permitted,
        browsing_monitoring,
        medical_monitoring,
        total_gas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_motivating_scenario_plays_out() {
        let mut world = build_world(WorldConfig::default());
        let report = run(&mut world).expect("fault-free run succeeds");

        assert!(report.alice_got_bytes > 0);
        assert!(report.bob_got_bytes > 0);
        assert!(
            report.bob_copy_deleted,
            "retention tightening erased Bob's copy"
        );
        assert!(
            report.alice_still_permitted,
            "university-hospital research satisfies the academic narrowing"
        );
        // Bob's device deleted the copy on time → compliant; the round
        // may have zero expected devices (copy unregistered) or report a
        // compliant device.
        assert!(report.browsing_monitoring.violators.is_empty());
        assert!(report.medical_monitoring.violators.is_empty());
        assert_eq!(
            report.medical_monitoring.evidence,
            report.medical_monitoring.expected
        );
        assert!(report.total_gas > 0);
    }

    #[test]
    fn scenario_is_deterministic_across_runs() {
        let run_once = |seed: u64| {
            let mut world = build_world(WorldConfig {
                seed,
                ..WorldConfig::default()
            });
            let report = run(&mut world).expect("runs");
            (
                report.total_gas,
                world.clock.now(),
                report.alice_got_bytes,
                report.browsing_monitoring.duration,
            )
        };
        assert_eq!(run_once(7), run_once(7), "same seed, same trajectory");
    }

    #[test]
    fn scenario_works_with_encrypted_policies() {
        let mut world = build_world(WorldConfig {
            encrypt_policies: true,
            ..WorldConfig::default()
        });
        let report = run(&mut world).expect("sealed-policy run succeeds");
        assert!(report.bob_copy_deleted);
        assert!(report.alice_still_permitted);
    }
}
