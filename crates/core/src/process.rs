//! The six processes of the architecture (paper Fig. 2) — one-shot API.
//!
//! Each process is a method on [`World`] that plays out the exact hop
//! sequence of the paper's sequence diagrams. Since the driver redesign
//! (see [`crate::driver`]) these methods are thin wrappers over the
//! non-blocking request API: they submit one [`Request`], drive the event
//! loop to idle, and unwrap the single outcome — so their signatures and
//! semantics are unchanged while the same state machines also serve
//! hundreds of concurrent in-flight requests.

use duc_blockchain::Ledger;
use duc_crypto::Digest;
use duc_oracle::OracleError;
use duc_policy::{AclMode, AgentSpec, Authorization, Duty, Rule, UsagePolicy};
use duc_sim::SimDuration;
use duc_solid::{Body, Status};
use duc_tee::{EnforcementAction, TeeError};

use crate::driver::{Outcome, Request};
use crate::world::{IndexEntry, World};

/// A process-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// The WebID has no registered owner.
    UnknownOwner(String),
    /// The device name is not registered.
    UnknownDevice(String),
    /// Process 1 has not run for this owner yet.
    PodNotRegistered(String),
    /// The device has not indexed the resource (process 3 missing).
    NotIndexed {
        /// Device name.
        device: String,
        /// Resource IRI.
        resource: String,
    },
    /// The resource is not in the DE App index.
    UnknownResource(String),
    /// An oracle hop failed.
    Oracle(OracleError),
    /// A transaction was included but reverted.
    Reverted(String),
    /// The pod manager refused the Solid request.
    Solid {
        /// Response status.
        status: Status,
        /// Detail, when provided.
        detail: Option<String>,
    },
    /// A policy operation failed (parsing, envelope, permissions).
    Policy(String),
    /// The device needs a market certificate (process: market subscription).
    NoCertificate(String),
    /// The enclave could not be attested.
    Attestation(String),
    /// The device's trusted application reported a damaged internal state
    /// (see [`TeeError`]). Permanent: retrying cannot heal a broken
    /// enclave, so [`ProcessError::is_transient`] is `false`.
    Tee(TeeError),
}

impl ProcessError {
    /// Whether the failure is *transient* — caused by network faults or
    /// chain liveness, so re-submitting the same request after the fault
    /// heals can plausibly succeed. Permanent failures (unknown
    /// participants, refused requests, reverts) are not worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, ProcessError::Oracle(e) if e.is_transient())
    }
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::UnknownOwner(w) => write!(f, "unknown owner {w}"),
            ProcessError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            ProcessError::PodNotRegistered(w) => write!(f, "pod not registered for {w}"),
            ProcessError::NotIndexed { device, resource } => {
                write!(f, "device {device} has not indexed {resource}")
            }
            ProcessError::UnknownResource(r) => write!(f, "resource not in index: {r}"),
            ProcessError::Oracle(e) => write!(f, "oracle failure: {e}"),
            ProcessError::Reverted(msg) => write!(f, "transaction reverted: {msg}"),
            ProcessError::Solid { status, detail } => {
                write!(f, "pod manager refused: {status:?} {detail:?}")
            }
            ProcessError::Policy(msg) => write!(f, "policy error: {msg}"),
            ProcessError::NoCertificate(w) => write!(f, "no market certificate for {w}"),
            ProcessError::Attestation(msg) => write!(f, "attestation failure: {msg}"),
            ProcessError::Tee(e) => write!(f, "trusted application fault: {e}"),
        }
    }
}

impl std::error::Error for ProcessError {}

impl From<OracleError> for ProcessError {
    fn from(e: OracleError) -> Self {
        ProcessError::Oracle(e)
    }
}

impl From<TeeError> for ProcessError {
    fn from(e: TeeError) -> Self {
        ProcessError::Tee(e)
    }
}

/// Outcome of a resource access (process 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Bytes retrieved.
    pub bytes: usize,
    /// End-to-end latency including on-chain copy registration.
    pub e2e: SimDuration,
    /// Latency of the pod fetch alone (request + transfer + response).
    pub fetch: SimDuration,
}

/// Outcome of a policy modification (process 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationOutcome {
    /// The new on-chain policy version.
    pub version: u64,
    /// Devices that received the update.
    pub devices_notified: usize,
    /// Obligations executed as a consequence (e.g. deletions).
    pub enforcement: Vec<(String, EnforcementAction)>,
    /// Latency from the owner's request to the last device applying the
    /// update.
    pub e2e: SimDuration,
}

/// Outcome of a monitoring round (process 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitoringOutcome {
    /// Round number.
    pub round: u64,
    /// Devices that were expected to answer.
    pub expected: usize,
    /// Evidence submissions recorded on-chain.
    pub evidence: usize,
    /// Devices whose evidence reported violations.
    pub violators: Vec<String>,
    /// Total evidence bytes shipped.
    pub evidence_bytes: usize,
    /// Wall-clock duration of the round.
    pub duration: SimDuration,
}

impl<L: Ledger> World<L> {
    /// Submits `request` alone, drives the event loop to idle and returns
    /// its outcome (the one-shot wrapper shared by all six processes).
    fn run_one(&mut self, request: Request) -> Result<Outcome, ProcessError> {
        let ticket = self.submit(request);
        self.run_until_idle();
        self.poll_ticket(ticket)
            .expect("run_until_idle completes every in-flight request")
    }

    /// **Process 1 — pod initiation.** The owner asks the pod manager to
    /// initialize the pod; the pod manager sets the default policy and
    /// pushes the pod's web reference + default policy on-chain.
    ///
    /// # Errors
    /// Fails on unknown owners, oracle loss or an on-chain revert.
    pub fn pod_initiation(&mut self, webid: &str) -> Result<(), ProcessError> {
        match self.run_one(Request::PodInitiation {
            webid: webid.to_string(),
        })? {
            Outcome::PodInitiated { .. } => Ok(()),
            other => unreachable!("pod initiation yielded {other:?}"),
        }
    }

    /// Grants `modes` on a pod path to `agents` (ACL administration;
    /// implicit in the paper's market terms).
    ///
    /// # Errors
    /// Fails on unknown owners.
    pub fn grant_access(
        &mut self,
        webid: &str,
        path: &str,
        agents: Vec<AgentSpec>,
        modes: Vec<AclMode>,
    ) -> Result<(), ProcessError> {
        let owner = self
            .owners
            .get_mut(webid)
            .ok_or_else(|| ProcessError::UnknownOwner(webid.to_string()))?;
        let resource_iri = owner.pod_manager.pod().iri_of(path);
        let mut acl = owner.pod_manager.acl().clone();
        let id = format!("grant-{}", acl.authorizations.len());
        acl.push(Authorization::for_resource(id, resource_iri, agents, modes));
        owner.pod_manager.set_acl(acl);
        Ok(())
    }

    /// **Process 2 — resource initiation.** The owner uploads a resource to
    /// the pod (ACL-checked PUT), attaches a usage policy, and the pod
    /// manager pushes the metadata + policy into the DE App index.
    ///
    /// Returns the resource IRI.
    ///
    /// # Errors
    /// Fails if the pod is not registered, the PUT is refused, or the
    /// on-chain registration fails.
    pub fn resource_initiation(
        &mut self,
        webid: &str,
        path: &str,
        body: Body,
        policy: UsagePolicy,
        metadata: Vec<(String, String)>,
    ) -> Result<String, ProcessError> {
        match self.run_one(Request::ResourceInitiation {
            webid: webid.to_string(),
            path: path.to_string(),
            body,
            policy,
            metadata,
        })? {
            Outcome::ResourceInitiated { resource } => Ok(resource),
            other => unreachable!("resource initiation yielded {other:?}"),
        }
    }

    /// **Process 3 — resource indexing.** A device's trusted application
    /// reads a resource's location and policy from the DE App through the
    /// pull-out oracle and stores them in the TEE.
    ///
    /// # Errors
    /// Fails on unknown devices/resources or oracle loss.
    pub fn resource_indexing(
        &mut self,
        device: &str,
        resource: &str,
    ) -> Result<IndexEntry, ProcessError> {
        match self.run_one(Request::ResourceIndexing {
            device: device.to_string(),
            resource: resource.to_string(),
        })? {
            Outcome::Indexed { entry } => Ok(entry),
            other => unreachable!("resource indexing yielded {other:?}"),
        }
    }

    /// Buys a market subscription for the device's operator and stores the
    /// payment certificate (a prerequisite of process 4, cf. §II).
    ///
    /// # Errors
    /// Fails on unknown devices, oracle loss or revert.
    pub fn market_subscribe(&mut self, device: &str) -> Result<Digest, ProcessError> {
        match self.run_one(Request::MarketSubscribe {
            device: device.to_string(),
        })? {
            Outcome::Subscribed { certificate } => Ok(certificate),
            other => unreachable!("market subscription yielded {other:?}"),
        }
    }

    /// **Process 4 — resource access.** The trusted application fetches the
    /// resource from the owner's pod (presenting the market certificate),
    /// seals the copy in trusted storage under the indexed policy, and
    /// registers the copy on-chain (which also subscribes the device to
    /// policy updates).
    ///
    /// # Errors
    /// Fails when the device lacks an index entry or certificate, the pod
    /// manager refuses the request, attestation fails, or the on-chain copy
    /// registration fails.
    pub fn resource_access(
        &mut self,
        device: &str,
        resource: &str,
    ) -> Result<AccessOutcome, ProcessError> {
        match self.run_one(Request::ResourceAccess {
            device: device.to_string(),
            resource: resource.to_string(),
        })? {
            Outcome::Accessed(outcome) => Ok(outcome),
            other => unreachable!("resource access yielded {other:?}"),
        }
    }

    /// **Process 5 — policy modification.** The owner updates the policy at
    /// the pod manager (permission-checked, version bumped), the push-in
    /// oracle replaces it in the DE App, and the push-out oracle fans the
    /// update out to every device holding a copy, which re-evaluates and
    /// executes consequent obligations (e.g. deleting now-overdue copies).
    ///
    /// # Errors
    /// Fails when the modifier is not the owner, or on oracle/chain errors.
    pub fn policy_modification(
        &mut self,
        webid: &str,
        path: &str,
        rules: Vec<Rule>,
        duties: Vec<Duty>,
    ) -> Result<PropagationOutcome, ProcessError> {
        match self.run_one(Request::PolicyModification {
            webid: webid.to_string(),
            path: path.to_string(),
            rules,
            duties,
        })? {
            Outcome::PolicyPropagated(outcome) => Ok(outcome),
            other => unreachable!("policy modification yielded {other:?}"),
        }
    }

    /// **Process 6 — policy monitoring.** The pod manager opens a round via
    /// the push-in oracle; the DE App emits a request event; the pull-in
    /// oracle collects signed usage reports from every device holding a
    /// copy and records them on-chain; the push-out oracle returns the
    /// verdict to the pod manager.
    ///
    /// # Errors
    /// Fails on unknown participants or oracle/chain errors.
    pub fn policy_monitoring(
        &mut self,
        webid: &str,
        path: &str,
    ) -> Result<MonitoringOutcome, ProcessError> {
        match self.run_one(Request::PolicyMonitoring {
            webid: webid.to_string(),
            path: path.to_string(),
        })? {
            Outcome::Monitored(outcome) => Ok(outcome),
            other => unreachable!("policy monitoring yielded {other:?}"),
        }
    }
}
