//! The six processes of the architecture (paper Fig. 2).
//!
//! Each process is a method on [`World`] that plays out the exact hop
//! sequence of the paper's sequence diagrams, advancing the shared clock at
//! every network hop and block inclusion, and recording latency/gas metrics
//! under `process.<name>.*` keys.

use duc_contracts::{topics, DistExchangeClient, EvidenceSubmission};
use duc_crypto::Digest;
use duc_oracle::OracleError;
use duc_policy::{AclMode, AgentSpec, Authorization, Duty, Rule, UsagePolicy};
use duc_sim::SimDuration;
use duc_solid::{Body, SolidRequest, Status};
use duc_tee::EnforcementAction;

use crate::world::{IndexEntry, World};

/// Confirmation timeout for on-chain operations.
const CONFIRM_TIMEOUT: SimDuration = SimDuration::from_secs(120);

/// A process-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// The WebID has no registered owner.
    UnknownOwner(String),
    /// The device name is not registered.
    UnknownDevice(String),
    /// Process 1 has not run for this owner yet.
    PodNotRegistered(String),
    /// The device has not indexed the resource (process 3 missing).
    NotIndexed {
        /// Device name.
        device: String,
        /// Resource IRI.
        resource: String,
    },
    /// The resource is not in the DE App index.
    UnknownResource(String),
    /// An oracle hop failed.
    Oracle(OracleError),
    /// A transaction was included but reverted.
    Reverted(String),
    /// The pod manager refused the Solid request.
    Solid {
        /// Response status.
        status: Status,
        /// Detail, when provided.
        detail: Option<String>,
    },
    /// A policy operation failed (parsing, envelope, permissions).
    Policy(String),
    /// The device needs a market certificate (process: market subscription).
    NoCertificate(String),
    /// The enclave could not be attested.
    Attestation(String),
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::UnknownOwner(w) => write!(f, "unknown owner {w}"),
            ProcessError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            ProcessError::PodNotRegistered(w) => write!(f, "pod not registered for {w}"),
            ProcessError::NotIndexed { device, resource } => {
                write!(f, "device {device} has not indexed {resource}")
            }
            ProcessError::UnknownResource(r) => write!(f, "resource not in index: {r}"),
            ProcessError::Oracle(e) => write!(f, "oracle failure: {e}"),
            ProcessError::Reverted(msg) => write!(f, "transaction reverted: {msg}"),
            ProcessError::Solid { status, detail } => {
                write!(f, "pod manager refused: {status:?} {detail:?}")
            }
            ProcessError::Policy(msg) => write!(f, "policy error: {msg}"),
            ProcessError::NoCertificate(w) => write!(f, "no market certificate for {w}"),
            ProcessError::Attestation(msg) => write!(f, "attestation failure: {msg}"),
        }
    }
}

impl std::error::Error for ProcessError {}

impl From<OracleError> for ProcessError {
    fn from(e: OracleError) -> Self {
        ProcessError::Oracle(e)
    }
}

/// Outcome of a resource access (process 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Bytes retrieved.
    pub bytes: usize,
    /// End-to-end latency including on-chain copy registration.
    pub e2e: SimDuration,
    /// Latency of the pod fetch alone (request + transfer + response).
    pub fetch: SimDuration,
}

/// Outcome of a policy modification (process 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationOutcome {
    /// The new on-chain policy version.
    pub version: u64,
    /// Devices that received the update.
    pub devices_notified: usize,
    /// Obligations executed as a consequence (e.g. deletions).
    pub enforcement: Vec<(String, EnforcementAction)>,
    /// Latency from the owner's request to the last device applying the
    /// update.
    pub e2e: SimDuration,
}

/// Outcome of a monitoring round (process 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitoringOutcome {
    /// Round number.
    pub round: u64,
    /// Devices that were expected to answer.
    pub expected: usize,
    /// Evidence submissions recorded on-chain.
    pub evidence: usize,
    /// Devices whose evidence reported violations.
    pub violators: Vec<String>,
    /// Total evidence bytes shipped.
    pub evidence_bytes: usize,
    /// Wall-clock duration of the round.
    pub duration: SimDuration,
}

impl World {
    fn receipt_ok(receipt: duc_blockchain::Receipt) -> Result<duc_blockchain::Receipt, ProcessError> {
        match &receipt.status {
            duc_blockchain::TxStatus::Ok => Ok(receipt),
            duc_blockchain::TxStatus::Reverted(msg) => Err(ProcessError::Reverted(msg.clone())),
            duc_blockchain::TxStatus::OutOfGas => Err(ProcessError::Reverted("out of gas".into())),
        }
    }

    /// **Process 1 — pod initiation.** The owner asks the pod manager to
    /// initialize the pod; the pod manager sets the default policy and
    /// pushes the pod's web reference + default policy on-chain.
    ///
    /// # Errors
    /// Fails on unknown owners, oracle loss or an on-chain revert.
    pub fn pod_initiation(&mut self, webid: &str) -> Result<(), ProcessError> {
        let start = self.clock.now();
        let owner = self
            .owners
            .get_mut(webid)
            .ok_or_else(|| ProcessError::UnknownOwner(webid.to_string()))?;
        let root = owner.pod_manager.pod().root().to_string();
        let endpoint = owner.endpoint;
        let owner_key = owner.key;

        // Local setup: default policy attached at the pod root.
        let default_policy = UsagePolicy::default_for(root.clone(), webid);
        owner.pod_manager.set_policy("", default_policy.clone());
        self.trace
            .record(self.clock.now(), format!("pm:{webid}"), "pod.create", root.clone());

        // Push-in oracle: register the pod on-chain.
        let envelope = self.envelope(&default_policy);
        let tx = self
            .dex
            .register_pod_tx(&self.chain, &owner_key, webid, &root, envelope);
        let key_endpoint = endpoint;
        let receipt = self.push_in.submit_and_confirm(
            &mut self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            key_endpoint,
            tx,
            CONFIRM_TIMEOUT,
        )?;
        let receipt = Self::receipt_ok(receipt)?;
        let owner = self.owners.get_mut(webid).expect("checked above");
        owner.pod_registered = true;

        // The pod manager listens for monitoring verdicts from now on.
        self.push_out.subscribe(topics::ROUND_CLOSED, endpoint);

        let e2e = self.clock.now() - start;
        self.metrics.record("process.pod_init.e2e", e2e);
        self.metrics.add("process.pod_init.gas", receipt.gas_used);
        self.trace
            .record(self.clock.now(), format!("pm:{webid}"), "pod.registered", root);
        Ok(())
    }

    /// Grants `modes` on a pod path to `agents` (ACL administration;
    /// implicit in the paper's market terms).
    ///
    /// # Errors
    /// Fails on unknown owners.
    pub fn grant_access(
        &mut self,
        webid: &str,
        path: &str,
        agents: Vec<AgentSpec>,
        modes: Vec<AclMode>,
    ) -> Result<(), ProcessError> {
        let owner = self
            .owners
            .get_mut(webid)
            .ok_or_else(|| ProcessError::UnknownOwner(webid.to_string()))?;
        let resource_iri = owner.pod_manager.pod().iri_of(path);
        let mut acl = owner.pod_manager.acl().clone();
        let id = format!("grant-{}", acl.authorizations.len());
        acl.push(Authorization::for_resource(id, resource_iri, agents, modes));
        owner.pod_manager.set_acl(acl);
        Ok(())
    }

    /// **Process 2 — resource initiation.** The owner uploads a resource to
    /// the pod (ACL-checked PUT), attaches a usage policy, and the pod
    /// manager pushes the metadata + policy into the DE App index.
    ///
    /// Returns the resource IRI.
    ///
    /// # Errors
    /// Fails if the pod is not registered, the PUT is refused, or the
    /// on-chain registration fails.
    pub fn resource_initiation(
        &mut self,
        webid: &str,
        path: &str,
        body: Body,
        policy: UsagePolicy,
        metadata: Vec<(String, String)>,
    ) -> Result<String, ProcessError> {
        let start = self.clock.now();
        let owner = self
            .owners
            .get_mut(webid)
            .ok_or_else(|| ProcessError::UnknownOwner(webid.to_string()))?;
        if !owner.pod_registered {
            return Err(ProcessError::PodNotRegistered(webid.to_string()));
        }
        let endpoint = owner.endpoint;
        let owner_key = owner.key;

        // Upload via the Solid protocol (the pod manager checks the ACL).
        let put = SolidRequest::put(webid, path).with_body(body);
        let resp = owner.pod_manager.handle(&put);
        if !resp.status.is_success() {
            return Err(ProcessError::Solid {
                status: resp.status,
                detail: resp.detail,
            });
        }
        owner.pod_manager.set_policy(path, policy.clone());
        // Market terms: authenticated subscribers may read this resource
        // (certificate-gated), cf. §II "only subscribed users have access".
        let resource_iri = owner.pod_manager.pod().iri_of(path);
        let mut acl = owner.pod_manager.acl().clone();
        acl.push(Authorization::for_resource(
            format!("market-readers-{path}"),
            resource_iri.clone(),
            vec![AgentSpec::AuthenticatedAgent],
            vec![AclMode::Read],
        ));
        owner.pod_manager.set_acl(acl);
        owner.pod_manager.set_require_certificate(true);

        // Push-in oracle: index the resource + publish the policy.
        let envelope = self.envelope(&policy);
        let tx = self.dex.register_resource_tx(
            &self.chain,
            &owner_key,
            &resource_iri,
            &resource_iri,
            webid,
            metadata,
            envelope,
        );
        let receipt = self.push_in.submit_and_confirm(
            &mut self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            endpoint,
            tx,
            CONFIRM_TIMEOUT,
        )?;
        let receipt = Self::receipt_ok(receipt)?;

        let e2e = self.clock.now() - start;
        self.metrics.record("process.resource_init.e2e", e2e);
        self.metrics.add("process.resource_init.gas", receipt.gas_used);
        self.trace.record(
            self.clock.now(),
            format!("pm:{webid}"),
            "resource.registered",
            resource_iri.clone(),
        );
        Ok(resource_iri)
    }

    /// **Process 3 — resource indexing.** A device's trusted application
    /// reads a resource's location and policy from the DE App through the
    /// pull-out oracle and stores them in the TEE.
    ///
    /// # Errors
    /// Fails on unknown devices/resources or oracle loss.
    pub fn resource_indexing(&mut self, device: &str, resource: &str) -> Result<IndexEntry, ProcessError> {
        let start = self.clock.now();
        let dev = self
            .devices
            .get(device)
            .ok_or_else(|| ProcessError::UnknownDevice(device.to_string()))?;
        let endpoint = dev.endpoint;

        let out = self.pull_out.read(
            &self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            endpoint,
            self.dex.contract_id(),
            "lookup_resource",
            &duc_codec::encode_to_vec(&(resource.to_string(),)),
        )?;
        let record: Option<duc_contracts::ResourceRecord> = duc_codec::decode_from_slice(&out)
            .map_err(|e| ProcessError::Policy(e.to_string()))?;
        let record = record.ok_or_else(|| ProcessError::UnknownResource(resource.to_string()))?;
        let policy = self
            .open_envelope(&record.policy)
            .map_err(|e| ProcessError::Policy(e.to_string()))?;
        let entry = IndexEntry {
            location: record.location.clone(),
            owner_webid: record.owner_webid.clone(),
            policy,
        };
        let dev = self.devices.get_mut(device).expect("checked above");
        dev.indexed.insert(resource.to_string(), entry.clone());

        let e2e = self.clock.now() - start;
        self.metrics.record("process.indexing.e2e", e2e);
        self.trace.record(
            self.clock.now(),
            format!("tee:{device}"),
            "resource.indexed",
            resource.to_string(),
        );
        Ok(entry)
    }

    /// Buys a market subscription for the device's operator and stores the
    /// payment certificate (a prerequisite of process 4, cf. §II).
    ///
    /// # Errors
    /// Fails on unknown devices, oracle loss or revert.
    pub fn market_subscribe(&mut self, device: &str) -> Result<Digest, ProcessError> {
        let start = self.clock.now();
        let dev = self
            .devices
            .get(device)
            .ok_or_else(|| ProcessError::UnknownDevice(device.to_string()))?;
        let endpoint = dev.endpoint;
        let tx = self.dex.subscribe_tx(&self.chain, &dev.key, &dev.webid);
        let receipt = self.push_in.submit_and_confirm(
            &mut self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            endpoint,
            tx,
            CONFIRM_TIMEOUT,
        )?;
        let receipt = Self::receipt_ok(receipt)?;
        let cert = DistExchangeClient::decode_certificate(&receipt.return_data)
            .map_err(|e| ProcessError::Policy(e.to_string()))?;
        self.devices.get_mut(device).expect("checked").certificate = Some(cert);
        self.metrics.record("process.subscribe.e2e", self.clock.now() - start);
        self.metrics.add("process.subscribe.gas", receipt.gas_used);
        Ok(cert)
    }

    /// **Process 4 — resource access.** The trusted application fetches the
    /// resource from the owner's pod (presenting the market certificate),
    /// seals the copy in trusted storage under the indexed policy, and
    /// registers the copy on-chain (which also subscribes the device to
    /// policy updates).
    ///
    /// # Errors
    /// Fails when the device lacks an index entry or certificate, the pod
    /// manager refuses the request, attestation fails, or the on-chain copy
    /// registration fails.
    pub fn resource_access(&mut self, device: &str, resource: &str) -> Result<AccessOutcome, ProcessError> {
        let start = self.clock.now();
        let dev = self
            .devices
            .get(device)
            .ok_or_else(|| ProcessError::UnknownDevice(device.to_string()))?;
        let entry = dev
            .indexed
            .get(resource)
            .ok_or_else(|| ProcessError::NotIndexed {
                device: device.to_string(),
                resource: resource.to_string(),
            })?
            .clone();
        let certificate = dev
            .certificate
            .ok_or_else(|| ProcessError::NoCertificate(dev.webid.clone()))?;
        let webid = dev.webid.clone();
        let dev_endpoint = dev.endpoint;

        // Attestation gate: only recognized trusted applications may hold
        // governed copies (the market's terms and conditions, §II).
        let quote = self
            .attestation
            .issue_quote(self.devices.get(device).expect("checked").tee.enclave())
            .ok_or_else(|| ProcessError::Attestation(format!("measurement not trusted for {device}")))?;

        let owner = self
            .owners
            .get(&entry.owner_webid)
            .ok_or_else(|| ProcessError::UnknownOwner(entry.owner_webid.clone()))?;
        let owner_endpoint = owner.endpoint;
        let root = owner.pod_manager.pod().root().to_string();
        let path = entry
            .location
            .strip_prefix(&root)
            .unwrap_or(entry.location.as_str())
            .to_string();

        // The pod manager verifies the certificate against the DE App
        // (its own blockchain interaction module does a view call).
        let cert_ok = self
            .dex
            .verify_certificate(&self.chain, &certificate, &webid)
            .map_err(|e| ProcessError::Policy(e.to_string()))?;

        // Request hop: device → pod manager.
        let fetch_start = self.clock.now();
        let request = SolidRequest::get(webid.clone(), path).with_certificate(certificate);
        let hop = self
            .net
            .transmit(dev_endpoint, owner_endpoint, request.size() as u64, &mut self.rng)
            .delay()
            .ok_or(ProcessError::Oracle(OracleError::NetworkDropped))?;
        self.clock.advance(hop);

        let owner = self.owners.get_mut(&entry.owner_webid).expect("checked above");
        let verifier = move |_: &Digest, _: &str| cert_ok;
        let resp = owner.pod_manager.handle_with_verifier(&request, &verifier);
        if resp.status != Status::Ok {
            return Err(ProcessError::Solid {
                status: resp.status,
                detail: resp.detail,
            });
        }
        // Response hop: pod manager → device (size-dependent transfer).
        let hop_back = self
            .net
            .transmit(owner_endpoint, dev_endpoint, resp.size() as u64, &mut self.rng)
            .delay()
            .ok_or(ProcessError::Oracle(OracleError::NetworkDropped))?;
        self.clock.advance(hop_back);
        let fetch = self.clock.now() - fetch_start;

        // Store in the TEE under the indexed policy.
        let bytes = match &resp.body {
            Body::Turtle(t) | Body::Text(t) => t.clone().into_bytes(),
            Body::Binary(b) => b.clone(),
            Body::Empty => Vec::new(),
        };
        let bytes_len = bytes.len();
        let dev = self.devices.get_mut(device).expect("checked above");
        dev.tee
            .store_resource(resource, &bytes, entry.policy.clone(), self.clock.now());

        // Register the copy on-chain and subscribe to policy updates.
        let tx = self.dex.register_copy_tx(
            &self.chain,
            &dev.key,
            resource,
            device,
            &webid,
            quote.enclave_key,
        );
        let receipt = self.push_in.submit_and_confirm(
            &mut self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            dev_endpoint,
            tx,
            CONFIRM_TIMEOUT,
        )?;
        let receipt = Self::receipt_ok(receipt)?;
        self.push_out.subscribe(topics::POLICY_UPDATED, dev_endpoint);

        let e2e = self.clock.now() - start;
        self.metrics.record("process.access.e2e", e2e);
        self.metrics.record("process.access.fetch", fetch);
        self.metrics.add("process.access.gas", receipt.gas_used);
        self.metrics.add("process.access.bytes", bytes_len as u64);
        self.trace.record(
            self.clock.now(),
            format!("tee:{device}"),
            "resource.stored",
            resource.to_string(),
        );
        Ok(AccessOutcome {
            bytes: bytes_len,
            e2e,
            fetch,
        })
    }

    /// **Process 5 — policy modification.** The owner updates the policy at
    /// the pod manager (permission-checked, version bumped), the push-in
    /// oracle replaces it in the DE App, and the push-out oracle fans the
    /// update out to every device holding a copy, which re-evaluates and
    /// executes consequent obligations (e.g. deleting now-overdue copies).
    ///
    /// # Errors
    /// Fails when the modifier is not the owner, or on oracle/chain errors.
    pub fn policy_modification(
        &mut self,
        webid: &str,
        path: &str,
        rules: Vec<Rule>,
        duties: Vec<Duty>,
    ) -> Result<PropagationOutcome, ProcessError> {
        let start = self.clock.now();
        let owner = self
            .owners
            .get_mut(webid)
            .ok_or_else(|| ProcessError::UnknownOwner(webid.to_string()))?;
        let endpoint = owner.endpoint;
        let owner_key = owner.key;
        let amended = owner
            .pod_manager
            .modify_policy(webid, path, rules, duties)
            .map_err(|status| ProcessError::Solid {
                status,
                detail: Some("policy modification refused".into()),
            })?;
        let resource_iri = owner.pod_manager.pod().iri_of(path);

        let envelope = self.envelope(&amended);
        let tx = self.dex.update_policy_tx(
            &self.chain,
            &owner_key,
            &resource_iri,
            envelope,
            amended.version,
        );
        let receipt = self.push_in.submit_and_confirm(
            &mut self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            endpoint,
            tx,
            CONFIRM_TIMEOUT,
        )?;
        let receipt = Self::receipt_ok(receipt)?;
        self.metrics.add("process.policy_mod.gas", receipt.gas_used);

        // Push-out fan-out to subscribed devices.
        let deliveries = self
            .push_out
            .drain(&self.chain, &mut self.net, &self.clock, &mut self.rng);
        let endpoint_to_device: std::collections::HashMap<_, _> = self
            .devices
            .iter()
            .map(|(name, d)| (d.endpoint, name.clone()))
            .collect();
        let mut notified = 0usize;
        let mut enforcement = Vec::new();
        let mut pending_unregisters = Vec::new();
        let mut last_arrival = self.clock.now();
        for delivery in deliveries {
            if delivery.event.topic != topics::POLICY_UPDATED {
                continue;
            }
            let Some(device_name) = endpoint_to_device.get(&delivery.recipient) else {
                continue;
            };
            let (event_resource, _version, policy_env): (String, u64, duc_contracts::PolicyEnvelope) =
                duc_codec::decode_from_slice(&delivery.event.data)
                    .map_err(|e| ProcessError::Policy(e.to_string()))?;
            if event_resource != resource_iri {
                continue;
            }
            let policy = self
                .open_envelope(&policy_env)
                .map_err(|e| ProcessError::Policy(e.to_string()))?;
            let device = self.devices.get_mut(device_name).expect("endpoint map is fresh");
            if !device.tee.has_copy(&event_resource) {
                continue;
            }
            let actions =
                device
                    .tee
                    .apply_policy_update(&event_resource, policy, delivery.arrives_at);
            self.metrics
                .record("process.policy_mod.propagation", delivery.arrives_at - start);
            notified += 1;
            last_arrival = last_arrival.max(delivery.arrives_at);
            for action in actions {
                if let EnforcementAction::Deleted { .. } = &action {
                    self.metrics.incr("enforcement.deletions");
                    // The copy registry is updated so future rounds skip
                    // this device.
                    let tx = self.dex.unregister_copy_tx(
                        &self.chain,
                        &device.key,
                        &event_resource,
                        device_name,
                    );
                    if let Ok(id) = self.chain.submit(tx) {
                        pending_unregisters.push(id);
                    }
                }
                enforcement.push((device_name.clone(), action));
            }
        }
        self.clock.advance_to(last_arrival);
        if let Some(last) = pending_unregisters.last() {
            let _ = duc_oracle::await_inclusion(&mut self.chain, &self.clock, last, CONFIRM_TIMEOUT);
        }
        self.sync_chain();

        let e2e = self.clock.now() - start;
        self.metrics.record("process.policy_mod.e2e", e2e);
        self.trace.record(
            self.clock.now(),
            format!("pm:{webid}"),
            "policy.updated",
            format!("{resource_iri} v{}", amended.version),
        );
        Ok(PropagationOutcome {
            version: amended.version,
            devices_notified: notified,
            enforcement,
            e2e,
        })
    }

    /// **Process 6 — policy monitoring.** The pod manager opens a round via
    /// the push-in oracle; the DE App emits a request event; the pull-in
    /// oracle collects signed usage reports from every device holding a
    /// copy and records them on-chain; the push-out oracle returns the
    /// verdict to the pod manager.
    ///
    /// # Errors
    /// Fails on unknown participants or oracle/chain errors.
    pub fn policy_monitoring(&mut self, webid: &str, path: &str) -> Result<MonitoringOutcome, ProcessError> {
        let start = self.clock.now();
        let owner = self
            .owners
            .get(webid)
            .ok_or_else(|| ProcessError::UnknownOwner(webid.to_string()))?;
        let endpoint = owner.endpoint;
        let resource_iri = owner.pod_manager.pod().iri_of(path);

        // Open the round.
        let tx = self
            .dex
            .start_monitoring_tx(&self.chain, &owner.key, &resource_iri);
        let receipt = self.push_in.submit_and_confirm(
            &mut self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            endpoint,
            tx,
            CONFIRM_TIMEOUT,
        )?;
        let receipt = Self::receipt_ok(receipt)?;
        let round = DistExchangeClient::decode_round_number(&receipt.return_data)
            .map_err(|e| ProcessError::Policy(e.to_string()))?;
        self.metrics.add("process.monitoring.gas", receipt.gas_used);

        // Pull-in oracle: find the request and the expected devices.
        let requests = self.pull_in.poll_requests(
            &self.chain,
            &mut self.net,
            &self.clock,
            &mut self.rng,
            self.gateway,
        )?;
        let mut expected: Vec<String> = Vec::new();
        for (_, event) in &requests {
            let (res, r, devices): (String, u64, Vec<String>) =
                duc_codec::decode_from_slice(&event.data)
                    .map_err(|e| ProcessError::Policy(e.to_string()))?;
            if res == resource_iri && r == round {
                expected = devices;
            }
        }

        // Collect signed evidence from each device.
        let mut evidence_bytes = 0usize;
        let mut submissions = 0usize;
        for device_name in &expected {
            let Some(device) = self.devices.get(device_name) else {
                continue;
            };
            let dev_endpoint = device.endpoint;
            // Request hop: oracle → device.
            let Some(hop) = self
                .net
                .transmit(self.pull_in.relay, dev_endpoint, 128, &mut self.rng)
                .delay()
            else {
                self.metrics.incr("process.monitoring.unreachable");
                continue;
            };
            self.clock.advance(hop);
            let Some(report) = device.tee.report(&resource_iri, self.clock.now()) else {
                continue;
            };
            let mut submission = EvidenceSubmission {
                resource: resource_iri.clone(),
                round,
                device: device_name.clone(),
                compliant: report.compliant,
                violations: report.violations.clone(),
                evidence_digest: report.log_digest,
                signature: duc_crypto::Signature { e: 0, s: 0 },
            };
            submission.signature = device.tee.enclave().sign(&submission.signing_bytes());
            evidence_bytes += duc_codec::encode_to_vec(&submission).len();
            let tx = self
                .dex
                .record_evidence_tx(&self.chain, &device.key, &submission);
            let receipt = self.push_in.submit_and_confirm(
                &mut self.chain,
                &mut self.net,
                &self.clock,
                &mut self.rng,
                dev_endpoint,
                tx,
                CONFIRM_TIMEOUT,
            )?;
            let receipt = Self::receipt_ok(receipt)?;
            self.metrics.add("process.monitoring.gas", receipt.gas_used);
            submissions += 1;
        }

        // Read the verdict and deliver it to the pod manager (push-out).
        let record = self
            .dex
            .get_round(&self.chain, &resource_iri, round)
            .map_err(|e| ProcessError::Policy(e.to_string()))?
            .ok_or_else(|| ProcessError::Policy("round vanished".into()))?;
        let deliveries = self
            .push_out
            .drain(&self.chain, &mut self.net, &self.clock, &mut self.rng);
        let verdict_delivered = deliveries
            .iter()
            .any(|d| d.event.topic == topics::ROUND_CLOSED && d.recipient == endpoint);
        if verdict_delivered {
            self.metrics.incr("process.monitoring.verdicts_delivered");
        }

        let duration = self.clock.now() - start;
        self.metrics.record("process.monitoring.e2e", duration);
        self.metrics
            .add("process.monitoring.evidence_bytes", evidence_bytes as u64);
        self.trace.record(
            self.clock.now(),
            format!("pm:{webid}"),
            "monitoring.round",
            format!("{resource_iri} round {round}: {} violators", record.violators().len()),
        );
        Ok(MonitoringOutcome {
            round,
            expected: expected.len(),
            evidence: submissions,
            violators: record
                .violators()
                .iter()
                .map(|e| e.device.clone())
                .collect(),
            evidence_bytes,
            duration,
        })
    }
}
