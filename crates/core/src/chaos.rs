//! Deterministic chaos harness (FoundationDB-style simulation testing).
//!
//! A chaos run is: a seeded random [`FaultPlan`] over the world's endpoints
//! and validators, a batch of concurrent [`Request`]s submitted through the
//! non-blocking driver, one [`World::run_until_idle`] drive, and an
//! invariant sweep over the final state. Everything is a pure function of
//! the world seed and the chaos seed, so any failing case is reproduced by
//! its two seeds alone (see the README's *chaos harness* section).
//!
//! The invariants encode the paper's §V-2 robustness claims at the
//! architecture level:
//!
//! - **Total resolution** — every submitted ticket resolves with a success
//!   or a typed error; nothing is left pending and nothing hangs.
//! - **No lost certificates** — every certificate a device holds verifies
//!   against the DE App's on-chain registry.
//! - **Copy consistency** — every live TEE copy is registered on-chain (a
//!   fault can never mint an unregistered governed copy).
//! - **Consistent gas accounting** — every unit of consumed gas was paid
//!   out to a proposer, regardless of which fault windows hit.
//! - **Cursors never stranded** — the pull-in/push-out oracle cursors stay
//!   within `[prune_horizon, height]`: never ahead of the chain, never left
//!   below the prune horizon.
//! - **Checkpoint integrity** — every resident checkpoint block carries the
//!   state commitment its checkpoint sealed, and the latest checkpoint's
//!   block is never pruned.

use duc_blockchain::Ledger;
use duc_sim::{EndpointId, FaultPlan, LatencyModel, LinkConfig, Rng, SimDuration, SimTime};

use crate::driver::{Outcome, Request, Ticket};
use crate::process::ProcessError;
use crate::world::World;

/// The result of one chaos run: per-ticket outcomes plus aggregates.
#[derive(Debug)]
pub struct ChaosRun {
    /// The fault plan the run executed under.
    pub plan: FaultPlan,
    /// Every ticket's outcome, in submission order.
    pub outcomes: Vec<(Ticket, Result<Outcome, ProcessError>)>,
    /// Requests that completed successfully.
    pub ok: usize,
    /// Requests that resolved with a typed error.
    pub failed: usize,
    /// Process-machine steps executed.
    pub steps: u64,
    /// Wall-clock (simulated) duration of the batch.
    pub makespan: SimDuration,
}

/// The canonical chaos-suite link profile — fixed `ms` latency, no random
/// loss, 10 MB/s — shared by the chaos tests and the backend-conformance
/// suite so both exercise the same network.
pub fn fixed_link(ms: u64) -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Constant(SimDuration::from_millis(ms)),
        drop_probability: 0.0,
        bandwidth_bps: Some(10_000_000),
    }
}

/// The canonical *healing* plan: a crash window over `endpoint`, then a
/// partition on `endpoint` ↔ `relay`, both healing within 12 s of `now` —
/// in-flight requests must suspend and recover, never fail or hang.
pub fn healing_plan(now: SimTime, endpoint: EndpointId, relay: EndpointId) -> FaultPlan {
    FaultPlan::none()
        .crash(endpoint, now, now + SimDuration::from_secs(8))
        .partition(
            endpoint,
            relay,
            now + SimDuration::from_secs(8),
            now + SimDuration::from_secs(12),
        )
}

/// Generates a seeded random [`FaultPlan`] over every endpoint and
/// validator of `world`, with windows starting within `horizon` of the
/// current instant. Identical `(world, seed)` pairs yield identical plans.
pub fn random_plan<L: Ledger>(
    world: &World<L>,
    seed: u64,
    horizon: SimDuration,
    max_faults: usize,
) -> FaultPlan {
    let mut endpoints: Vec<EndpointId> = (0..world.net.endpoint_count() as u32)
        .map(EndpointId)
        .collect();
    // Weight the shared infrastructure — oracle relay, chain gateway and
    // every pod manager sit on almost every hop, so random faults should
    // hit busy links far more often than an idle device's. Owner endpoints
    // are sorted: HashMap order must never leak into a seeded plan.
    let mut owner_eps: Vec<EndpointId> = world.owners.values().map(|o| o.endpoint).collect();
    owner_eps.sort_unstable();
    for _ in 0..2 {
        endpoints.push(world.push_in.relay);
        endpoints.push(world.gateway);
        endpoints.extend(&owner_eps);
    }
    let mut rng = Rng::seed_from_u64(seed);
    FaultPlan::random(
        &mut rng,
        &endpoints,
        world.chain.validator_count(),
        world.clock.now(),
        horizon,
        max_faults,
    )
}

/// Submits `requests` concurrently under `plan`, drives the world to idle,
/// and checks every invariant.
///
/// # Errors
/// A human-readable description of the first violated invariant (embed the
/// seeds in the caller's panic message to make the case reproducible).
pub fn run_chaos<L: Ledger>(
    world: &mut World<L>,
    requests: Vec<Request>,
    plan: FaultPlan,
) -> Result<ChaosRun, String> {
    world.set_fault_plan(plan.clone());
    let t0 = world.clock.now();
    let tickets: Vec<Ticket> = requests.into_iter().map(|r| world.submit(r)).collect();
    let steps = world.run_until_idle();
    let makespan = world.clock.now() - t0;

    let mut outcomes = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        match world.poll_ticket(ticket) {
            Some(res) => outcomes.push((ticket, res)),
            None => {
                return Err(format!(
                    "ticket {} still unresolved after run_until_idle",
                    ticket.id()
                ))
            }
        }
    }
    check_invariants(world)?;

    let ok = outcomes.iter().filter(|(_, r)| r.is_ok()).count();
    let failed = outcomes.len() - ok;
    Ok(ChaosRun {
        plan,
        outcomes,
        ok,
        failed,
        steps,
        makespan,
    })
}

/// Sweeps the architecture-level invariants over a quiesced world (no
/// request in flight).
///
/// # Errors
/// A description of the first violated invariant.
pub fn check_invariants<L: Ledger>(world: &World<L>) -> Result<(), String> {
    if world.in_flight() != 0 {
        return Err(format!("{} requests still in flight", world.in_flight()));
    }

    // No lost certificates: everything a device holds verifies on-chain.
    let mut devices: Vec<(&str, &crate::world::Device)> = world.devices.iter().collect();
    devices.sort_by_key(|(name, _)| *name);
    for (name, device) in &devices {
        if let Some(cert) = device.certificate {
            match world
                .dex
                .verify_certificate(&world.chain, &cert, &device.webid)
            {
                Ok(true) => {}
                Ok(false) => {
                    return Err(format!(
                        "device {name} holds a certificate the chain rejects"
                    ))
                }
                Err(e) => return Err(format!("certificate check for {name} failed: {e}")),
            }
        }
    }

    // Copy consistency: every live TEE copy is registered on-chain.
    for (name, device) in &devices {
        let mut resources: Vec<&str> = device.tee.resources().collect();
        resources.sort_unstable();
        for resource in resources {
            if !device.tee.has_copy(resource) {
                continue;
            }
            let copies = world
                .dex
                .list_copies(&world.chain, resource)
                .map_err(|e| format!("list_copies({resource}) failed: {e}"))?;
            if !copies.iter().any(|c| c.device == *name) {
                return Err(format!(
                    "device {name} holds an unregistered copy of {resource}"
                ));
            }
        }
    }

    // Consistent gas accounting: consumed gas == proposer income.
    let ledger_total: u64 = world.chain.gas_used_total();
    let validator_income: u128 = world
        .chain
        .validator_addresses()
        .iter()
        .map(|addr| world.chain.balance(addr))
        .sum();
    let expected = ledger_total as u128 * world.chain.gas_price();
    if validator_income != expected {
        return Err(format!(
            "gas accounting drifted: validators hold {validator_income}, ledger says {expected}"
        ));
    }

    // Oracle cursors never stranded: each cursor stays within
    // `[prune_horizon, height]` — never ahead of the chain, and never left
    // pointing into a pruned range after a quiesced run (the driver's
    // checkpoint-resync path must have lifted it).
    let height = world.chain.height();
    let horizon = world.chain.prune_horizon();
    if world.push_out.cursor() > height {
        return Err(format!(
            "push-out cursor {} ran ahead of height {height}",
            world.push_out.cursor()
        ));
    }
    if world.pull_in.cursor() > height {
        return Err(format!(
            "pull-in cursor {} ran ahead of height {height}",
            world.pull_in.cursor()
        ));
    }
    if world.push_out.cursor() < horizon {
        return Err(format!(
            "push-out cursor {} stranded below prune horizon {horizon}",
            world.push_out.cursor()
        ));
    }
    if world.pull_in.cursor() < horizon {
        return Err(format!(
            "pull-in cursor {} stranded below prune horizon {horizon}",
            world.pull_in.cursor()
        ));
    }

    // Checkpoint integrity: every resident checkpoint block's sealed state
    // commitment matches the chain's recorded header, and the latest
    // checkpoint's block is still resident — a fault can never prune (or
    // forge) the block a finalized checkpoint anchors to.
    world
        .chain
        .verify_checkpoints()
        .map_err(|e| format!("checkpoint integrity violated: {e}"))?;

    // Page-store integrity: every world-state page — resident or spilled —
    // decodes, verifies its digest, covers its directory range, and the
    // full slot multiset still reproduces the state commitment
    // accumulator. No read can have observed a stale evicted page if this
    // holds at quiescence, because fault-ins re-verify the same digests.
    world
        .chain
        .verify_pages()
        .map_err(|e| format!("page-store integrity violated: {e}"))?;
    Ok(())
}

/// Serializes everything observable about a run — metric counters (which
/// include the driver's retry/backoff and suspension schedules), latency
/// histograms, the structured trace, the clock, the chain height and the
/// gas ledger — into one string. Identically-seeded runs must produce
/// byte-identical fingerprints.
pub fn fingerprint<L: Ledger>(world: &mut World<L>) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    for (name, value) in world.metrics.counters() {
        let _ = writeln!(out, "counter {name} = {value}");
    }
    let names: Vec<String> = world.metrics.histogram_names().map(String::from).collect();
    for name in names {
        let summary = world.metrics.histogram_mut(&name).summary();
        let _ = writeln!(out, "histogram {name}: {summary}");
    }
    for event in world.trace.events() {
        let _ = writeln!(out, "{event}");
    }
    let _ = writeln!(out, "clock {}", world.clock.now());
    let _ = writeln!(out, "height {}", world.chain.height());
    let gas: u64 = world.chain.gas_used_total();
    let _ = writeln!(out, "gas {gas}");
    // The state commitment covers every live slot regardless of where its
    // page resides, so two fingerprint-equal runs hold identical world
    // state — not merely identical observable traces.
    let _ = writeln!(out, "commitment {}", world.chain.state_commitment());
    out
}

/// A mixed concurrent request batch over one resource: (re-)accesses from
/// every device racing two monitoring rounds — the workload the chaos
/// suite and the E8 experiment both throw at fault plans. Launched against
/// a world whose devices already hold copies, the monitoring rounds probe
/// every holder while the accesses are in flight.
pub fn mixed_batch(owner: &str, path: &str, resource: &str, devices: usize) -> Vec<Request> {
    let mut requests: Vec<Request> = (0..devices)
        .map(|i| Request::ResourceAccess {
            device: format!("device-{i}"),
            resource: resource.to_string(),
        })
        .collect();
    requests.push(Request::PolicyMonitoring {
        webid: owner.to_string(),
        path: path.to_string(),
    });
    requests.push(Request::PolicyMonitoring {
        webid: owner.to_string(),
        path: path.to_string(),
    });
    requests
}

/// A policy-churn batch: the [`mixed_batch`] workload plus a *mid-flight
/// policy modification* that tightens retention to zero — every copy
/// holder must delete on update receipt while re-accesses and monitoring
/// rounds race the fan-out (the ongoing-authorization-on-policy-change
/// scenario class of the deadline-enforcement refactor).
pub fn policy_churn_batch(owner: &str, path: &str, resource: &str, devices: usize) -> Vec<Request> {
    use duc_policy::{Action, Constraint, Duty, Rule};
    use duc_sim::SimDuration as D;

    let mut requests = mixed_batch(owner, path, resource, devices);
    requests.push(Request::PolicyModification {
        webid: owner.to_string(),
        path: path.to_string(),
        rules: vec![Rule::permit([Action::Use]).with_constraint(Constraint::MaxRetention(D::ZERO))],
        duties: vec![Duty::DeleteWithin(D::ZERO), Duty::LogAccesses],
    });
    requests
}

/// Builds the canonical chaos launch pad: one owner at `owner` with the
/// shared resource at `path` (4 KiB, 7-day retention), and `n_devices`
/// devices that have subscribed, indexed and fetched a governed copy — so
/// a [`mixed_batch`] launched against it re-accesses the resource while
/// its monitoring rounds probe every copy holder. Shared by the chaos test
/// suite and the E8 experiment so both exercise the same workload.
pub fn launch_pad(
    owner: &str,
    path: &str,
    n_devices: usize,
    config: crate::world::WorldConfig,
) -> (World, String) {
    launch_pad_in(World::new(config), owner, path, n_devices)
}

/// [`launch_pad`] over a caller-supplied world — the backend-conformance
/// suite uses this to throw the identical workload at every [`Ledger`]
/// backend.
pub fn launch_pad_in<L: Ledger>(
    mut world: World<L>,
    owner: &str,
    path: &str,
    n_devices: usize,
) -> (World<L>, String) {
    use duc_policy::{Action, Constraint, Duty, Rule, UsagePolicy};

    world.add_owner(owner, "https://owner.pod/");
    for i in 0..n_devices {
        world.add_device(format!("device-{i}"), format!("https://c{i}.id/me"));
    }
    world.pod_initiation(owner).expect("pod init");
    let iri = world.owner(owner).pod_manager.pod().iri_of(path);
    let policy = UsagePolicy::builder(format!("{iri}#policy"), iri.clone(), owner)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7))),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
        .duty(Duty::LogAccesses)
        .build();
    let resource = world
        .resource_initiation(
            owner,
            path,
            duc_solid::Body::Binary(vec![0xA5; 4 << 10]),
            policy,
            vec![],
        )
        .expect("resource init");
    let mut tickets = Vec::new();
    for i in 0..n_devices {
        tickets.push(world.submit(Request::MarketSubscribe {
            device: format!("device-{i}"),
        }));
        tickets.push(world.submit(Request::ResourceIndexing {
            device: format!("device-{i}"),
            resource: resource.clone(),
        }));
    }
    world.run_until_idle();
    for t in tickets {
        t.poll(&mut world).expect("completed").expect("setup ok");
    }
    let mut accesses = Vec::new();
    for i in 0..n_devices {
        accesses.push(world.submit(Request::ResourceAccess {
            device: format!("device-{i}"),
            resource: resource.clone(),
        }));
    }
    world.run_until_idle();
    for t in accesses {
        t.poll(&mut world)
            .expect("completed")
            .expect("initial access ok");
    }
    (world, resource)
}
