//! # duc-crypto — cryptographic substrate
//!
//! The architecture needs hashing (block and resource integrity), message
//! authentication, symmetric encryption (TEE sealed storage, on-chain policy
//! confidentiality), digital signatures (transactions, attestation quotes,
//! usage evidence) and Merkle commitments (block bodies). No cryptography
//! crates are available offline, so everything here is implemented from
//! primary specifications:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (validated against NIST vectors).
//! * [`hmac`] — RFC 2104 HMAC-SHA-256 (validated against RFC 4231 vectors).
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher.
//! * [`schnorr`] — Schnorr signatures over a 63-bit safe-prime group.
//! * [`merkle`] — binary Merkle trees with inclusion proofs.
//!
//! ## Security model
//!
//! The Schnorr group is deliberately small (a 63-bit safe prime): discrete
//! logs there resist *accidental* forgery in tests but not a determined
//! attacker. This is a documented substitution (see DESIGN.md §2) — the
//! architecture's behaviour depends on the *API contract* of signatures
//! (unforgeability within the simulation, key identity, tamper evidence),
//! not on production-grade key sizes.

pub mod chacha20;
pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod schnorr;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use hmac::hmac_sha256;
pub use merkle::{MerkleProof, MerkleTree};
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature, SignatureError};
pub use sha256::{sha256, Digest, Sha256};

/// Hashes the concatenation of parts, domain-separating each part by its
/// length. Used everywhere a composite structure needs one digest.
///
/// # Example
/// ```
/// let a = duc_crypto::hash_parts(&[b"ab", b"c"]);
/// let b = duc_crypto::hash_parts(&[b"a", b"bc"]);
/// assert_ne!(a, b, "length prefixes prevent boundary collisions");
/// ```
pub fn hash_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_parts_is_injective_on_boundaries() {
        let a = hash_parts(&[b"ab", b"c"]);
        let b = hash_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_parts_of_same_input_is_stable() {
        assert_eq!(hash_parts(&[b"x", b"y"]), hash_parts(&[b"x", b"y"]));
    }
}
