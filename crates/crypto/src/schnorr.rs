//! Schnorr signatures over a safe-prime group (simulation-scale).
//!
//! The group is the order-`q` subgroup of quadratic residues of `Z_p^*`,
//! where `p = 2q + 1` is a safe prime found deterministically at first use
//! and verified with deterministic Miller–Rabin (exact for 64-bit inputs).
//! Nonces are derived deterministically (RFC 6979 in spirit) via
//! HMAC-SHA-256, so signing needs no RNG and never reuses a nonce across
//! distinct messages.
//!
//! This is the documented substitution for secp256k1/EdDSA (DESIGN.md §2):
//! the 63-bit modulus is *not* production-grade, but sign/verify semantics,
//! key identity and tamper evidence — the properties the architecture
//! exercises — are faithfully provided.

use std::fmt;
use std::sync::OnceLock;

use crate::hmac::hmac_sha256;
use crate::sha256::Digest;
use crate::{hash_parts, hex};

/// Group parameters: safe prime `p = 2q + 1`, subgroup order `q`,
/// generator `g` of the order-`q` subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupParams {
    /// The field prime.
    pub p: u64,
    /// The subgroup order, `(p - 1) / 2`.
    pub q: u64,
    /// A generator of the subgroup of quadratic residues.
    pub g: u64,
}

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin, exact for all `n < 2^64`
/// (witness set due to Sinclair).
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn find_group() -> GroupParams {
    // Deterministic search: first safe prime p = 2q+1 with q >= 2^61 + 1.
    let mut q: u64 = (1u64 << 61) + 1;
    loop {
        if is_prime_u64(q) {
            let p = 2 * q + 1;
            if is_prime_u64(p) {
                // g = 4 = 2^2 is a quadratic residue, hence has order q
                // (it cannot be 1 for p > 5).
                let g = 4u64;
                debug_assert_eq!(pow_mod(g, q, p), 1, "g generates the order-q subgroup");
                return GroupParams { p, q, g };
            }
        }
        q += 2;
    }
}

/// The process-wide group parameters (computed once, deterministic).
pub fn group() -> &'static GroupParams {
    static GROUP: OnceLock<GroupParams> = OnceLock::new();
    GROUP.get_or_init(find_group)
}

/// A secret scalar.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(u64);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the scalar.
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A public group element `g^x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk:{}", hex::encode(&self.0.to_be_bytes()))
    }
}

impl PublicKey {
    /// The key as bytes (big-endian), for hashing into addresses.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

impl Signature {
    /// Serializes to 16 bytes (big-endian `e`, then `s`).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses 16 bytes produced by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() != 16 {
            return None;
        }
        Some(Signature {
            e: u64::from_be_bytes(bytes[..8].try_into().ok()?),
            s: u64::from_be_bytes(bytes[8..].try_into().ok()?),
        })
    }
}

/// Signature verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// A signing key pair.
///
/// # Example
/// ```
/// use duc_crypto::KeyPair;
/// let kp = KeyPair::from_seed(b"alice");
/// let sig = kp.sign(b"register resource r1");
/// assert!(kp.public().verify(b"register resource r1", &sig).is_ok());
/// assert!(kp.public().verify(b"register resource r2", &sig).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

fn scalar_from_digest(d: &Digest, q: u64) -> u64 {
    let mut v = u64::from_be_bytes(d.as_bytes()[..8].try_into().expect("8 bytes"));
    v %= q;
    v
}

impl KeyPair {
    /// Derives a key pair deterministically from seed bytes.
    ///
    /// Identical seeds yield identical keys — convenient for reproducible
    /// simulations where "Alice's key" must be stable across runs.
    pub fn from_seed(seed: &[u8]) -> KeyPair {
        let grp = group();
        let d = hmac_sha256(b"duc/keygen", seed);
        let mut x = scalar_from_digest(&d, grp.q);
        if x == 0 {
            x = 1;
        }
        let public = PublicKey(pow_mod(grp.g, x, grp.p));
        KeyPair {
            secret: SecretKey(x),
            public,
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a deterministic HMAC-derived nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let grp = group();
        let x_bytes = self.secret.0.to_be_bytes();
        let mut k = scalar_from_digest(&hmac_sha256(&x_bytes, message), grp.q);
        if k == 0 {
            k = 1;
        }
        let r = pow_mod(grp.g, k, grp.p);
        let e = challenge(r, self.public, message, grp.q);
        let s = (k as u128 + mul_mod(e, self.secret.0, grp.q) as u128) % grp.q as u128;
        Signature { e, s: s as u64 }
    }
}

fn challenge(r: u64, public: PublicKey, message: &[u8], q: u64) -> u64 {
    let d = hash_parts(&[
        b"duc/schnorr",
        &r.to_be_bytes(),
        &public.to_bytes(),
        message,
    ]);
    scalar_from_digest(&d, q)
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    ///
    /// # Errors
    /// Returns [`SignatureError`] if the signature does not verify.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        let grp = group();
        if sig.e >= grp.q || sig.s >= grp.q || self.0 == 0 || self.0 >= grp.p {
            return Err(SignatureError);
        }
        // R' = g^s * P^(-e)  =  g^s * P^(q - e)   (P has order q)
        let neg_e = (grp.q - sig.e) % grp.q;
        let r_prime = mul_mod(
            pow_mod(grp.g, sig.s, grp.p),
            pow_mod(self.0, neg_e, grp.p),
            grp.p,
        );
        if challenge(r_prime, *self, message, grp.q) == sig.e {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_params_are_a_safe_prime_group() {
        let grp = group();
        assert!(is_prime_u64(grp.p));
        assert!(is_prime_u64(grp.q));
        assert_eq!(grp.p, 2 * grp.q + 1);
        assert_eq!(pow_mod(grp.g, grp.q, grp.p), 1, "g has order dividing q");
        assert_ne!(grp.g, 1);
    }

    #[test]
    fn miller_rabin_known_values() {
        for p in [2u64, 3, 5, 7, 97, 7919, 2_147_483_647] {
            assert!(is_prime_u64(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 100, 561, 341, 1_000_000] {
            assert!(!is_prime_u64(c), "{c} is composite");
        }
        // Strong pseudoprime to several bases; MR with full witness set
        // must still reject it.
        assert!(!is_prime_u64(3_215_031_751));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"alice");
        for msg in [&b"m1"[..], b"", b"a much longer message with content"] {
            let sig = kp.sign(msg);
            kp.public().verify(msg, &sig).expect("valid signature");
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = kp.sign(b"original");
        assert_eq!(kp.public().verify(b"tampered", &sig), Err(SignatureError));
    }

    #[test]
    fn wrong_key_rejected() {
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let sig = alice.sign(b"payload");
        assert!(bob.public().verify(b"payload", &sig).is_err());
    }

    #[test]
    fn mangled_signature_rejected() {
        let kp = KeyPair::from_seed(b"carol");
        let sig = kp.sign(b"payload");
        let bad_e = Signature {
            e: sig.e ^ 1,
            ..sig
        };
        let bad_s = Signature {
            s: sig.s ^ 1,
            ..sig
        };
        assert!(kp.public().verify(b"payload", &bad_e).is_err());
        assert!(kp.public().verify(b"payload", &bad_s).is_err());
    }

    #[test]
    fn out_of_range_signature_rejected() {
        let kp = KeyPair::from_seed(b"dave");
        let grp = group();
        let sig = Signature { e: grp.q, s: 0 };
        assert!(kp.public().verify(b"x", &sig).is_err());
    }

    #[test]
    fn deterministic_keys_and_signatures() {
        let a1 = KeyPair::from_seed(b"alice");
        let a2 = KeyPair::from_seed(b"alice");
        assert_eq!(a1.public(), a2.public());
        assert_eq!(a1.sign(b"m"), a2.sign(b"m"));
        assert_ne!(
            a1.sign(b"m"),
            a1.sign(b"n"),
            "different messages, different sigs"
        );
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = KeyPair::from_seed(b"erin");
        let sig = kp.sign(b"bytes");
        let parsed = Signature::from_bytes(&sig.to_bytes()).expect("16 bytes");
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&[0u8; 15]).is_none());
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let kp = KeyPair::from_seed(b"frank");
        let shown = format!("{kp:?}");
        assert!(shown.contains("redacted"), "{shown}");
        assert!(
            !shown.contains(&kp.secret.0.to_string()),
            "scalar leaked: {shown}"
        );
    }

    #[test]
    fn public_key_display_is_stable() {
        let kp = KeyPair::from_seed(b"grace");
        let shown = format!("{}", kp.public());
        assert!(shown.starts_with("pk:"));
        assert_eq!(shown.len(), 3 + 16);
    }
}
