//! Binary Merkle trees with inclusion proofs.
//!
//! Blocks commit to their transaction set through a Merkle root; the
//! monitoring contract commits to evidence batches the same way, letting a
//! pod manager verify one piece of evidence without downloading the batch.

use crate::sha256::{Digest, Sha256};

fn hash_leaf(data: &[u8]) -> Digest {
    // Domain separation between leaves and interior nodes prevents
    // second-preimage tree-splicing attacks.
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A step in an inclusion proof: the sibling digest and its side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStep {
    /// Sibling is on the left: parent = H(sibling ‖ current).
    Left(Digest),
    /// Sibling is on the right: parent = H(current ‖ sibling).
    Right(Digest),
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MerkleProof {
    steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// The proof path from leaf to root.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Recomputes the root implied by `leaf_data` under this proof.
    pub fn compute_root(&self, leaf_data: &[u8]) -> Digest {
        let mut acc = hash_leaf(leaf_data);
        for step in &self.steps {
            acc = match step {
                ProofStep::Left(sib) => hash_node(sib, &acc),
                ProofStep::Right(sib) => hash_node(&acc, sib),
            };
        }
        acc
    }

    /// Verifies that `leaf_data` is included under `root`.
    pub fn verify(&self, leaf_data: &[u8], root: &Digest) -> bool {
        self.compute_root(leaf_data) == *root
    }
}

/// An immutable Merkle tree built over a list of leaf byte-strings.
///
/// # Example
/// ```
/// use duc_crypto::MerkleTree;
/// let tree = MerkleTree::from_leaves(&[b"tx0".to_vec(), b"tx1".to_vec(), b"tx2".to_vec()]);
/// let proof = tree.prove(1).expect("leaf 1 exists");
/// assert!(proof.verify(b"tx1", &tree.root()));
/// assert!(!proof.verify(b"tx9", &tree.root()));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf digests, last level = [root].
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaves.
    ///
    /// An empty leaf set yields the conventional "empty root"
    /// (`H(0x00)`-leaf of the empty string), so every tree has a root.
    pub fn from_leaves(leaves: &[Vec<u8>]) -> MerkleTree {
        let leaf_digests: Vec<Digest> = if leaves.is_empty() {
            vec![hash_leaf(b"")]
        } else {
            leaves.iter().map(|l| hash_leaf(l)).collect()
        };
        let mut levels = vec![leaf_digests];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let parent = if pair.len() == 2 {
                    hash_node(&pair[0], &pair[1])
                } else {
                    // Odd node is promoted by pairing with itself.
                    hash_node(&pair[0], &pair[0])
                };
                next.push(parent);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves committed (1 for the empty tree's sentinel leaf).
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut steps = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = if sibling_idx < level.len() {
                level[sibling_idx]
            } else {
                level[idx] // odd node paired with itself
            };
            steps.push(if idx.is_multiple_of(2) {
                ProofStep::Right(sibling)
            } else {
                ProofStep::Left(sibling)
            });
            idx /= 2;
        }
        Some(MerkleProof { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves(&leaves(1));
        assert_eq!(tree.root(), hash_leaf(b"leaf-0"));
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0).unwrap();
        assert!(proof.steps().is_empty());
        assert!(proof.verify(b"leaf-0", &tree.root()));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let ls = leaves(n);
            let tree = MerkleTree::from_leaves(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(proof.verify(leaf, &tree.root()), "n={n}, i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let tree = MerkleTree::from_leaves(&leaves(8));
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(b"leaf-4", &tree.root()));
        assert!(!proof.verify(b"", &tree.root()));
    }

    #[test]
    fn proof_fails_under_wrong_root() {
        let t1 = MerkleTree::from_leaves(&leaves(4));
        let t2 = MerkleTree::from_leaves(&leaves(5));
        let proof = t1.prove(0).unwrap();
        assert!(!proof.verify(b"leaf-0", &t2.root()));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::from_leaves(&leaves(3));
        assert!(tree.prove(3).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = MerkleTree::from_leaves(&leaves(6)).root();
        for i in 0..6 {
            let mut ls = leaves(6);
            ls[i].push(b'!');
            assert_ne!(MerkleTree::from_leaves(&ls).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn root_depends_on_order() {
        let mut ls = leaves(4);
        let orig = MerkleTree::from_leaves(&ls).root();
        ls.swap(0, 1);
        assert_ne!(MerkleTree::from_leaves(&ls).root(), orig);
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let t1 = MerkleTree::from_leaves(&[]);
        let t2 = MerkleTree::from_leaves(&[]);
        assert_eq!(t1.root(), t2.root());
        assert_ne!(t1.root(), Digest::ZERO);
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A single leaf equal to `0x01 || a || b` must not produce the same
        // root as the two-leaf tree of (a, b).
        let two = MerkleTree::from_leaves(&[b"a".to_vec(), b"b".to_vec()]);
        let la = hash_leaf(b"a");
        let lb = hash_leaf(b"b");
        let mut forged = vec![0x01u8];
        forged.extend_from_slice(la.as_bytes());
        forged.extend_from_slice(lb.as_bytes());
        let one = MerkleTree::from_leaves(&[forged]);
        assert_ne!(one.root(), two.root());
    }
}
