//! SHA-256 (FIPS 180-4), implemented from the specification.

use std::fmt;

use crate::hex;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest (used as a sentinel, e.g. genesis parent hash).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex encoding.
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    /// Returns `None` when the input is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = hex::decode(s)?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Digest(arr))
    }

    /// A short 8-hex-character prefix for logs.
    pub fn short(&self) -> String {
        hex::encode(&self.0[..4])
    }

    /// XOR of two digests (used to accumulate unordered sets).
    pub fn xor(&self, other: &Digest) -> Digest {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        Digest(out)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(b: [u8; 32]) -> Self {
        Digest(b)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
/// ```
/// use duc_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the block.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // The length update above must not count toward the message length,
        // but `update` already advanced `total_len`; we captured it first.
        let mut block_tail = [0u8; 8];
        block_tail.copy_from_slice(&bit_len.to_be_bytes());
        // Write length directly into the buffer and compress.
        self.buffer[56..64].copy_from_slice(&block_tail);
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known vectors.
    #[test]
    fn empty_string_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one_shot = sha256(&data);
        for chunk_size in [1usize, 3, 63, 64, 65, 127, 500] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths_hash_distinctly() {
        // 55/56/64 bytes exercise the padding edge cases.
        let d55 = sha256(&[0u8; 55]);
        let d56 = sha256(&[0u8; 56]);
        let d64 = sha256(&[0u8; 64]);
        assert_ne!(d55, d56);
        assert_ne!(d56, d64);
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = sha256(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_hex()).expect("valid hex");
        assert_eq!(parsed, d);
        assert!(Digest::from_hex("xyz").is_none());
        assert!(Digest::from_hex("aa").is_none(), "too short");
    }

    #[test]
    fn digest_helpers() {
        let d = sha256(b"helpers");
        assert_eq!(d.short().len(), 8);
        assert_eq!(d.xor(&d), Digest::ZERO);
        assert_eq!(d.xor(&Digest::ZERO), d);
        assert_eq!(format!("{d}").len(), 64);
        assert!(format!("{d:?}").starts_with("Digest("));
    }
}
