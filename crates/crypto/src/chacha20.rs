//! ChaCha20 stream cipher (RFC 8439), implemented from the specification.
//!
//! Used for TEE sealed storage and for the optional encryption of on-chain
//! policy metadata in the privacy experiment (E9). Encryption and decryption
//! are the same operation (XOR keystream).

/// ChaCha20 keystream generator / stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u8; 32],
    nonce: [u8; 12],
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a cipher instance for a 256-bit key and 96-bit nonce.
    pub fn new(key: [u8; 32], nonce: [u8; 12]) -> Self {
        ChaCha20 { key, nonce }
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                self.key[i * 4],
                self.key[i * 4 + 1],
                self.key[i * 4 + 2],
                self.key[i * 4 + 3],
            ]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                self.nonce[i * 4],
                self.nonce[i * 4 + 1],
                self.nonce[i * 4 + 2],
                self.nonce[i * 4 + 3],
            ]);
        }
        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data`
    /// in place. Applying the same operation twice restores the plaintext.
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(initial_counter.wrapping_add(block_idx as u32));
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
        }
    }

    /// Convenience: encrypts `plaintext` with counter 1 (RFC 8439 convention
    /// reserves counter 0 for the Poly1305 key, which we do not use).
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.apply_keystream(1, &mut out);
        out
    }

    /// Convenience: decrypts data produced by [`ChaCha20::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Vec<u8> {
        self.encrypt(ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex::decode("000000090000004a00000000")
            .unwrap()
            .try_into()
            .unwrap();
        let cipher = ChaCha20::new(key, nonce);
        let block = cipher.block(1);
        assert_eq!(
            hex::encode(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
                .replace(char::is_whitespace, "")
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex::decode("000000000000004a00000000")
            .unwrap()
            .try_into()
            .unwrap();
        let cipher = ChaCha20::new(key, nonce);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ct = cipher.encrypt(plaintext);
        assert_eq!(
            hex::encode(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(ct.len(), plaintext.len());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let cipher = ChaCha20::new([7u8; 32], [9u8; 12]);
        let msg = b"usage policy: delete after one week".to_vec();
        let ct = cipher.encrypt(&msg);
        assert_ne!(ct, msg);
        assert_eq!(cipher.decrypt(&ct), msg);
    }

    #[test]
    fn different_nonces_differ() {
        let c1 = ChaCha20::new([1u8; 32], [0u8; 12]);
        let c2 = ChaCha20::new([1u8; 32], [1u8; 12]);
        assert_ne!(c1.encrypt(b"same message"), c2.encrypt(b"same message"));
    }

    #[test]
    fn keystream_continuation_matches_one_shot() {
        let cipher = ChaCha20::new([3u8; 32], [4u8; 12]);
        let mut whole = vec![0u8; 130];
        cipher.apply_keystream(1, &mut whole);
        // Same keystream applied to an all-zero buffer in two chunks at the
        // correct block offsets.
        let mut part1 = vec![0u8; 64];
        let mut part2 = vec![0u8; 66];
        cipher.apply_keystream(1, &mut part1);
        cipher.apply_keystream(2, &mut part2);
        assert_eq!(&whole[..64], &part1[..]);
        assert_eq!(&whole[64..], &part2[..]);
    }

    #[test]
    fn empty_input_is_fine() {
        let cipher = ChaCha20::new([0u8; 32], [0u8; 12]);
        assert!(cipher.encrypt(b"").is_empty());
    }
}
