//! HMAC-SHA-256 (RFC 2104), validated against RFC 4231 test vectors.

use crate::sha256::{sha256, Digest, Sha256};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Used for deterministic Schnorr nonces, TEE sealing-key derivation and
/// attestation MACs.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Derives a subkey from a master key and a context label (HKDF-like
/// expand-only construction: `HMAC(master, label || 0x01)`).
pub fn derive_key(master: &[u8], label: &[u8]) -> Digest {
    let mut msg = Vec::with_capacity(label.len() + 1);
    msg.extend_from_slice(label);
    msg.push(0x01);
    hmac_sha256(master, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let out = hmac_sha256(&key, &data);
        assert_eq!(
            out.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            out.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_give_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn derive_key_separates_labels() {
        let master = b"master-secret";
        let sealing = derive_key(master, b"tee/sealing");
        let attest = derive_key(master, b"tee/attestation");
        assert_ne!(sealing, attest);
        assert_eq!(sealing, derive_key(master, b"tee/sealing"), "deterministic");
    }
}
