//! Minimal hex encoding/decoding helpers.

/// Encodes bytes as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let chars: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        chars
            .chunks(2)
            .map(|pair| ((pair[0] << 4) | pair[1]) as u8)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 0xAB, 0xFF, 0x10];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn known_encoding() {
        assert_eq!(encode(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
    }

    #[test]
    fn decode_is_case_insensitive() {
        assert_eq!(decode("DeAdBeEf").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode("abc").is_none(), "odd length");
        assert!(decode("zz").is_none(), "non-hex");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
