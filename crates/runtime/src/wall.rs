//! Wall-clock implementation of the [`Clock`] trait.
//!
//! Std-only (the build is offline, so no tokio): a dedicated timer thread
//! sleeps on a `BinaryHeap` of due instants via `Condvar::wait_timeout`,
//! fires due timers into a queue, and wakes the consumer. Logical time is
//! anchored at a genesis `Instant`, optionally compressed by an integer
//! `scale` so experiments replay long simulated schedules in a short real
//! run (logical elapsed = real elapsed × scale). Periodic timers follow
//! the same genesis-anchored grid as [`SimClock`], with skip-missed-tick
//! semantics when firings fall behind.
//!
//! [`WallHandle`]s let producer threads inject wakeups from outside the
//! armed set — this is how worker threads feed requests into the single
//! consumer that owns the (deliberately `!Send`) world state machines.
//!
//! Dropping the [`WallClock`] joins the timer thread; nothing is leaked.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use duc_sim::{SimDuration, SimTime};

use crate::clock::{tick_after, tick_at_or_after, Arming, Clock, TimerId, Wakeup};

/// Heap entry: `(due nanos, insertion seq, timer id, generation)`.
/// Ordered by `(due, seq)` so ties fire in arming order, matching the sim
/// scheduler. The generation stamps entries so a re-arm invalidates any
/// stale entry still sitting in the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    due: u64,
    seq: u64,
    id: u64,
    generation: u64,
}

#[derive(Debug)]
struct WallTimer<T> {
    due: SimTime,
    generation: u64,
    arming: Arming<T>,
}

struct State<T> {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    timers: HashMap<u64, WallTimer<T>>,
    fired: VecDeque<Wakeup<T>>,
    next_seq: u64,
    shutdown: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    wake: Condvar,
    next_id: AtomicU64,
    injectors: AtomicUsize,
    genesis: Instant,
    origin: SimTime,
    scale: u64,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Logical now: `origin + real elapsed × scale`, saturating.
    fn now_logical(&self) -> SimTime {
        let real = self.genesis.elapsed().as_nanos();
        let logical = real.saturating_mul(self.scale as u128);
        self.origin + SimDuration::from_nanos(u64::try_from(logical).unwrap_or(u64::MAX))
    }

    /// Real sleep needed for `span` of logical time (ceil, never zero).
    fn real_for(&self, span: SimDuration) -> Duration {
        Duration::from_nanos(span.as_nanos().div_ceil(self.scale).max(1))
    }
}

/// Takes the next delivered wakeup off the queue, retiring a fired
/// one-shot timer (periodic and injected wakeups have no armed entry, or
/// re-arm from the timer thread).
fn pop_delivered<T>(state: &mut State<T>) -> Option<Wakeup<T>> {
    let w = state.fired.pop_front()?;
    if matches!(
        state.timers.get(&w.id.0).map(|t| &t.arming),
        Some(Arming::Once(_))
    ) {
        state.timers.remove(&w.id.0);
    }
    Some(w)
}

fn timer_loop<T: Clone + Send>(shared: &Shared<T>) {
    let mut state = shared.lock();
    loop {
        if state.shutdown {
            return;
        }
        let now = shared.now_logical();
        let mut fired_any = false;
        while let Some(&Reverse(head)) = state.heap.peek() {
            if SimTime::from_nanos(head.due) > now {
                break;
            }
            state.heap.pop();
            let Some(timer) = state.timers.get(&head.id) else {
                continue; // cancelled; stale entry
            };
            if timer.generation != head.generation {
                continue; // re-armed; stale entry
            }
            match &timer.arming {
                Arming::Once(payload) => {
                    // The timer stays in the armed map until the consumer
                    // takes delivery — matching SimClock, so a cancel or
                    // re-arm racing this firing still wins.
                    let payload = payload.clone();
                    let due = timer.due;
                    state.fired.push_back(Wakeup {
                        id: TimerId(head.id),
                        due,
                        at: now,
                        payload,
                    });
                }
                Arming::Periodic {
                    anchor,
                    period,
                    payload,
                } => {
                    let payload = payload.clone();
                    let due = timer.due;
                    // Skip missed grid points: next firing is the first
                    // tick still in the future.
                    let next = tick_after(*anchor, *period, due.max(now));
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    state.heap.push(Reverse(HeapEntry {
                        due: next.as_nanos(),
                        seq,
                        id: head.id,
                        generation: head.generation,
                    }));
                    let timer = state.timers.get_mut(&head.id).expect("present above");
                    timer.due = next;
                    // A slow consumer sees at most one queued firing per
                    // periodic timer — stale ticks coalesce into the
                    // latest, the delivery-side half of skip-missed.
                    state.fired.retain(|w| w.id.0 != head.id);
                    state.fired.push_back(Wakeup {
                        id: TimerId(head.id),
                        due,
                        at: now,
                        payload,
                    });
                }
            }
            fired_any = true;
        }
        if fired_any {
            shared.wake.notify_all();
        }
        let sleep = state.heap.peek().map(|&Reverse(head)| {
            shared.real_for(SimTime::from_nanos(head.due).saturating_since(shared.now_logical()))
        });
        // Even with no armed timer the idle wait is bounded: notify and
        // wait can race on the host, and a lost wakeup must degrade to a
        // bounded re-check, not a stuck timer thread.
        let d = sleep.unwrap_or(Duration::from_millis(100));
        state = match shared.wake.wait_timeout(state, d) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

/// A handle for injecting wakeups into a [`WallClock`] from other threads.
///
/// While any handle is alive the consumer's `wait()` keeps blocking even
/// with no armed timers (`has_external()` is true); dropping the last
/// handle lets an idle consumer observe completion.
pub struct WallHandle<T> {
    shared: Arc<Shared<T>>,
}

impl<T> WallHandle<T> {
    /// Delivers `payload` to the consumer as an immediately-due wakeup.
    pub fn inject(&self, payload: T) -> TimerId {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.shared.now_logical();
        let mut state = self.shared.lock();
        state.fired.push_back(Wakeup {
            id: TimerId(id),
            due: now,
            at: now,
            payload,
        });
        drop(state);
        self.shared.wake.notify_all();
        TimerId(id)
    }

    /// The clock's current logical instant.
    pub fn now(&self) -> SimTime {
        self.shared.now_logical()
    }
}

impl<T> Clone for WallHandle<T> {
    fn clone(&self) -> Self {
        self.shared.injectors.fetch_add(1, Ordering::SeqCst);
        WallHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for WallHandle<T> {
    fn drop(&mut self) {
        self.shared.injectors.fetch_sub(1, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }
}

/// Real-time [`Clock`] backed by a dedicated timer thread.
pub struct WallClock<T: Clone + Send + 'static> {
    shared: Arc<Shared<T>>,
    timer_thread: Option<thread::JoinHandle<()>>,
}

impl<T: Clone + Send + 'static> WallClock<T> {
    /// Creates a wall clock whose logical time starts at `origin` and
    /// advances in real time (scale 1).
    pub fn new(origin: SimTime) -> Self {
        WallClock::with_scale(origin, 1)
    }

    /// Creates a wall clock with time compression: one real nanosecond
    /// advances logical time by `scale` nanoseconds. CI smoke runs use
    /// large scales to replay seconds-long simulated schedules in
    /// milliseconds of real time.
    ///
    /// # Panics
    /// Panics if `scale` is zero.
    pub fn with_scale(origin: SimTime, scale: u64) -> Self {
        assert!(scale >= 1, "time compression scale must be >= 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                timers: HashMap::new(),
                fired: VecDeque::new(),
                next_seq: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            next_id: AtomicU64::new(0),
            injectors: AtomicUsize::new(0),
            genesis: Instant::now(),
            origin,
            scale,
        });
        let thread_shared = Arc::clone(&shared);
        let timer_thread = thread::Builder::new()
            .name("duc-wall-timer".into())
            .spawn(move || timer_loop(&thread_shared))
            .expect("spawn wall-clock timer thread");
        WallClock {
            shared,
            timer_thread: Some(timer_thread),
        }
    }

    /// Creates an injector handle for producer threads.
    pub fn handle(&self) -> WallHandle<T> {
        self.shared.injectors.fetch_add(1, Ordering::SeqCst);
        WallHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    fn arm_at(&self, due: SimTime, arming: Arming<T>) -> TimerId {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let mut state = self.shared.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Reverse(HeapEntry {
            due: due.as_nanos(),
            seq,
            id,
            generation: 0,
        }));
        state.timers.insert(
            id,
            WallTimer {
                due,
                generation: 0,
                arming,
            },
        );
        drop(state);
        self.shared.wake.notify_all();
        TimerId(id)
    }
}

impl<T: Clone + Send + 'static> Clock<T> for WallClock<T> {
    fn now(&self) -> SimTime {
        self.shared.now_logical()
    }

    fn arm(&mut self, at: SimTime, payload: T) -> TimerId {
        let at = at.max(self.shared.now_logical());
        self.arm_at(at, Arming::Once(payload))
    }

    fn arm_periodic(&mut self, anchor: SimTime, period: SimDuration, payload: T) -> TimerId {
        let due = tick_at_or_after(anchor, period, self.shared.now_logical());
        self.arm_at(
            due,
            Arming::Periodic {
                anchor,
                period,
                payload,
            },
        )
    }

    fn cancel(&mut self, id: TimerId) -> bool {
        let mut state = self.shared.lock();
        let was_armed = state.timers.remove(&id.0).is_some();
        let fired_before = state.fired.len();
        state.fired.retain(|w| w.id != id);
        let suppressed = was_armed || state.fired.len() != fired_before;
        drop(state);
        if suppressed {
            self.shared.wake.notify_all();
        }
        suppressed
    }

    fn rearm(&mut self, id: TimerId, at: SimTime) -> bool {
        let at = at.max(self.shared.now_logical());
        let mut state = self.shared.lock();
        let Some(timer) = state.timers.get_mut(&id.0) else {
            return false;
        };
        timer.due = at;
        timer.generation += 1;
        let generation = timer.generation;
        if let Arming::Periodic { anchor, .. } = &mut timer.arming {
            *anchor = at;
        }
        state.fired.retain(|w| w.id != id);
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Reverse(HeapEntry {
            due: at.as_nanos(),
            seq,
            id: id.0,
            generation,
        }));
        drop(state);
        self.shared.wake.notify_all();
        true
    }

    fn armed(&self) -> usize {
        self.shared.lock().timers.len()
    }

    fn has_external(&self) -> bool {
        self.shared.injectors.load(Ordering::SeqCst) > 0
    }

    fn wait(&mut self) -> Option<Wakeup<T>> {
        let mut state = self.shared.lock();
        loop {
            if let Some(w) = pop_delivered(&mut state) {
                return Some(w);
            }
            if state.timers.is_empty() && self.shared.injectors.load(Ordering::SeqCst) == 0 {
                return None;
            }
            // Bounded for the same reason as the timer thread's idle wait:
            // a lost wakeup costs one re-check interval, never a hang.
            state = match self
                .shared
                .wake
                .wait_timeout(state, Duration::from_millis(10))
            {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn try_wait(&mut self) -> Option<Wakeup<T>> {
        pop_delivered(&mut self.shared.lock())
    }
}

impl<T: Clone + Send + 'static> Drop for WallClock<T> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.timer_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// High-compression clock: 1 real µs = 1 logical ms.
    fn fast_clock<T: Clone + Send + 'static>() -> WallClock<T> {
        WallClock::with_scale(SimTime::ZERO, 1000)
    }

    #[test]
    fn one_shot_timers_fire_in_due_order() {
        // 1000× compression: 10/30 logical seconds = 10/30 real ms, a wide
        // guard band between arming and the first firing.
        let mut c: WallClock<&str> = fast_clock();
        c.arm(ms(30_000), "b");
        c.arm(ms(10_000), "a");
        let w1 = c.wait().unwrap();
        let w2 = c.wait().unwrap();
        assert_eq!((w1.payload, w2.payload), ("a", "b"));
        assert!(w1.at >= w1.due && w2.at >= w2.due, "never logically early");
        assert!(c.wait().is_none());
    }

    #[test]
    fn periodic_grid_is_genesis_anchored() {
        let mut c: WallClock<()> = fast_clock();
        c.arm_periodic(ms(5), SimDuration::from_millis(5), ());
        let dues: Vec<u64> = (0..3).map(|_| c.wait().unwrap().due.as_millis()).collect();
        // Grid points are exact multiples regardless of real jitter.
        assert!(dues.iter().all(|d| d % 5 == 0), "off-grid dues: {dues:?}");
        assert!(
            dues.windows(2).all(|w| w[0] < w[1]),
            "not increasing: {dues:?}"
        );
    }

    #[test]
    fn cancel_before_delivery_suppresses() {
        let mut c: WallClock<u32> = WallClock::new(SimTime::ZERO);
        let id = c.arm(SimTime::MAX, 7); // far future: cannot have fired
        assert!(c.cancel(id));
        assert!(!c.cancel(id));
        assert!(c.wait().is_none());
    }

    #[test]
    fn injection_wakes_consumer_and_handle_drop_releases_it() {
        let mut c: WallClock<u32> = fast_clock();
        let handle = c.handle();
        assert!(c.has_external());
        let producer = thread::spawn(move || {
            for v in 0..3 {
                handle.inject(v);
            }
            // handle drops here
        });
        let mut seen = Vec::new();
        while let Some(w) = c.wait() {
            seen.push(w.payload);
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(!c.has_external());
    }

    #[test]
    fn drop_joins_timer_thread() {
        let c: WallClock<()> = WallClock::new(SimTime::ZERO);
        let weak = Arc::downgrade(&c.shared);
        drop(c);
        // Drop joined the timer thread, so its strong reference on the
        // shared state is gone too — nothing detached survives.
        assert!(weak.upgrade().is_none(), "timer thread leaked");
    }

    #[test]
    fn skip_missed_ticks_never_bursts() {
        // Scale 1 with a 1ms period, then stall the consumer 50ms: the
        // timer thread must coalesce missed grid points rather than
        // delivering a burst of stale ticks.
        let mut c: WallClock<()> = WallClock::new(SimTime::ZERO);
        c.arm_periodic(SimTime::ZERO, SimDuration::from_millis(1), ());
        let first = c.wait().unwrap();
        thread::sleep(Duration::from_millis(50));
        let second = c.wait().unwrap();
        let third = c.wait().unwrap();
        assert!(second.due > first.due);
        // At most one tick was queued while we slept; the next is strictly
        // later, not a replay of the ~50 missed grid points.
        assert!(third.due > second.due);
        let queued = {
            let state = c.shared.lock();
            state.fired.len()
        };
        assert!(queued <= 1, "burst of stale ticks queued: {queued}");
    }
}
