//! Shared metrics hub: counters, gauges and histograms with label support,
//! rendered in Prometheus text exposition format (0.0.4).
//!
//! Both execution modes feed one [`MetricsHub`]: sim-mode experiments
//! mirror their [`duc_sim::MetricsRegistry`] numbers in, wall-mode runs
//! update it live from the drive loop, and the `/metrics` HTTP responder
//! ([`crate::MetricsServer`]) renders whatever is current. Metric and
//! label names are interned through `duc-intern`'s [`SyncInterner`] so
//! hot-path updates hash two `u32` Syms instead of strings.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use duc_intern::{Sym, SyncInterner};

/// Histogram bucket upper bounds, in seconds. Chosen for enforcement-lag
/// style latencies: sub-millisecond through minutes.
pub const BUCKET_BOUNDS_SECONDS: [f64; 11] = [
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramCells),
}

#[derive(Debug, Clone, Default)]
struct HistogramCells {
    /// Cumulative-style storage is rebuilt at render time; cells here are
    /// per-bucket (non-cumulative) observation counts.
    buckets: [u64; BUCKET_BOUNDS_SECONDS.len()],
    overflow: u64,
    sum_seconds: f64,
    count: u64,
}

impl HistogramCells {
    fn observe(&mut self, seconds: f64) {
        match BUCKET_BOUNDS_SECONDS.iter().position(|&b| seconds <= b) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.sum_seconds += seconds;
        self.count += 1;
    }
}

/// A label set, interned and sorted by key for a canonical identity.
type LabelKey = Vec<(Sym, Sym)>;

#[derive(Debug)]
struct Family {
    kind: FamilyKind,
    help: String,
    series: BTreeMap<LabelKey, Instrument>,
}

#[derive(Default)]
struct HubState {
    families: HashMap<Sym, Family>,
}

/// Point-in-time view of the hub, used by the bench report and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter series by `name{k="v",...}` key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series by rendered key.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram series by rendered key: (observation count, sum seconds).
    pub histograms: BTreeMap<String, (u64, f64)>,
}

/// Thread-safe, cheaply clonable registry of labelled metric families.
#[derive(Clone, Default)]
pub struct MetricsHub {
    names: SyncInterner,
    state: Arc<Mutex<HubState>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("families", &self.lock().families.len())
            .finish()
    }
}

/// Normalises an internal dotted metric name (`net.dropped.partition`)
/// into a Prometheus family name (`duc_net_dropped_partition`), appending
/// `suffix` (e.g. `"_total"`) when given.
pub fn prom_name(raw: &str, suffix: &str) -> String {
    let mut out = String::with_capacity(4 + raw.len() + suffix.len());
    out.push_str("duc_");
    let mut last_us = false;
    for ch in raw.chars() {
        let mapped = if ch.is_ascii_alphanumeric() {
            last_us = false;
            ch.to_ascii_lowercase()
        } else if last_us {
            continue;
        } else {
            last_us = true;
            '_'
        };
        out.push(mapped);
    }
    while out.ends_with('_') {
        out.pop();
    }
    out.push_str(suffix);
    out
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    fn lock(&self) -> MutexGuard<'_, HubState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn label_key(&self, labels: &[(&str, &str)]) -> LabelKey {
        let mut key: LabelKey = labels
            .iter()
            .map(|&(k, v)| (self.names.intern(k), self.names.intern(v)))
            .collect();
        key.sort_unstable_by_key(|&(k, _)| self.names.resolve(k));
        key
    }

    fn with_series<R>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: FamilyKind,
        f: impl FnOnce(&mut Instrument) -> R,
    ) -> R {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid Prometheus metric name {name:?}"
        );
        let sym = self.names.intern(name);
        let key = self.label_key(labels);
        let mut state = self.lock();
        let family = state.families.entry(sym).or_insert_with(|| Family {
            kind,
            help: String::new(),
            series: BTreeMap::new(),
        });
        debug_assert_eq!(family.kind, kind, "metric {name} re-registered as {kind:?}");
        let instrument = family.series.entry(key).or_insert_with(|| match kind {
            FamilyKind::Counter => Instrument::Counter(0),
            FamilyKind::Gauge => Instrument::Gauge(0.0),
            FamilyKind::Histogram => Instrument::Histogram(HistogramCells::default()),
        });
        f(instrument)
    }

    /// Sets the HELP line of a family (idempotent; first non-empty wins).
    pub fn set_help(&self, name: &str, help: &str) {
        let sym = self.names.intern(name);
        if let Some(family) = self.lock().families.get_mut(&sym) {
            if family.help.is_empty() {
                family.help = help.to_string();
            }
        }
    }

    /// Adds `delta` to a counter series, creating it at zero on first use.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.with_series(name, labels, FamilyKind::Counter, |i| {
            if let Instrument::Counter(v) = i {
                *v += delta;
            }
        });
    }

    /// Raises a counter series to `value` if it is below it — the mirror
    /// operation for migrating cumulative totals kept elsewhere (e.g. the
    /// sim registry) without double counting. Never decreases.
    pub fn counter_raise_to(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.with_series(name, labels, FamilyKind::Counter, |i| {
            if let Instrument::Counter(v) = i {
                *v = (*v).max(value);
            }
        });
    }

    /// Reads a counter series (zero if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let sym = self.names.intern(name);
        let key = self.label_key(labels);
        match self
            .lock()
            .families
            .get(&sym)
            .and_then(|f| f.series.get(&key))
        {
            Some(Instrument::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Sets a gauge series.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with_series(name, labels, FamilyKind::Gauge, |i| {
            if let Instrument::Gauge(v) = i {
                *v = value;
            }
        });
    }

    /// Records one observation, in seconds, into a histogram series.
    pub fn observe_seconds(&self, name: &str, labels: &[(&str, &str)], seconds: f64) {
        self.with_series(name, labels, FamilyKind::Histogram, |i| {
            if let Instrument::Histogram(h) = i {
                h.observe(seconds);
            }
        });
    }

    /// Mirrors a raw nanosecond sample set (e.g. from
    /// [`duc_sim::Histogram::samples`]) into a histogram series, replacing
    /// its cells. Used when exporting a finished sim run.
    pub fn mirror_histogram_nanos(&self, name: &str, labels: &[(&str, &str)], samples: &[u64]) {
        self.with_series(name, labels, FamilyKind::Histogram, |i| {
            if let Instrument::Histogram(h) = i {
                *h = HistogramCells::default();
                for &nanos in samples {
                    h.observe(nanos as f64 / 1e9);
                }
            }
        });
    }

    fn render_labels(&self, key: &LabelKey, extra: Option<(&str, &str)>) -> String {
        if key.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for &(k, v) in key {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{}=\"{}\"",
                self.names.resolve(k),
                escape_label_value(&self.names.resolve(v))
            );
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }

    /// Renders the full exposition in Prometheus text format 0.0.4,
    /// families sorted by name, series by label key.
    pub fn render(&self) -> String {
        let state = self.lock();
        let mut families: Vec<(Arc<str>, &Family)> = state
            .families
            .iter()
            .map(|(&sym, fam)| (self.names.resolve(sym), fam))
            .collect();
        families.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, family) in families {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (key, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", self.render_labels(key, None));
                    }
                    Instrument::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {v}", self.render_labels(key, None));
                    }
                    Instrument::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, &bound) in BUCKET_BOUNDS_SECONDS.iter().enumerate() {
                            cumulative += h.buckets[i];
                            let le = format_bound(bound);
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                self.render_labels(key, Some(("le", &le)))
                            );
                        }
                        cumulative += h.overflow;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            self.render_labels(key, Some(("le", "+Inf")))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            self.render_labels(key, None),
                            h.sum_seconds
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            self.render_labels(key, None),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }

    /// Captures a point-in-time snapshot for the bench report.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (&sym, family) in &state.families {
            let name = self.names.resolve(sym);
            for (key, instrument) in &family.series {
                let series = format!("{name}{}", self.render_labels(key, None));
                match instrument {
                    Instrument::Counter(v) => {
                        snap.counters.insert(series, *v);
                    }
                    Instrument::Gauge(v) => {
                        snap.gauges.insert(series, *v);
                    }
                    Instrument::Histogram(h) => {
                        snap.histograms.insert(series, (h.count, h.sum_seconds));
                    }
                }
            }
        }
        snap
    }
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn format_bound(bound: f64) -> String {
    // `Display` for f64 already trims trailing zeros (0.5 → "0.5", 1.0 → "1").
    format!("{bound}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_name_normalises() {
        assert_eq!(
            prom_name("net.dropped.partition", "_total"),
            "duc_net_dropped_partition_total"
        );
        assert_eq!(prom_name("gas-by-method", ""), "duc_gas_by_method");
        assert_eq!(prom_name("weird..Name!", ""), "duc_weird_name");
    }

    #[test]
    fn counters_accumulate_and_mirror_monotonically() {
        let hub = MetricsHub::new();
        hub.counter_add("duc_requests_total", &[("mode", "sim")], 2);
        hub.counter_add("duc_requests_total", &[("mode", "sim")], 3);
        assert_eq!(hub.counter("duc_requests_total", &[("mode", "sim")]), 5);
        hub.counter_raise_to("duc_requests_total", &[("mode", "sim")], 4);
        assert_eq!(hub.counter("duc_requests_total", &[("mode", "sim")]), 5);
        hub.counter_raise_to("duc_requests_total", &[("mode", "sim")], 9);
        assert_eq!(hub.counter("duc_requests_total", &[("mode", "sim")]), 9);
        assert_eq!(hub.counter("duc_requests_total", &[("mode", "wall")]), 0);
    }

    #[test]
    fn label_order_is_canonical() {
        let hub = MetricsHub::new();
        hub.counter_add("duc_x_total", &[("b", "2"), ("a", "1")], 1);
        hub.counter_add("duc_x_total", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(hub.counter("duc_x_total", &[("b", "2"), ("a", "1")]), 2);
        let text = hub.render();
        assert!(text.contains("duc_x_total{a=\"1\",b=\"2\"} 2"), "{text}");
    }

    #[test]
    fn render_is_valid_exposition() {
        let hub = MetricsHub::new();
        hub.counter_add("duc_messages_total", &[], 7);
        hub.set_help("duc_messages_total", "Messages sent.");
        hub.gauge_set("duc_inflight", &[], 3.0);
        hub.observe_seconds("duc_lag_seconds", &[], 0.002);
        hub.observe_seconds("duc_lag_seconds", &[], 250.0);
        let text = hub.render();
        assert!(text.contains("# HELP duc_messages_total Messages sent."));
        assert!(text.contains("# TYPE duc_messages_total counter"));
        assert!(text.contains("duc_messages_total 7"));
        assert!(text.contains("# TYPE duc_inflight gauge"));
        assert!(text.contains("duc_inflight 3"));
        assert!(text.contains("# TYPE duc_lag_seconds histogram"));
        assert!(text.contains("duc_lag_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("duc_lag_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("duc_lag_seconds_count 2"));
        // Families render sorted by name.
        let inflight = text.find("duc_inflight").unwrap();
        let lag = text.find("duc_lag_seconds").unwrap();
        let messages = text.find("duc_messages_total").unwrap();
        assert!(inflight < lag && lag < messages);
    }

    #[test]
    fn histogram_mirror_replaces_cells() {
        let hub = MetricsHub::new();
        hub.mirror_histogram_nanos("duc_lat_seconds", &[], &[1_000_000, 2_000_000]);
        hub.mirror_histogram_nanos("duc_lat_seconds", &[], &[1_000_000, 2_000_000, 3_000_000]);
        let snap = hub.snapshot();
        let (count, sum) = snap.histograms["duc_lat_seconds"];
        assert_eq!(count, 3);
        assert!((sum - 0.006).abs() < 1e-9);
    }

    #[test]
    fn snapshot_keys_match_render() {
        let hub = MetricsHub::new();
        hub.counter_add("duc_y_total", &[("kind", "read")], 4);
        let snap = hub.snapshot();
        assert_eq!(snap.counters["duc_y_total{kind=\"read\"}"], 4);
    }

    #[test]
    fn hub_is_shareable_across_threads() {
        let hub = MetricsHub::new();
        let h2 = hub.clone();
        std::thread::spawn(move || h2.counter_add("duc_t_total", &[], 1))
            .join()
            .unwrap();
        assert_eq!(hub.counter("duc_t_total", &[]), 1);
    }
}
