//! # duc-runtime — execution runtime for the usage-control architecture
//!
//! The reproduction's state machines (driver flows, obligation sweeps,
//! block production) were born on a deterministic discrete-event
//! scheduler. This crate lets the *same* machines run on real time:
//!
//! - [`Clock`] — the timer abstraction both modes implement: `now()`,
//!   one-shot and genesis-anchored periodic timers, cancellation and
//!   re-arm, delivered as payload-carrying [`Wakeup`]s from `wait()`.
//! - [`SimClock`] — deterministic implementation over
//!   [`duc_sim::Scheduler`]; `wait()` hops logical time from due instant
//!   to due instant exactly like the classic `next_event_at` loop.
//! - [`WallClock`] — std-only real-time implementation: a dedicated timer
//!   thread over a `BinaryHeap` + `Condvar::wait_timeout`, skip-missed
//!   periodic ticks, optional time compression, [`WallHandle`] injection
//!   from producer threads, and a drop that joins the thread.
//! - [`drive`] — the clock-generic pacing loop with graceful-shutdown
//!   draining ([`ShutdownSignal`], bounded drain deadline).
//! - [`MetricsHub`] — labelled counters/gauges/histograms shared by both
//!   modes, rendered in Prometheus text format by [`MetricsServer`]
//!   (`GET /metrics` over `std::net::TcpListener`) and snapshotted for
//!   the bench report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod drive;
pub mod http;
pub mod metrics;
pub mod wall;

pub use clock::{Clock, SimClock, TimerId, Wakeup};
pub use drive::{drive, DriveConfig, DriveReport, ShutdownSignal, Tick, Workload};
pub use http::MetricsServer;
pub use metrics::{prom_name, MetricsHub, MetricsSnapshot, BUCKET_BOUNDS_SECONDS};
pub use wall::{WallClock, WallHandle};
