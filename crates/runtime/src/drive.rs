//! The clock-generic drive loop.
//!
//! A [`Workload`] is a state machine with its own internal event queue
//! (the sim world's scheduler + obligation deadlines): it exposes the next
//! instant it needs to run (`next_due`), accepts admitted commands, and is
//! paced forward to the current instant. [`drive`] runs a workload on any
//! [`Clock`] by mirroring `next_due` into a re-armable pace timer — in sim
//! mode this reproduces the classic `next_event_at` hop loop exactly; in
//! wall mode the same code blocks a real thread until each instant
//! arrives, with producer threads injecting admissions through
//! [`crate::WallHandle`]s.
//!
//! Graceful shutdown: a [`ShutdownSignal`] flips the loop into draining
//! mode — new admissions are rejected, in-flight work is paced to
//! completion under a bounded deadline, and the loop reports whether the
//! drain finished clean.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use duc_sim::{SimDuration, SimTime};

use crate::clock::{Clock, TimerId, Wakeup};

/// Timer payload used by [`drive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tick<C> {
    /// Admit one command into the workload.
    Admit(C),
    /// Pace the workload to the current instant (its `next_due` arrived,
    /// or the drain deadline expired).
    Pace,
    /// Flush a metrics snapshot.
    Export,
}

/// Cooperative shutdown flag, shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal(Arc<AtomicBool>);

impl ShutdownSignal {
    /// Creates an un-triggered signal.
    pub fn new() -> Self {
        ShutdownSignal::default()
    }

    /// Requests shutdown (idempotent).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A drivable state machine with an internal logical-time event queue.
pub trait Workload {
    /// Command type admitted into the workload.
    type Cmd;

    /// Admits one command at the current instant.
    fn admit(&mut self, cmd: Self::Cmd);

    /// Paces internal machinery up to `now` (fires due internal events).
    fn pace(&mut self, now: SimTime);

    /// The next instant internal machinery needs to run, if any.
    fn next_due(&mut self) -> Option<SimTime>;

    /// Number of admitted commands not yet finished.
    fn in_flight(&self) -> usize;

    /// Flushes metrics (periodic exports and the final flush).
    fn export(&mut self) {}
}

/// Tuning for [`drive`].
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// Period of the export timer; `None` exports only on exit.
    pub export_every: Option<SimDuration>,
    /// Logical grace period for draining in-flight work after shutdown.
    pub drain_grace: SimDuration,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            export_every: None,
            drain_grace: SimDuration::from_secs(30),
        }
    }
}

/// What happened during a [`drive`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Commands admitted into the workload.
    pub admitted: u64,
    /// Commands rejected because the loop was draining.
    pub rejected: u64,
    /// Total wakeups delivered.
    pub wakeups: u64,
    /// Metric exports flushed (including the final one).
    pub exports: u64,
    /// Logical instant the loop exited.
    pub finished_at: SimTime,
    /// True when the loop exited with nothing in flight (clean drain).
    pub drained: bool,
}

/// Runs `workload` on `clock` until idle (or until a requested shutdown
/// finishes draining). `script` is a set of pre-planned admissions at
/// absolute logical instants; further commands may arrive through
/// wall-mode injection.
pub fn drive<W, C>(
    clock: &mut C,
    workload: &mut W,
    script: Vec<(SimTime, W::Cmd)>,
    shutdown: &ShutdownSignal,
    config: &DriveConfig,
) -> DriveReport
where
    W: Workload,
    C: Clock<Tick<W::Cmd>>,
    W::Cmd: Clone,
{
    let mut report = DriveReport::default();
    let mut admissions_pending = script.len();
    for (at, cmd) in script {
        clock.arm(at, Tick::Admit(cmd));
    }
    let export_timer = config
        .export_every
        .map(|period| clock.arm_periodic(clock.now(), period, Tick::Export));
    // The pace timer mirrors the workload's next internal due instant.
    let mut pace_timer: Option<(TimerId, SimTime)> = None;
    let mut draining = false;
    let mut drain_deadline: Option<(TimerId, SimTime)> = None;

    loop {
        if shutdown.is_requested() && !draining {
            draining = true;
            // Pre-planned admissions are withdrawn; anything already
            // injected still sits in the queue and is rejected on arrival.
            let deadline = clock.now() + config.drain_grace;
            drain_deadline = Some((clock.arm(deadline, Tick::Pace), deadline));
        }

        // Anything already delivered is consumed before an exit is even
        // considered — queued admissions are admitted (or rejected while
        // draining), never silently dropped.
        let delivered = clock.try_wait();
        let Wakeup { id, payload, .. } = match delivered {
            Some(w) => w,
            None => {
                if draining {
                    let expired = drain_deadline.is_some_and(|(_, at)| clock.now() >= at);
                    // A drain waits for live producers too (bounded by the
                    // grace deadline): a handle still held means more
                    // injections may arrive and deserve a rejection.
                    if expired || (workload.in_flight() == 0 && !clock.has_external()) {
                        report.drained = workload.in_flight() == 0;
                        break;
                    }
                } else if workload.in_flight() == 0
                    && admissions_pending == 0
                    && !clock.has_external()
                {
                    // Idle with no planned or external work left. Mirrors
                    // the sim driver's run_until_idle: don't drag the clock
                    // toward far-future periodic timers.
                    report.drained = true;
                    break;
                }

                // Mirror next_due into the pace timer (re-arm on change).
                let due = workload.next_due();
                match (due, pace_timer) {
                    (Some(at), Some((id, current))) if at != current => {
                        pace_timer = if clock.rearm(id, at) {
                            Some((id, at))
                        } else {
                            Some((clock.arm(at, Tick::Pace), at))
                        };
                    }
                    (Some(at), None) => pace_timer = Some((clock.arm(at, Tick::Pace), at)),
                    (None, Some((id, _))) => {
                        clock.cancel(id);
                        pace_timer = None;
                    }
                    _ => {}
                }

                let Some(w) = clock.wait() else {
                    report.drained = workload.in_flight() == 0;
                    break;
                };
                w
            }
        };
        report.wakeups += 1;
        if pace_timer.is_some_and(|(pid, _)| pid == id) {
            pace_timer = None; // consumed by delivery
        }
        match payload {
            Tick::Admit(cmd) => {
                admissions_pending = admissions_pending.saturating_sub(1);
                // Re-check the signal at admission time: the request may
                // have landed while this wakeup was being waited on, before
                // the loop head could flip into draining.
                if draining || shutdown.is_requested() {
                    report.rejected += 1;
                } else {
                    workload.admit(cmd);
                    report.admitted += 1;
                    workload.pace(clock.now());
                }
            }
            Tick::Pace => workload.pace(clock.now()),
            Tick::Export => {
                workload.export();
                report.exports += 1;
            }
        }
    }

    // Account for wakeups delivered after the exit decision (a drain
    // deadline can expire with injections still queued): admissions are
    // rejected, stray pace/export ticks dropped.
    while let Some(w) = clock.try_wait() {
        if matches!(w.payload, Tick::Admit(_)) {
            report.wakeups += 1;
            report.rejected += 1;
        }
    }
    if let Some((id, _)) = pace_timer {
        clock.cancel(id);
    }
    if let Some(id) = export_timer {
        clock.cancel(id);
    }
    if let Some((id, _)) = drain_deadline {
        clock.cancel(id);
    }
    workload.pace(clock.now());
    workload.export();
    report.exports += 1;
    report.finished_at = clock.now();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::wall::WallClock;

    /// Toy workload: each admitted job completes a fixed latency later.
    struct Jobs {
        latency: SimDuration,
        done: Vec<u32>,
        pending: Vec<(SimTime, u32)>,
    }

    impl Jobs {
        fn new(latency_ms: u64) -> Self {
            Jobs {
                latency: SimDuration::from_millis(latency_ms),
                done: Vec::new(),
                pending: Vec::new(),
            }
        }
    }

    impl Workload for Jobs {
        type Cmd = u32;

        fn admit(&mut self, cmd: u32) {
            // Completion is latency after admission; the admission instant
            // is stamped by the pace call that follows every admit.
            self.pending.push((SimTime::MAX, cmd));
        }

        fn pace(&mut self, now: SimTime) {
            for entry in &mut self.pending {
                if entry.0 == SimTime::MAX {
                    entry.0 = now + self.latency;
                }
            }
            let (done, still): (Vec<_>, Vec<_>) =
                self.pending.drain(..).partition(|&(at, _)| at <= now);
            self.done.extend(done.into_iter().map(|(_, c)| c));
            self.pending = still;
        }

        fn next_due(&mut self) -> Option<SimTime> {
            self.pending.iter().map(|&(at, _)| at).min()
        }

        fn in_flight(&self) -> usize {
            self.pending.len()
        }
    }

    fn script() -> Vec<(SimTime, u32)> {
        (0..5u32)
            .map(|i| (SimTime::from_millis(10 * (i as u64 + 1)), i))
            .collect()
    }

    #[test]
    fn sim_drive_completes_all_jobs() {
        let mut clock: SimClock<Tick<u32>> = SimClock::new(duc_sim::Clock::new());
        let mut jobs = Jobs::new(5);
        let shutdown = ShutdownSignal::new();
        let report = drive(
            &mut clock,
            &mut jobs,
            script(),
            &shutdown,
            &DriveConfig::default(),
        );
        assert_eq!(report.admitted, 5);
        assert_eq!(jobs.done, vec![0, 1, 2, 3, 4]);
        assert!(report.drained);
        assert_eq!(report.finished_at, SimTime::from_millis(55));
        assert_eq!(clock.armed(), 0, "all helper timers cleaned up");
    }

    #[test]
    fn wall_drive_matches_sim_outcomes() {
        let mut clock: WallClock<Tick<u32>> = WallClock::with_scale(SimTime::ZERO, 1000);
        let mut jobs = Jobs::new(5);
        let shutdown = ShutdownSignal::new();
        let report = drive(
            &mut clock,
            &mut jobs,
            script(),
            &shutdown,
            &DriveConfig::default(),
        );
        assert_eq!(report.admitted, 5);
        assert_eq!(jobs.done, vec![0, 1, 2, 3, 4]);
        assert!(report.drained);
        assert_eq!(clock.armed(), 0);
    }

    #[test]
    fn pre_requested_shutdown_rejects_all_admissions() {
        let mut clock: SimClock<Tick<u32>> = SimClock::new(duc_sim::Clock::new());
        let mut jobs = Jobs::new(5);
        let shutdown = ShutdownSignal::new();
        shutdown.request();
        let report = drive(
            &mut clock,
            &mut jobs,
            script(),
            &shutdown,
            &DriveConfig::default(),
        );
        assert_eq!(report.admitted, 0);
        assert!(jobs.done.is_empty());
        assert!(report.drained, "nothing in flight: clean drain");
    }

    #[test]
    fn export_timer_flushes_periodically_and_on_exit() {
        let mut clock: SimClock<Tick<u32>> = SimClock::new(duc_sim::Clock::new());
        let mut jobs = Jobs::new(5);
        let shutdown = ShutdownSignal::new();
        let config = DriveConfig {
            export_every: Some(SimDuration::from_millis(20)),
            ..DriveConfig::default()
        };
        let report = drive(&mut clock, &mut jobs, script(), &shutdown, &config);
        assert!(report.exports >= 2, "periodic + final: {}", report.exports);
        assert_eq!(jobs.done.len(), 5);
    }
}
