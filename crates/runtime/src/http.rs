//! Minimal `/metrics` HTTP responder over `std::net::TcpListener`.
//!
//! Deliberately tiny: enough of HTTP/1.1 to satisfy a Prometheus scraper
//! or `curl` — parse the request line, answer `GET /metrics` with the text
//! exposition, everything else with 404. One accept thread handles
//! connections serially (scrapes are rare and renders are cheap);
//! [`MetricsServer::stop`] (also called on drop) closes the loop and joins
//! the thread.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::metrics::MetricsHub;

/// Background HTTP endpoint serving `GET /metrics` from a [`MetricsHub`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving. The bound address is available via
    /// [`MetricsServer::addr`].
    pub fn serve(hub: MetricsHub, bind: &str) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("duc-metrics-http".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if thread_stop.load(Ordering::SeqCst) {
                                return;
                            }
                            let _ = handle_connection(stream, &hub);
                        }
                        Err(_) => return,
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scrape URL, for log lines and docs.
    pub fn url(&self) -> String {
        format!("http://{}/metrics", self.addr)
    }

    /// Stops accepting and joins the accept thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(mut stream: TcpStream, hub: &MetricsHub) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or a small cap — request
    // bodies are irrelevant for a scrape endpoint).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 4096 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            hub.render(),
        ),
        ("GET", "/") => (
            "200 OK",
            "text/plain; charset=utf-8",
            "duc metrics endpoint — scrape /metrics\n".to_string(),
        ),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".into(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let hub = MetricsHub::new();
        hub.counter_add("duc_up_total", &[], 1);
        let server = MetricsServer::serve(hub, "127.0.0.1:0").unwrap();
        let ok = scrape(server.addr(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("duc_up_total 1"));
        let missing = scrape(server.addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = scrape(server.addr(), "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    }

    #[test]
    fn stop_joins_accept_thread() {
        let mut server = MetricsServer::serve(MetricsHub::new(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.stop();
        server.stop(); // idempotent
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_err());
    }

    #[test]
    fn scrape_reflects_live_updates() {
        let hub = MetricsHub::new();
        let server = MetricsServer::serve(hub.clone(), "127.0.0.1:0").unwrap();
        hub.counter_add("duc_live_total", &[], 41);
        hub.counter_add("duc_live_total", &[], 1);
        let text = scrape(server.addr(), "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(text.contains("duc_live_total 42"), "{text}");
    }
}
