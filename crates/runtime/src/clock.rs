//! The clock abstraction shared by both execution modes.
//!
//! A [`Clock`] owns a set of armed timers — one-shot and genesis-anchored
//! periodic — and delivers them as [`Wakeup`]s from [`Clock::wait`]. The
//! deterministic [`SimClock`] wraps the discrete-event
//! [`duc_sim::Scheduler`] and advances logical time to each due instant;
//! the wall-clock implementation ([`crate::WallClock`]) blocks a real
//! thread instead. State machines built on this trait (the paced drive
//! loop, the obligation sweeps) run identically in both modes because they
//! only ever observe logical [`SimTime`] instants.
//!
//! Timers carry an owned payload rather than a callback so the wall-clock
//! implementation can move them across its timer thread.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use duc_sim::{EventId, Scheduler, SimDuration, SimTime};

/// Identifies an armed timer so it can be cancelled or re-armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// A delivered timer firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wakeup<T> {
    /// The timer that fired.
    pub id: TimerId,
    /// The logical instant the timer was due. Equal across execution
    /// modes for the same schedule; equivalence tests compare on this.
    pub due: SimTime,
    /// The logical instant at which the firing was observed. In sim mode
    /// this equals `due`; under a wall clock it may lag behind.
    pub at: SimTime,
    /// The payload supplied when the timer was armed.
    pub payload: T,
}

/// How a timer re-arms after firing.
#[derive(Debug, Clone)]
pub(crate) enum Arming<T> {
    Once(T),
    Periodic {
        anchor: SimTime,
        period: SimDuration,
        payload: T,
    },
}

/// The smallest tick `anchor + k·period` with `tick >= not_before`.
pub(crate) fn tick_at_or_after(
    anchor: SimTime,
    period: SimDuration,
    not_before: SimTime,
) -> SimTime {
    if not_before <= anchor {
        return anchor;
    }
    let elapsed = not_before.saturating_since(anchor).as_nanos();
    let p = period.as_nanos().max(1);
    let k = elapsed / p + u64::from(!elapsed.is_multiple_of(p));
    anchor + period.saturating_mul(k)
}

/// The smallest tick `anchor + k·period` strictly after `after`.
///
/// This is the skip-missed-tick rule: when firings fall behind (a wall
/// clock under load), the next firing is the first grid point still in the
/// future — intermediate ticks are dropped, never replayed in a burst.
pub(crate) fn tick_after(anchor: SimTime, period: SimDuration, after: SimTime) -> SimTime {
    if after < anchor {
        return anchor;
    }
    let elapsed = after.saturating_since(anchor).as_nanos();
    let p = period.as_nanos().max(1);
    anchor + period.saturating_mul(elapsed / p + 1)
}

/// Timer surface shared by the sim and wall execution modes.
///
/// Semantics both implementations uphold (the equivalence suite in
/// `tests/equivalence.rs` checks them against each other):
///
/// - timers never fire logically early: `wakeup.at >= wakeup.due`;
/// - one-shot timers fire exactly once unless cancelled first;
/// - [`Clock::cancel`] suppresses any not-yet-delivered firing, even one
///   already past its due instant;
/// - [`Clock::rearm`] moves a timer without losing or duplicating it;
/// - periodic timers fire on the genesis-anchored grid
///   `anchor + k·period`, skipping missed grid points.
pub trait Clock<T> {
    /// The current logical instant.
    fn now(&self) -> SimTime;

    /// Arms a one-shot timer at absolute logical time `at` (clamped to
    /// `now()`; timers never fire in the past).
    fn arm(&mut self, at: SimTime, payload: T) -> TimerId;

    /// Arms a periodic timer on the grid `anchor + k·period`, first firing
    /// at the earliest grid point `>= max(anchor, now())`.
    fn arm_periodic(&mut self, anchor: SimTime, period: SimDuration, payload: T) -> TimerId
    where
        T: Clone;

    /// Cancels a timer. Returns `true` if an armed timer (or an undelivered
    /// firing) was suppressed; cancelling an unknown or already-delivered
    /// one-shot timer returns `false`.
    fn cancel(&mut self, id: TimerId) -> bool;

    /// Moves an armed timer to fire at `at` instead (re-anchoring a
    /// periodic timer's grid there), keeping its id and payload. Any
    /// undelivered firing of the old schedule is suppressed. Returns
    /// `false` if the timer is no longer armed.
    fn rearm(&mut self, id: TimerId, at: SimTime) -> bool;

    /// Number of currently armed timers.
    fn armed(&self) -> usize;

    /// Whether wakeups may still arrive from outside the armed set (live
    /// injector handles in wall mode). Drive loops keep waiting while this
    /// holds even with no armed timers.
    fn has_external(&self) -> bool {
        false
    }

    /// Delivers the next wakeup, advancing logical time (sim) or blocking
    /// the calling thread (wall) until it is due. Returns `None` when no
    /// timer is armed, nothing is queued, and no external source remains.
    fn wait(&mut self) -> Option<Wakeup<T>>;

    /// Delivers a wakeup that has already fired, without blocking or
    /// advancing logical time — `None` when nothing is queued, even if
    /// timers are still armed. Drive loops drain this on exit so queued
    /// work is accounted (rejected) rather than silently dropped.
    fn try_wait(&mut self) -> Option<Wakeup<T>>;
}

struct SimTimer<T> {
    event: EventId,
    due: SimTime,
    arming: Arming<T>,
}

/// Deterministic [`Clock`] over the discrete-event [`Scheduler`].
///
/// `wait()` hops the shared simulation clock from due instant to due
/// instant via `next_event_at` / `run_until` — byte-identical scheduler
/// behaviour, just surfaced as payloads instead of callbacks. Other
/// simulation components may share the same underlying [`duc_sim::Clock`].
pub struct SimClock<T> {
    sched: Scheduler,
    /// (timer id, due instant) pairs pushed by fired scheduler events,
    /// drained in firing order by `wait()`.
    fired: Rc<RefCell<VecDeque<(u64, SimTime)>>>,
    timers: HashMap<u64, SimTimer<T>>,
    next_id: u64,
}

impl<T> SimClock<T> {
    /// Creates a sim clock over a fresh scheduler on `clock`.
    pub fn new(clock: duc_sim::Clock) -> Self {
        SimClock {
            sched: Scheduler::new(clock),
            fired: Rc::new(RefCell::new(VecDeque::new())),
            timers: HashMap::new(),
            next_id: 0,
        }
    }

    /// The shared simulation clock handle.
    pub fn sim_clock(&self) -> &duc_sim::Clock {
        self.sched.clock()
    }

    fn schedule(&mut self, id: u64, at: SimTime) -> EventId {
        let fired = Rc::clone(&self.fired);
        self.sched
            .schedule_at(at, move |_| fired.borrow_mut().push_back((id, at)))
    }
}

impl<T: Clone> Clock<T> for SimClock<T> {
    fn now(&self) -> SimTime {
        self.sched.clock().now()
    }

    fn arm(&mut self, at: SimTime, payload: T) -> TimerId {
        let at = at.max(self.now());
        let id = self.next_id;
        self.next_id += 1;
        let event = self.schedule(id, at);
        self.timers.insert(
            id,
            SimTimer {
                event,
                due: at,
                arming: Arming::Once(payload),
            },
        );
        TimerId(id)
    }

    fn arm_periodic(&mut self, anchor: SimTime, period: SimDuration, payload: T) -> TimerId
    where
        T: Clone,
    {
        let due = tick_at_or_after(anchor, period, self.now());
        let id = self.next_id;
        self.next_id += 1;
        let event = self.schedule(id, due);
        self.timers.insert(
            id,
            SimTimer {
                event,
                due,
                arming: Arming::Periodic {
                    anchor,
                    period,
                    payload,
                },
            },
        );
        TimerId(id)
    }

    fn cancel(&mut self, id: TimerId) -> bool {
        match self.timers.remove(&id.0) {
            Some(t) => {
                self.sched.cancel(t.event);
                self.fired.borrow_mut().retain(|&(qid, _)| qid != id.0);
                true
            }
            None => false,
        }
    }

    fn rearm(&mut self, id: TimerId, at: SimTime) -> bool {
        let at = at.max(self.now());
        let Some(mut timer) = self.timers.remove(&id.0) else {
            return false;
        };
        self.sched.cancel(timer.event);
        self.fired.borrow_mut().retain(|&(qid, _)| qid != id.0);
        timer.due = at;
        if let Arming::Periodic { anchor, .. } = &mut timer.arming {
            *anchor = at;
        }
        timer.event = self.schedule(id.0, at);
        self.timers.insert(id.0, timer);
        true
    }

    fn armed(&self) -> usize {
        self.timers.len()
    }

    fn wait(&mut self) -> Option<Wakeup<T>> {
        loop {
            if let Some(w) = self.try_wait() {
                return Some(w);
            }
            let at = self.sched.next_event_at()?;
            self.sched.run_until(at);
        }
    }

    fn try_wait(&mut self) -> Option<Wakeup<T>> {
        let (id, due) = self.fired.borrow_mut().pop_front()?;
        let now = self.now();
        let timer = self
            .timers
            .get_mut(&id)
            .expect("fired timers stay armed until delivery");
        match &timer.arming {
            Arming::Once(_) => {
                let timer = self.timers.remove(&id).expect("present above");
                let Arming::Once(payload) = timer.arming else {
                    unreachable!("matched Once above")
                };
                Some(Wakeup {
                    id: TimerId(id),
                    due,
                    at: now,
                    payload,
                })
            }
            Arming::Periodic {
                anchor,
                period,
                payload,
            } => {
                let payload = payload.clone();
                let next = tick_after(*anchor, *period, due.max(now));
                timer.due = next;
                timer.event = {
                    // Inline `schedule` to sidestep the &mut borrow
                    // of the timer entry.
                    let fired = Rc::clone(&self.fired);
                    self.sched
                        .schedule_at(next, move |_| fired.borrow_mut().push_back((id, next)))
                };
                Some(Wakeup {
                    id: TimerId(id),
                    due,
                    at: now,
                    payload,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn tick_grid_math() {
        let p = SimDuration::from_millis(10);
        assert_eq!(tick_at_or_after(ms(100), p, ms(50)), ms(100));
        assert_eq!(tick_at_or_after(ms(100), p, ms(100)), ms(100));
        assert_eq!(tick_at_or_after(ms(100), p, ms(101)), ms(110));
        assert_eq!(tick_at_or_after(ms(100), p, ms(110)), ms(110));
        assert_eq!(tick_after(ms(100), p, ms(50)), ms(100));
        assert_eq!(tick_after(ms(100), p, ms(100)), ms(110));
        assert_eq!(tick_after(ms(100), p, ms(119)), ms(120));
        assert_eq!(tick_after(ms(100), p, ms(120)), ms(130));
    }

    #[test]
    fn one_shot_fires_once_at_due_instant() {
        let mut c: SimClock<&str> = SimClock::new(duc_sim::Clock::new());
        c.arm(ms(5), "a");
        c.arm(ms(3), "b");
        let w = c.wait().unwrap();
        assert_eq!((w.due, w.at, w.payload), (ms(3), ms(3), "b"));
        let w = c.wait().unwrap();
        assert_eq!((w.due, w.at, w.payload), (ms(5), ms(5), "a"));
        assert!(c.wait().is_none());
        assert_eq!(c.armed(), 0);
    }

    #[test]
    fn cancel_suppresses_and_reports() {
        let mut c: SimClock<u32> = SimClock::new(duc_sim::Clock::new());
        let id = c.arm(ms(5), 1);
        assert!(c.cancel(id));
        assert!(!c.cancel(id));
        assert!(c.wait().is_none());
    }

    #[test]
    fn periodic_fires_on_grid_and_rearm_reanchors() {
        let mut c: SimClock<&str> = SimClock::new(duc_sim::Clock::new());
        let id = c.arm_periodic(ms(10), SimDuration::from_millis(10), "tick");
        let dues: Vec<u64> = (0..3).map(|_| c.wait().unwrap().due.as_millis()).collect();
        assert_eq!(dues, vec![10, 20, 30]);
        assert!(c.rearm(id, ms(45)));
        let dues: Vec<u64> = (0..2).map(|_| c.wait().unwrap().due.as_millis()).collect();
        assert_eq!(dues, vec![45, 55]);
        assert!(c.cancel(id));
        assert!(c.wait().is_none());
    }

    #[test]
    fn rearm_moves_one_shot_without_duplicate() {
        let mut c: SimClock<&str> = SimClock::new(duc_sim::Clock::new());
        let id = c.arm(ms(5), "x");
        assert!(c.rearm(id, ms(9)));
        let w = c.wait().unwrap();
        assert_eq!((w.id, w.due), (id, ms(9)));
        assert!(c.wait().is_none());
    }

    #[test]
    fn past_arm_clamps_to_now() {
        let mut c: SimClock<&str> = SimClock::new(duc_sim::Clock::new());
        c.arm(ms(10), "first");
        c.wait().unwrap();
        let id = c.arm(ms(2), "late");
        let w = c.wait().unwrap();
        assert_eq!((w.id, w.due), (id, ms(10)));
    }
}
