//! SimClock ↔ WallClock equivalence.
//!
//! The two [`Clock`] implementations must fire the same logical timer
//! sequence for the same schedule: identical `(due, payload)` pairs in
//! identical order, with only the observation instants (`at`) differing.
//! The suite replays fixed and randomised schedules — arms, periodic
//! grids, cancellations, re-arms — through both clocks and compares the
//! delivered sequences, plus a property test that cancellation/re-arm
//! races against a reference model never lose or duplicate a wakeup.

use duc_runtime::{Clock, SimClock, TimerId, WallClock};
use duc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// One step of a schedule, with times in logical milliseconds. Arm
/// targets refer to the n-th previously armed timer.
#[derive(Debug, Clone)]
enum Op {
    ArmOnce {
        at_ms: u64,
        tag: u32,
    },
    ArmPeriodic {
        anchor_ms: u64,
        period_ms: u64,
        tag: u32,
    },
    Cancel {
        target: usize,
    },
    Rearm {
        target: usize,
        at_ms: u64,
    },
}

/// Applies every op up front, then drains at most `limit` wakeups,
/// returning their `(due, payload)` pairs — `at` is deliberately dropped.
fn run_schedule<C: Clock<u32>>(clock: &mut C, ops: &[Op], limit: usize) -> Vec<(SimTime, u32)> {
    let mut ids: Vec<TimerId> = Vec::new();
    for op in ops {
        match *op {
            Op::ArmOnce { at_ms, tag } => {
                ids.push(clock.arm(SimTime::from_millis(at_ms), tag));
            }
            Op::ArmPeriodic {
                anchor_ms,
                period_ms,
                tag,
            } => {
                ids.push(clock.arm_periodic(
                    SimTime::from_millis(anchor_ms),
                    SimDuration::from_millis(period_ms.max(1)),
                    tag,
                ));
            }
            Op::Cancel { target } => {
                if !ids.is_empty() {
                    clock.cancel(ids[target % ids.len()]);
                }
            }
            Op::Rearm { target, at_ms } => {
                if !ids.is_empty() {
                    clock.rearm(ids[target % ids.len()], SimTime::from_millis(at_ms));
                }
            }
        }
    }
    let mut fired = Vec::new();
    while fired.len() < limit {
        match clock.wait() {
            Some(w) => {
                assert!(
                    w.at >= w.due,
                    "fired logically early: {:?} < {:?}",
                    w.at,
                    w.due
                );
                fired.push((w.due, w.payload));
            }
            None => break,
        }
    }
    fired
}

/// Runs the schedule through both clocks and asserts identical sequences.
///
/// The wall clock is compressed 100×, so the schedules below (tens of
/// logical seconds) replay in hundreds of real milliseconds. All due
/// instants sit at ≥ 1 logical second (10 real ms), giving the arming
/// phase a wide guard band before the first firing can race it, and all
/// periods are ≥ 3 logical seconds so a skip-missed tick would need a
/// 30 ms timer-thread stall.
fn assert_equivalent(ops: &[Op], limit: usize) {
    let mut sim: SimClock<u32> = SimClock::new(duc_sim::Clock::new());
    let sim_fired = run_schedule(&mut sim, ops, limit);
    let mut wall: WallClock<u32> = WallClock::with_scale(SimTime::ZERO, 100);
    let wall_fired = run_schedule(&mut wall, ops, limit);
    assert_eq!(
        sim_fired, wall_fired,
        "clocks fired different logical sequences for {ops:?}"
    );
}

#[test]
fn one_shots_interleave_identically() {
    assert_equivalent(
        &[
            Op::ArmOnce {
                at_ms: 5_000,
                tag: 1,
            },
            Op::ArmOnce {
                at_ms: 2_000,
                tag: 2,
            },
            Op::ArmOnce {
                at_ms: 8_000,
                tag: 3,
            },
            Op::ArmOnce {
                at_ms: 2_000,
                tag: 4,
            }, // tie with tag 2: arming order
        ],
        8,
    );
}

#[test]
fn periodic_grid_and_one_shots_interleave_identically() {
    assert_equivalent(
        &[
            Op::ArmPeriodic {
                anchor_ms: 2_000,
                period_ms: 3_000,
                tag: 10,
            },
            Op::ArmOnce {
                at_ms: 4_000,
                tag: 1,
            },
            Op::ArmOnce {
                at_ms: 9_500,
                tag: 2,
            },
        ],
        6,
    );
}

#[test]
fn cancellation_suppresses_identically() {
    assert_equivalent(
        &[
            Op::ArmOnce {
                at_ms: 3_000,
                tag: 1,
            },
            Op::ArmOnce {
                at_ms: 5_000,
                tag: 2,
            },
            Op::ArmPeriodic {
                anchor_ms: 1_000,
                period_ms: 3_000,
                tag: 3,
            },
            Op::Cancel { target: 0 },
            Op::Cancel { target: 2 },
        ],
        4,
    );
}

#[test]
fn rearm_moves_identically() {
    assert_equivalent(
        &[
            Op::ArmOnce {
                at_ms: 9_000,
                tag: 1,
            },
            Op::ArmOnce {
                at_ms: 4_000,
                tag: 2,
            },
            Op::Rearm {
                target: 0,
                at_ms: 2_000,
            },
            Op::ArmPeriodic {
                anchor_ms: 6_000,
                period_ms: 5_000,
                tag: 3,
            },
            Op::Rearm {
                target: 2,
                at_ms: 7_000,
            },
        ],
        5,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomised one-shot schedules (with cancels and re-arms mixed in)
    /// fire the same logical sequence in both modes. Times land on a
    /// coarse grid (multiples of 500 logical ms from 1s) so ties are
    /// exercised. Periodic timers are excluded here: under real-time
    /// jitter their skip-missed semantics may legitimately drop a grid
    /// point, which the fixed tests above cover with wide guard bands.
    #[test]
    fn random_schedules_are_equivalent(raw in proptest::collection::vec(any::<u32>(), 1..12)) {
        let ops: Vec<Op> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let slot_ms = 1_000 + 500 * u64::from(r % 10);
                match r % 4 {
                    0..=2 => Op::ArmOnce { at_ms: slot_ms, tag: i as u32 },
                    _ => {
                        if r % 8 < 6 {
                            Op::Cancel { target: (r / 16) as usize }
                        } else {
                            Op::Rearm { target: (r / 16) as usize, at_ms: slot_ms }
                        }
                    }
                }
            })
            .collect();
        let mut sim: SimClock<u32> = SimClock::new(duc_sim::Clock::new());
        let sim_fired = run_schedule(&mut sim, &ops, 24);
        let mut wall: WallClock<u32> = WallClock::with_scale(SimTime::ZERO, 100);
        let wall_fired = run_schedule(&mut wall, &ops, 24);
        prop_assert_eq!(sim_fired, wall_fired);
    }

    /// Cancellation / re-arm sequences against a reference model: every
    /// armed one-shot timer fires exactly once unless cancelled, no
    /// matter how it was re-armed in between — nothing lost, nothing
    /// duplicated. Run on the deterministic clock where delivery order is
    /// exact; the wall-clock race variant lives in
    /// `wall_cancel_race_never_duplicates`.
    #[test]
    fn cancel_rearm_never_loses_or_duplicates(raw in proptest::collection::vec(any::<u32>(), 1..40)) {
        let mut clock: SimClock<u32> = SimClock::new(duc_sim::Clock::new());
        let mut ids: Vec<(TimerId, u32)> = Vec::new();
        // Model: tag -> expected firing count (0 after cancel, 1 while armed).
        let mut expected: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for (i, &r) in raw.iter().enumerate() {
            let tag = i as u32;
            match r % 3 {
                0 => {
                    let at = SimTime::from_millis(1 + u64::from(r % 50));
                    ids.push((clock.arm(at, tag), tag));
                    expected.insert(tag, 1);
                }
                1 => {
                    if let Some(&(id, t)) = ids.get((r / 8) as usize % ids.len().max(1)) {
                        if clock.cancel(id) {
                            expected.insert(t, 0);
                        }
                    }
                }
                _ => {
                    if let Some(&(id, _)) = ids.get((r / 8) as usize % ids.len().max(1)) {
                        // Moving a timer must neither lose nor duplicate it.
                        clock.rearm(id, SimTime::from_millis(1 + u64::from(r % 90)));
                    }
                }
            }
        }
        let mut observed: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        while let Some(w) = clock.wait() {
            *observed.entry(w.payload).or_insert(0) += 1;
        }
        expected.retain(|_, &mut n| n > 0);
        prop_assert_eq!(observed, expected);
    }
}

/// Wall-clock race: a producer thread hammers inject while the consumer
/// cancels and re-arms a far-future timer — the timer must fire exactly
/// once per surviving arm, never twice, and cancelled arms never fire.
#[test]
fn wall_cancel_race_never_duplicates() {
    for round in 0..20u32 {
        let mut clock: WallClock<u32> = WallClock::with_scale(SimTime::ZERO, 1000);
        // A timer armed just ahead of "now" so cancellation genuinely
        // races the timer thread's firing.
        let due = clock.now() + SimDuration::from_millis(1 + u64::from(round % 3));
        let id = clock.arm(due, 7);
        if round % 2 == 0 {
            std::thread::yield_now();
        }
        let cancelled = clock.cancel(id);
        let mut fired = 0;
        while let Some(w) = clock.wait() {
            assert_eq!(w.payload, 7);
            fired += 1;
        }
        if cancelled {
            assert_eq!(fired, 0, "cancelled timer fired (round {round})");
        } else {
            assert_eq!(
                fired, 1,
                "uncancelled timer fired {fired} times (round {round})"
            );
        }
    }
}

/// Re-arming a wall timer concurrently with its firing never yields two
/// deliveries: the undelivered firing of the old schedule is suppressed
/// and the moved timer fires once at its new instant.
#[test]
fn wall_rearm_race_fires_exactly_once() {
    for round in 0..20u32 {
        let mut clock: WallClock<u32> = WallClock::with_scale(SimTime::ZERO, 1000);
        let due = clock.now() + SimDuration::from_millis(1);
        let id = clock.arm(due, 9);
        if round % 2 == 0 {
            std::thread::sleep(std::time::Duration::from_micros(u64::from(round) * 300));
        }
        let _moved = clock.rearm(id, clock.now() + SimDuration::from_millis(2));
        let mut fired = 0;
        while let Some(w) = clock.wait() {
            assert_eq!(w.payload, 9);
            fired += 1;
        }
        assert_eq!(fired, 1, "timer fired {fired} times (round {round})");
    }
}
