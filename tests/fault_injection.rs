//! Robustness under injected faults (paper §V-2), exercised against
//! concurrent in-flight processes on the non-blocking driver API: faults
//! are declared as [`FaultPlan`]s and hit requests *mid-flight* — crashed
//! validators, network partitions, lossy windows, crashed endpoints and
//! rogue hosts.

use solid_usage_control::core::chaos;
use solid_usage_control::core::scenario::{self, BOB, MEDICAL_PATH};
use solid_usage_control::oracle::{HopKind, OracleError};
use solid_usage_control::prelude::*;
use solid_usage_control::sim::{FaultPlan, LatencyModel, LinkConfig};
use solid_usage_control::solid::Body;

fn steady_link() -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Constant(SimDuration::from_millis(10)),
        drop_probability: 0.0,
        bandwidth_bps: None,
    }
}

/// One owner, one resource, one device that has subscribed and indexed but
/// not yet fetched a copy.
fn market_world(seed: u64) -> (World, String) {
    let mut world = World::new(WorldConfig {
        seed,
        link: steady_link(),
        validators: 5,
        ..WorldConfig::default()
    });
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device("dev-0", "https://c0.id/me");
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("data".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe("dev-0").unwrap();
    world.resource_indexing("dev-0", &iri).unwrap();
    (world, iri)
}

/// `market_world` plus the first access, so a governed copy exists.
fn one_copy_world(seed: u64) -> (World, String) {
    let (mut world, iri) = market_world(seed);
    world.resource_access("dev-0", &iri).unwrap();
    (world, iri)
}

fn monitoring_request() -> Request {
    Request::PolicyMonitoring {
        webid: BOB.into(),
        path: MEDICAL_PATH.into(),
    }
}

#[test]
fn chain_survives_minority_validator_stalls_mid_round() {
    let (mut world, _) = one_copy_world(1);
    let now = world.clock.now();
    // Validators 0 and 1 stall for 30 s — covering the whole first round.
    world.set_fault_plan(
        FaultPlan::none()
            .validator_stall(0, now, now + SimDuration::from_secs(30))
            .validator_stall(1, now, now + SimDuration::from_secs(30)),
    );
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
        panic!("round must survive 2/5 validators down");
    };
    assert_eq!(outcome.evidence, 1);
    // Recovery: a round after the stall window is no slower than the
    // degraded one.
    world.advance(SimDuration::from_secs(30));
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome2))) = ticket.poll(&mut world) else {
        panic!("recovered round");
    };
    assert_eq!(outcome2.evidence, 1);
    assert!(
        outcome2.duration <= outcome.duration,
        "recovered round ({}) is no slower than the degraded one ({})",
        outcome2.duration,
        outcome.duration
    );
    chaos::check_invariants(&world).expect("invariants");
}

#[test]
fn all_validators_stalled_means_typed_timeout_not_hang() {
    let (mut world, iri) = one_copy_world(2);
    let now = world.clock.now();
    let mut plan = FaultPlan::none();
    for i in 0..5 {
        plan = plan.validator_stall(i, now, SimTime::MAX);
    }
    world.set_fault_plan(plan);
    // The round-opening transaction can never confirm; run_until_idle must
    // still terminate, resolving the ticket with a typed timeout.
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    assert_eq!(world.in_flight(), 0, "no hang with a dead chain");
    let Some(Err(err)) = ticket.poll(&mut world) else {
        panic!("the ticket must resolve with an error");
    };
    assert!(
        matches!(
            err,
            ProcessError::Oracle(OracleError::InclusionTimeout { .. })
        ),
        "{err}"
    );
    assert!(err.is_transient(), "liveness failures are retry-worthy");
    // Liveness returns when the stall plan is lifted.
    world.set_fault_plan(FaultPlan::none());
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
        panic!("back alive");
    };
    assert!(outcome.round >= 1);
    let _ = iri;
}

#[test]
fn partitioned_device_is_reported_unreachable() {
    let (mut world, iri) = one_copy_world(3);
    let dev = world.device("dev-0").endpoint;
    let relay = world.push_in.relay;
    let now = world.clock.now();
    // The partition outlasts the probe's retry budget, so the round skips
    // the device instead of stalling on it.
    world.set_fault_plan(FaultPlan::none().partition(
        dev,
        relay,
        now,
        now + SimDuration::from_secs(300),
    ));
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
        panic!("round proceeds despite the partition");
    };
    assert_eq!(outcome.expected, 1);
    assert_eq!(outcome.evidence, 0, "unreachable device submitted nothing");
    assert_eq!(world.metrics.counter("process.monitoring.unreachable"), 1);
    // The on-chain round stays open: absence of evidence is visible.
    let round = world
        .dex
        .get_round(&world.chain, &iri, outcome.round)
        .unwrap()
        .unwrap();
    assert!(!round.closed);
    // After the window heals, the next round completes.
    world.advance(SimDuration::from_secs(300));
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
        panic!("healed round");
    };
    assert_eq!(outcome.evidence, 1);
}

#[test]
fn lossy_window_is_ridden_out_by_retries() {
    let (mut world, iri) = market_world(4);
    // A 40%-lossy window on the device↔relay uplink needs more than the
    // default three push-in attempts to make failure negligible.
    world.push_in.max_attempts = 12;
    let dev = world.device("dev-0").endpoint;
    let relay = world.push_in.relay;
    let now = world.clock.now();
    world.set_fault_plan(FaultPlan::none().drop_window(
        dev,
        relay,
        now,
        now + SimDuration::from_secs(3600),
        400,
    ));
    // The access (copy registration) and ten monitoring rounds (evidence
    // submissions) all push transactions through the lossy uplink.
    world.resource_access("dev-0", &iri).unwrap();
    for _ in 0..10 {
        let ticket = world.submit(monitoring_request());
        world.run_until_idle();
        let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
            panic!("round rides out the loss");
        };
        assert_eq!(outcome.evidence, 1);
    }
    let (submissions, retries) = world.push_in.stats();
    assert!(submissions >= 11);
    assert!(retries > 0, "a 40%-lossy uplink forces retries");
    // Every push-in retry shows up in the driver's fault metrics (other
    // hops crossing the lossy pair — e.g. monitoring probes — add more).
    assert!(world.metrics.counter("driver.hop.drops") >= retries);
    chaos::check_invariants(&world).expect("invariants");
}

#[test]
fn rogue_host_cannot_hide_from_monitoring() {
    let (mut world, iri) = one_copy_world(5);
    // Tighten the policy to a 7-day retention so there is an obligation
    // the rogue host can violate.
    let mod_ticket = world.submit(Request::PolicyModification {
        webid: BOB.into(),
        path: MEDICAL_PATH.into(),
        rules: vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
        duties: vec![
            Duty::DeleteWithin(SimDuration::from_days(7)),
            Duty::LogAccesses,
        ],
    });
    world.run_until_idle();
    assert!(
        matches!(mod_ticket.poll(&mut world), Some(Ok(_))),
        "tighten"
    );
    world.set_rogue_host("dev-0", true);
    world.advance(SimDuration::from_days(40)); // way past every obligation
    let ticket = world.submit(monitoring_request());
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
        panic!("round");
    };
    assert_eq!(outcome.violators, vec!["dev-0".to_string()]);
    // The evidence on-chain names the violation.
    let round = world
        .dex
        .get_round(&world.chain, &iri, outcome.round)
        .unwrap()
        .unwrap();
    let evidence = &round.violators()[0];
    assert!(!evidence.compliant);
    assert!(evidence.violations.iter().any(|v| v.contains("retention")));
}

#[test]
fn access_suspends_across_pod_crash_window_and_completes() {
    let (mut world, iri) = market_world(6);
    let pod_ep = world.owner(BOB).endpoint;
    let now = world.clock.now();
    // The pod manager is down for 10 s, covering the in-flight request hop
    // of the access: the driver suspends and resumes at recovery.
    world.set_fault_plan(FaultPlan::none().crash(pod_ep, now, now + SimDuration::from_secs(10)));
    let ticket = world.submit(Request::ResourceAccess {
        device: "dev-0".into(),
        resource: iri.clone(),
    });
    world.run_until_idle();
    let Some(Ok(Outcome::Accessed(outcome))) = ticket.poll(&mut world) else {
        panic!("the access must complete after the pod recovers");
    };
    assert!(
        outcome.e2e >= SimDuration::from_secs(10),
        "the crash window shows up in the end-to-end latency: {}",
        outcome.e2e
    );
    assert!(world.metrics.counter("driver.hop.suspended") > 0);
    assert!(world.device("dev-0").tee.has_copy(&iri));
    chaos::check_invariants(&world).expect("invariants");
}

#[test]
fn permanently_crashed_pod_yields_typed_give_up_and_no_copy() {
    let (mut world, iri) = market_world(7);
    let pod_ep = world.owner(BOB).endpoint;
    let now = world.clock.now();
    world.set_fault_plan(FaultPlan::none().crash_forever(pod_ep, now));
    let ticket = world.submit(Request::ResourceAccess {
        device: "dev-0".into(),
        resource: iri.clone(),
    });
    world.run_until_idle();
    assert_eq!(
        world.in_flight(),
        0,
        "a permanent crash may not hang the driver"
    );
    let Some(Err(err)) = ticket.poll(&mut world) else {
        panic!("typed failure expected");
    };
    assert!(
        matches!(
            err,
            ProcessError::Oracle(OracleError::GaveUp {
                hop: HopKind::PodRequest,
                ..
            })
        ),
        "{err}"
    );
    assert!(
        !world.device("dev-0").tee.has_copy(&iri),
        "no copy was minted"
    );
    chaos::check_invariants(&world).expect("invariants");
}

#[test]
fn crashed_device_endpoint_blocks_only_that_device() {
    let mut world = World::new(WorldConfig {
        seed: 8,
        link: steady_link(),
        ..WorldConfig::default()
    });
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device("dev-a", "https://a.id/me");
    world.add_device("dev-b", "https://b.id/me");
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of("data/x");
    world
        .resource_initiation(
            BOB,
            "data/x",
            Body::Text("x".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    for d in ["dev-a", "dev-b"] {
        world.market_subscribe(d).unwrap();
        world.resource_indexing(d, &iri).unwrap();
        world.resource_access(d, &iri).unwrap();
    }
    // dev-a's host crashes for longer than the probe budget.
    let ep = world.device("dev-a").endpoint;
    let now = world.clock.now();
    world.set_fault_plan(FaultPlan::none().crash(ep, now, now + SimDuration::from_secs(300)));
    let ticket = world.submit(Request::PolicyMonitoring {
        webid: BOB.into(),
        path: "data/x".into(),
    });
    world.run_until_idle();
    let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) else {
        panic!("round");
    };
    assert_eq!(outcome.expected, 2);
    assert_eq!(outcome.evidence, 1, "dev-b still answers");
}
