//! Robustness under injected faults (paper §V-2): crashing validators,
//! network partitions, lossy links and rogue hosts.

use solid_usage_control::core::scenario::{self, BOB, MEDICAL_PATH};
use solid_usage_control::oracle::OracleError;
use solid_usage_control::prelude::*;
use solid_usage_control::sim::{LatencyModel, LinkConfig};
use solid_usage_control::solid::Body;

fn one_copy_world(seed: u64, link: LinkConfig) -> (World, String) {
    let mut world = World::new(WorldConfig {
        seed,
        link,
        validators: 5,
        ..WorldConfig::default()
    });
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device("dev-0", "https://c0.id/me");
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("data".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe("dev-0").unwrap();
    world.resource_indexing("dev-0", &iri).unwrap();
    world.resource_access("dev-0", &iri).unwrap();
    (world, iri)
}

fn steady_link() -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Constant(SimDuration::from_millis(10)),
        drop_probability: 0.0,
        bandwidth_bps: None,
    }
}

#[test]
fn chain_survives_minority_validator_crashes() {
    let (mut world, _) = one_copy_world(1, steady_link());
    world.chain.set_validator_down(0, true);
    world.chain.set_validator_down(1, true);
    let t0 = world.clock.now();
    let outcome = world.policy_monitoring(BOB, MEDICAL_PATH).expect("live despite 2/5 down");
    assert_eq!(outcome.evidence, 1);
    // Recovery: later rounds are faster once the validators return.
    world.chain.set_validator_down(0, false);
    world.chain.set_validator_down(1, false);
    let t1 = world.clock.now();
    let outcome2 = world.policy_monitoring(BOB, MEDICAL_PATH).expect("recovered");
    assert_eq!(outcome2.evidence, 1);
    assert!(
        world.clock.now() - t1 <= t1 - t0,
        "recovered round is no slower than the degraded one"
    );
}

#[test]
fn all_validators_down_means_timeout_not_hang() {
    let (mut world, iri) = one_copy_world(2, steady_link());
    for i in 0..5 {
        world.chain.set_validator_down(i, true);
    }
    let err = world.policy_monitoring(BOB, MEDICAL_PATH).unwrap_err();
    assert!(
        matches!(err, ProcessError::Oracle(OracleError::InclusionTimeout { .. })),
        "{err}"
    );
    // Liveness returns with the validators.
    for i in 0..5 {
        world.chain.set_validator_down(i, false);
    }
    // The timed-out transaction is still pending and now confirms, so the
    // round counter advances; a fresh round then runs cleanly.
    let outcome = world.policy_monitoring(BOB, MEDICAL_PATH).expect("back alive");
    assert!(outcome.round >= 1);
    let _ = iri;
}

#[test]
fn partitioned_device_is_reported_unreachable() {
    let (mut world, _iri) = one_copy_world(3, steady_link());
    let dev = world.device("dev-0").endpoint;
    world.net.partition(dev, world.push_in.relay);
    let outcome = world.policy_monitoring(BOB, MEDICAL_PATH).expect("round proceeds");
    assert_eq!(outcome.expected, 1);
    assert_eq!(outcome.evidence, 0, "unreachable device submitted nothing");
    assert_eq!(world.metrics.counter("process.monitoring.unreachable"), 1);
    // The on-chain round stays open: absence of evidence is visible.
    let round = world
        .dex
        .get_round(&world.chain, &_iri, outcome.round)
        .unwrap()
        .unwrap();
    assert!(!round.closed);
    // After healing, the next round completes.
    world.net.heal(dev, world.push_in.relay);
    let outcome = world.policy_monitoring(BOB, MEDICAL_PATH).expect("healed round");
    assert_eq!(outcome.evidence, 1);
}

#[test]
fn lossy_network_is_ridden_out_by_retries() {
    let mut world = World::new(WorldConfig {
        seed: 4,
        link: steady_link(),
        validators: 5,
        ..WorldConfig::default()
    });
    // A 25%-lossy link needs more than the default three attempts to make
    // the failure probability negligible.
    world.push_in.max_attempts = 12;
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device("dev-0", "https://c0.id/me");
    // Loss scoped to the device → oracle-relay uplink, the hop the push-in
    // oracle retries (other transports are assumed reliable, e.g. TCP).
    let dev_ep = world.device("dev-0").endpoint;
    world.net.set_link(
        dev_ep,
        world.push_in.relay,
        LinkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(10)),
            drop_probability: 0.4,
            bandwidth_bps: None,
        },
    );
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("data".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe("dev-0").unwrap();
    world.resource_indexing("dev-0", &iri).unwrap();
    world.resource_access("dev-0", &iri).unwrap();
    // Repeated monitoring rounds keep exercising the lossy uplink (one
    // evidence submission per round).
    for _ in 0..10 {
        let outcome = world.policy_monitoring(BOB, MEDICAL_PATH).expect("round");
        assert_eq!(outcome.evidence, 1);
    }
    let (submissions, retries) = world.push_in.stats();
    assert!(submissions >= 14);
    assert!(retries > 0, "a 40%-lossy uplink forces retries");
}

#[test]
fn rogue_host_cannot_hide_from_monitoring() {
    let (mut world, iri) = one_copy_world(5, steady_link());
    // Tighten the policy to a 7-day retention so there is an obligation
    // the rogue host can violate.
    world
        .policy_modification(
            BOB,
            MEDICAL_PATH,
            vec![Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
            vec![Duty::DeleteWithin(SimDuration::from_days(7)), Duty::LogAccesses],
        )
        .expect("tighten");
    world.set_rogue_host("dev-0", true);
    world.advance(SimDuration::from_days(40)); // way past every obligation
    let outcome = world.policy_monitoring(BOB, MEDICAL_PATH).expect("round");
    assert_eq!(outcome.violators, vec!["dev-0".to_string()]);
    // The evidence on-chain names the violation.
    let round = world
        .dex
        .get_round(&world.chain, &iri, outcome.round)
        .unwrap()
        .unwrap();
    let evidence = &round.violators()[0];
    assert!(!evidence.compliant);
    assert!(evidence.violations.iter().any(|v| v.contains("retention")));
}

#[test]
fn crashed_device_endpoint_blocks_only_that_device() {
    let mut world = World::new(WorldConfig {
        seed: 6,
        link: steady_link(),
        ..WorldConfig::default()
    });
    world.add_owner(BOB, "https://bob.pod/");
    world.add_device("dev-a", "https://a.id/me");
    world.add_device("dev-b", "https://b.id/me");
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of("data/x");
    world
        .resource_initiation(
            BOB,
            "data/x",
            Body::Text("x".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    for d in ["dev-a", "dev-b"] {
        world.market_subscribe(d).unwrap();
        world.resource_indexing(d, &iri).unwrap();
        world.resource_access(d, &iri).unwrap();
    }
    // dev-a's host crashes.
    let ep = world.device("dev-a").endpoint;
    world.net.set_down(ep, true);
    let outcome = world.policy_monitoring(BOB, "data/x").expect("round");
    assert_eq!(outcome.expected, 2);
    assert_eq!(outcome.evidence, 1, "dev-b still answers");
}
