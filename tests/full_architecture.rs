//! Cross-crate integration tests: the whole architecture, end to end.

use solid_usage_control::core::scenario::{self, ALICE, ALICE_DEVICE, BOB, MEDICAL_PATH};
use solid_usage_control::prelude::*;
use solid_usage_control::sim::LinkConfig;
use solid_usage_control::solid::Body;

#[test]
fn scenario_on_wan_links() {
    let mut world = scenario::build_world(WorldConfig {
        link: LinkConfig::wan(),
        seed: 99,
        ..WorldConfig::default()
    });
    let report = scenario::run(&mut world).expect("wan run succeeds");
    assert!(report.bob_copy_deleted);
    assert!(report.alice_still_permitted);
    assert!(report.browsing_monitoring.violators.is_empty());
}

#[test]
fn access_requires_market_certificate() {
    let mut world = scenario::build_world(WorldConfig::default());
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("data".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.resource_indexing(ALICE_DEVICE, &iri).unwrap();
    // Without a subscription the access is refused...
    let err = world.resource_access(ALICE_DEVICE, &iri).unwrap_err();
    assert!(matches!(err, ProcessError::NoCertificate(_)), "{err}");
    // ...and with one it succeeds.
    world.market_subscribe(ALICE_DEVICE).unwrap();
    let outcome = world.resource_access(ALICE_DEVICE, &iri).unwrap();
    assert!(outcome.bytes > 0);
}

#[test]
fn expired_certificate_is_refused_by_pod_manager() {
    let mut world = scenario::build_world(WorldConfig {
        cert_validity: SimDuration::from_days(1),
        ..WorldConfig::default()
    });
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("data".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe(ALICE_DEVICE).unwrap();
    world.resource_indexing(ALICE_DEVICE, &iri).unwrap();
    // Two days later the 1-day certificate has lapsed.
    world.advance(SimDuration::from_days(2));
    let err = world.resource_access(ALICE_DEVICE, &iri).unwrap_err();
    match err {
        ProcessError::Solid { status, .. } => {
            assert_eq!(status, solid_usage_control::solid::Status::PaymentRequired)
        }
        other => panic!("expected 402, got {other}"),
    }
}

#[test]
fn unindexed_access_fails_cleanly() {
    let mut world = scenario::build_world(WorldConfig::default());
    world.pod_initiation(BOB).unwrap();
    let err = world
        .resource_access(ALICE_DEVICE, "https://bob.pod/data/medical.ttl")
        .unwrap_err();
    assert!(matches!(err, ProcessError::NotIndexed { .. }));
    // Indexing an unregistered resource also fails cleanly.
    let err = world
        .resource_indexing(ALICE_DEVICE, "https://bob.pod/ghost")
        .unwrap_err();
    assert!(matches!(err, ProcessError::UnknownResource(_)));
}

#[test]
fn policy_version_continuity_across_updates() {
    let mut world = scenario::build_world(WorldConfig::default());
    world.pod_initiation(ALICE).unwrap();
    let iri = world
        .owner(ALICE)
        .pod_manager
        .pod()
        .iri_of("data/browsing.csv");
    world
        .resource_initiation(
            ALICE,
            "data/browsing.csv",
            Body::Text("rows".into()),
            scenario::browsing_policy(&iri, 30),
            vec![],
        )
        .unwrap();
    world.market_subscribe("bob-workstation").unwrap();
    world.resource_indexing("bob-workstation", &iri).unwrap();
    world.resource_access("bob-workstation", &iri).unwrap();

    for expected_version in 2..=5u64 {
        let outcome = world
            .policy_modification(
                ALICE,
                "data/browsing.csv",
                vec![
                    Rule::permit([Action::Use]).with_constraint(Constraint::MaxRetention(
                        SimDuration::from_days(30 - expected_version),
                    )),
                ],
                vec![Duty::LogAccesses],
            )
            .expect("update");
        assert_eq!(outcome.version, expected_version);
        assert_eq!(
            world.device("bob-workstation").tee.policy_version(&iri),
            Some(expected_version),
            "device tracks the on-chain version"
        );
    }
    let record = world
        .dex
        .lookup_resource(&world.chain, &iri)
        .unwrap()
        .unwrap();
    assert_eq!(record.policy_version, 5);
}

#[test]
fn monitoring_counts_every_copy_holder() {
    let mut world = World::new(WorldConfig::default());
    world.add_owner(BOB, "https://bob.pod/");
    for i in 0..5 {
        world.add_device(format!("dev-{i}"), format!("https://c{i}.id/me"));
    }
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of("data/shared");
    world
        .resource_initiation(
            BOB,
            "data/shared",
            Body::Text("shared".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    for i in 0..5 {
        let d = format!("dev-{i}");
        world.market_subscribe(&d).unwrap();
        world.resource_indexing(&d, &iri).unwrap();
        world.resource_access(&d, &iri).unwrap();
    }
    let outcome = world.policy_monitoring(BOB, "data/shared").unwrap();
    assert_eq!(outcome.expected, 5);
    assert_eq!(outcome.evidence, 5);
    assert!(outcome.violators.is_empty());
    // The round record on-chain is complete and closed.
    let round = world
        .dex
        .get_round(&world.chain, &iri, outcome.round)
        .unwrap()
        .unwrap();
    assert!(round.closed);
    assert!(round.complete());
}

#[test]
fn deleted_copies_leave_the_monitoring_population() {
    let mut world = scenario::build_world(WorldConfig::default());
    let report = scenario::run(&mut world).expect("scenario");
    // After the scenario, Bob's browsing copy is gone: a fresh round over
    // Alice's browsing data expects no devices.
    let outcome = world
        .policy_monitoring(ALICE, scenario::BROWSING_PATH)
        .expect("round");
    assert_eq!(outcome.expected, 0, "deleted copy was unregistered");
    assert!(report.bob_copy_deleted);
}

#[test]
fn gas_accounting_is_conserved() {
    // Fees debited from participants equal fees credited to validators,
    // and the market fee lands at the treasury.
    let mut world = scenario::build_world(WorldConfig::default());
    let _ = scenario::run(&mut world).expect("scenario");
    let ledger_total: u64 = world.chain.gas_ledger().iter().map(|r| r.gas_used).sum();
    let validator_income: u128 = (0..world.chain.validator_count())
        .map(|i| {
            let key = solid_usage_control::crypto::KeyPair::from_seed(
                format!("duc/validator-{i}").as_bytes(),
            );
            world
                .chain
                .balance(&solid_usage_control::blockchain::Address::from_public_key(
                    &key.public(),
                ))
        })
        .sum();
    assert_eq!(
        validator_income,
        ledger_total as u128 * world.chain.gas_price(),
        "every unit of consumed gas was paid to a proposer"
    );
    let treasury = solid_usage_control::blockchain::Address::from_seed(b"duc/market-treasury");
    assert_eq!(
        world.chain.balance(&treasury),
        2 * world.config.market_fee,
        "two subscriptions were sold"
    );
}

#[test]
fn trace_records_process_structure() {
    let mut world = scenario::build_world(WorldConfig {
        trace: true,
        ..WorldConfig::default()
    });
    let _ = scenario::run(&mut world).expect("scenario");
    for kind in [
        "pod.create",
        "pod.registered",
        "resource.registered",
        "resource.indexed",
        "resource.stored",
        "policy.updated",
        "monitoring.round",
    ] {
        assert!(world.trace.contains_kind(kind), "missing trace kind {kind}");
    }
    // Hops are recorded in non-decreasing time order per actor.
    let events = world.trace.events();
    assert!(!events.is_empty());
    for pair in events.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }
}
