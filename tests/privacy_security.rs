//! Privacy and security properties end to end (paper §V-1, §V-2).

use solid_usage_control::contracts::PolicyEnvelope;
use solid_usage_control::core::scenario::{self, BOB, MEDICAL_PATH};
use solid_usage_control::prelude::*;
use solid_usage_control::solid::Body;

#[test]
fn host_cannot_read_sealed_copies() {
    let mut world = scenario::build_world(WorldConfig::default());
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    let secret = "extremely-identifiable-patient-record";
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text(secret.into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe("alice-laptop").unwrap();
    world.resource_indexing("alice-laptop", &iri).unwrap();
    world.resource_access("alice-laptop", &iri).unwrap();

    let device = world.device("alice-laptop");
    let host_bytes = device.tee.storage().host_view(&iri).expect("sealed entry");
    let needle = secret.as_bytes();
    assert!(
        !host_bytes.windows(needle.len()).any(|w| w == needle),
        "plaintext must not appear in the host-visible ciphertext"
    );
}

#[test]
fn ledger_observer_cannot_read_encrypted_policies() {
    let mut world = scenario::build_world(WorldConfig {
        encrypt_policies: true,
        ..WorldConfig::default()
    });
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("data".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    // A ledger observer reads the raw record...
    let record = world
        .dex
        .lookup_resource(&world.chain, &iri)
        .unwrap()
        .unwrap();
    assert!(record.policy.encrypted);
    assert!(record.policy.open_plain().is_err(), "ciphertext only");
    // ...while an authorized TEE (with the data-space key) still indexes it.
    world.market_subscribe("alice-laptop").unwrap();
    let entry = world.resource_indexing("alice-laptop", &iri).unwrap();
    assert_eq!(entry.policy.owner, BOB);
}

#[test]
fn policy_mediated_access_is_the_only_path_to_plaintext() {
    let mut world = scenario::build_world(WorldConfig::default());
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("payload".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe("alice-laptop").unwrap();
    world.resource_indexing("alice-laptop", &iri).unwrap();
    world.resource_access("alice-laptop", &iri).unwrap();

    let now = world.clock.now();
    let device = world.devices.get_mut("alice-laptop").unwrap();
    // Out-of-policy purpose → denied.
    assert!(device
        .tee
        .access(&iri, Action::Read, Purpose::new("marketing"), now)
        .is_err());
    // Prohibited action → denied.
    assert!(device
        .tee
        .access(&iri, Action::Distribute, Purpose::new("medical"), now)
        .is_err());
    // In-policy use → plaintext.
    let bytes = device
        .tee
        .access(&iri, Action::Read, Purpose::new("medical-research"), now)
        .unwrap();
    assert_eq!(bytes, b"payload");
}

#[test]
fn tampering_with_history_is_detected_by_chain_validation() {
    let mut world = scenario::build_world(WorldConfig::default());
    let _ = scenario::run(&mut world).expect("scenario");
    assert_eq!(world.chain.validate_chain(), Ok(()));
    // An auditor replaying the chain catches any post-hoc edit: flip one
    // byte in an old block's first transaction.
    // (Direct mutation stands in for a compromised archive node.)
    let height = 2;
    let block = world.chain.block(height).expect("exists").clone();
    assert!(block.validate().is_ok());
    let mut tampered = block;
    if let Some(tx) = tampered.transactions.first_mut() {
        tx.tx.gas_limit ^= 1;
    }
    assert!(tampered.validate().is_err(), "tamper detected in isolation");
}

#[test]
fn envelope_key_separation() {
    // A policy sealed for one data space cannot be opened with another's
    // key, and corrupted ciphertext fails to decode rather than yielding a
    // wrong policy.
    let policy = UsagePolicy::default_for("urn:r", "urn:o");
    let sealed = PolicyEnvelope::sealed(&policy, [1u8; 32], [2u8; 12]);
    assert!(sealed.open(Some(([3u8; 32], [2u8; 12]))).is_err());
    let mut corrupted = sealed.clone();
    corrupted.bytes[0] ^= 0xFF;
    assert!(corrupted.open(Some(([1u8; 32], [2u8; 12]))).is_err());
    assert_eq!(sealed.open(Some(([1u8; 32], [2u8; 12]))).unwrap(), policy);
}

#[test]
fn denied_attempts_do_not_leak_into_access_counts() {
    let mut world = scenario::build_world(WorldConfig::default());
    world.pod_initiation(BOB).unwrap();
    let iri = world.owner(BOB).pod_manager.pod().iri_of(MEDICAL_PATH);
    world
        .resource_initiation(
            BOB,
            MEDICAL_PATH,
            Body::Text("d".into()),
            scenario::medical_policy(&iri),
            vec![],
        )
        .unwrap();
    world.market_subscribe("alice-laptop").unwrap();
    world.resource_indexing("alice-laptop", &iri).unwrap();
    world.resource_access("alice-laptop", &iri).unwrap();
    let now = world.clock.now();
    let device = world.devices.get_mut("alice-laptop").unwrap();
    for _ in 0..5 {
        let _ = device
            .tee
            .access(&iri, Action::Read, Purpose::new("marketing"), now);
    }
    device
        .tee
        .access(&iri, Action::Read, Purpose::new("medical"), now)
        .unwrap();
    let report = device.tee.report(&iri, now).unwrap();
    assert_eq!(report.accesses, 1, "only the permitted access counts");
    assert!(report.compliant);
}
