//! Property tests on policy invariants.

use proptest::prelude::*;
use solid_usage_control::policy::dsl;
use solid_usage_control::policy::prelude::*;
use solid_usage_control::sim::{SimDuration, SimTime};

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Use),
        Just(Action::Read),
        Just(Action::Modify),
        Just(Action::Delete),
        Just(Action::Distribute),
    ]
}

fn arb_purpose() -> impl Strategy<Value = Purpose> {
    prop_oneof![
        Just(Purpose::new("medical")),
        Just(Purpose::new("medical-research")),
        Just(Purpose::new("academic")),
        Just(Purpose::new("marketing")),
        Just(Purpose::any()),
        "[a-z]{1,8}".prop_map(Purpose::new),
    ]
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (1u64..10_000).prop_map(|s| Constraint::MaxRetention(SimDuration::from_secs(s))),
        (1u64..10_000).prop_map(|s| Constraint::ExpiresAt(SimTime::from_secs(s))),
        proptest::collection::vec(arb_purpose(), 1..4).prop_map(Constraint::Purpose),
        (0u64..100).prop_map(Constraint::MaxAccessCount),
        proptest::collection::vec("[a-z]{1,6}", 1..3).prop_map(|agents| {
            Constraint::AllowedRecipients(agents.into_iter().map(|a| format!("urn:{a}")).collect())
        }),
        (0u64..500, 500u64..1000).prop_map(|(a, b)| Constraint::TimeWindow {
            not_before: SimTime::from_secs(a),
            not_after: SimTime::from_secs(b),
        }),
    ]
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        any::<bool>(),
        proptest::collection::vec(arb_action(), 1..4),
        proptest::collection::vec(arb_constraint(), 0..4),
    )
        .prop_map(|(permit, actions, constraints)| {
            let mut rule = if permit {
                Rule::permit(actions)
            } else {
                Rule::prohibit(actions)
            };
            for c in constraints {
                rule = rule.with_constraint(c);
            }
            rule
        })
}

fn arb_duty() -> impl Strategy<Value = Duty> {
    prop_oneof![
        (1u64..10_000).prop_map(|s| Duty::DeleteWithin(SimDuration::from_secs(s))),
        (1u64..10_000).prop_map(|s| Duty::NotifyOwnerWithin(SimDuration::from_secs(s))),
        Just(Duty::LogAccesses),
    ]
}

fn arb_policy() -> impl Strategy<Value = UsagePolicy> {
    (
        proptest::collection::vec(arb_rule(), 0..5),
        proptest::collection::vec(arb_duty(), 0..3),
        1u64..100,
    )
        .prop_map(|(rules, duties, version)| {
            let mut b = UsagePolicy::builder("urn:duc:policy", "urn:duc:resource", "urn:duc:owner")
                .version(version);
            for r in rules {
                b = b.rule(r);
            }
            for d in duties {
                b = b.duty(d);
            }
            b.build()
        })
}

fn arb_ctx() -> impl Strategy<Value = UsageContext> {
    (
        arb_action(),
        arb_purpose(),
        0u64..2_000,
        0u64..1_000,
        0u64..120,
    )
        .prop_map(|(action, purpose, now, acquired, count)| UsageContext {
            consumer: "urn:consumer".into(),
            action,
            purpose,
            now: SimTime::from_secs(now.max(acquired)),
            acquired_at: SimTime::from_secs(acquired),
            access_count: count,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Serializing any policy to the DSL and parsing it back is lossless.
    #[test]
    fn dsl_roundtrip(policy in arb_policy()) {
        let text = dsl::serialize(&policy);
        let reparsed = dsl::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(reparsed, policy, "\n{}", text);
    }

    /// Codec roundtrip is lossless for arbitrary policies.
    #[test]
    fn codec_roundtrip(policy in arb_policy()) {
        let bytes = solid_usage_control::codec::encode_to_vec(&policy);
        let back: UsagePolicy = solid_usage_control::codec::decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, policy);
    }

    /// Tightening: adding a constraint to every permit rule never turns a
    /// Deny into a Permit (policy evaluation is monotone in constraints).
    #[test]
    fn adding_constraints_never_widens(policy in arb_policy(), ctx in arb_ctx(), extra in arb_constraint()) {
        let engine = PolicyEngine::default();
        let before = engine.evaluate(&policy, &ctx);
        let mut tightened = policy.clone();
        for rule in &mut tightened.rules {
            if rule.effect == Effect::Permit {
                rule.constraints.push(extra.clone());
            }
        }
        let after = engine.evaluate(&tightened, &ctx);
        prop_assert!(
            !(matches!(before, Decision::Deny(_)) && after.is_permit()),
            "tightening turned deny into permit: before={:?} after={:?}",
            before, after
        );
    }

    /// Adding a prohibition never turns a Deny into a Permit either.
    #[test]
    fn adding_prohibition_never_widens(policy in arb_policy(), ctx in arb_ctx(), action in arb_action()) {
        let engine = PolicyEngine::default();
        let before = engine.evaluate(&policy, &ctx);
        let mut tightened = policy.clone();
        tightened.rules.push(Rule::prohibit([action]));
        let after = engine.evaluate(&tightened, &ctx);
        prop_assert!(
            !(matches!(before, Decision::Deny(_)) && after.is_permit()),
            "prohibition widened access"
        );
    }

    /// An empty policy denies everything (default deny).
    #[test]
    fn default_deny(ctx in arb_ctx()) {
        let engine = PolicyEngine::default();
        let empty = UsagePolicy::builder("urn:p", "urn:r", "urn:o").build();
        prop_assert!(!engine.evaluate(&empty, &ctx).is_permit());
    }

    /// The retention bound is always the minimum of the stated bounds.
    #[test]
    fn retention_bound_is_min(policy in arb_policy()) {
        let mut stated: Vec<u64> = Vec::new();
        for rule in &policy.rules {
            for c in &rule.constraints {
                if let Constraint::MaxRetention(d) = c {
                    stated.push(d.as_nanos());
                }
            }
        }
        for d in &policy.duties {
            if let Duty::DeleteWithin(dur) = d {
                stated.push(dur.as_nanos());
            }
        }
        let expected = stated.iter().min().copied().map(SimDuration::from_nanos);
        prop_assert_eq!(policy.retention_bound(), expected);
    }

    /// `amended` always bumps the version by exactly one and preserves
    /// identity fields.
    #[test]
    fn amended_bumps_version(policy in arb_policy()) {
        let amended = policy.amended(vec![], vec![]);
        prop_assert_eq!(amended.version, policy.version + 1);
        prop_assert_eq!(amended.id, policy.id);
        prop_assert_eq!(amended.resource, policy.resource);
        prop_assert_eq!(amended.owner, policy.owner);
    }
}
