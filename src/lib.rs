//! Umbrella crate for the Solid usage-control reproduction.
//!
//! Re-exports every workspace crate under one namespace so that examples
//! and integration tests can `use solid_usage_control::prelude::*`.

pub use duc_blockchain as blockchain;
pub use duc_codec as codec;
pub use duc_contracts as contracts;
pub use duc_core as core;
pub use duc_crypto as crypto;
pub use duc_oracle as oracle;
pub use duc_policy as policy;
pub use duc_rdf as rdf;
pub use duc_runtime as runtime;
pub use duc_sim as sim;
pub use duc_solid as solid;
pub use duc_tee as tee;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use duc_core::prelude::*;
}
