//! Concurrent market: dozens of consumers race through the non-blocking
//! driver API while monitoring rounds run in parallel.
//!
//! Where `quickstart` walks one owner/consumer pair through the six
//! processes sequentially, this example submits a whole market's worth of
//! work at once — `World::submit` returns a `Ticket` immediately, every
//! in-flight process advances hop-by-hop on the simulation scheduler, and
//! `World::run_until_idle` drives them all to completion, interleaved
//! across block boundaries.
//!
//! ```sh
//! cargo run --example concurrent_market
//! cargo run --example concurrent_market -- --wall-clock
//! ```
//!
//! With `--wall-clock` the scripted market runs on the real-time runtime
//! instead: a `WallClock` timer thread paces admissions at their scripted
//! instants (200× compressed), and a Prometheus-style `/metrics` endpoint
//! serves the run's counters on a loopback socket while it executes.

use solid_usage_control::prelude::*;
use solid_usage_control::solid::Body;

const OWNER: &str = "https://owner.id/me";
const DEVICES: usize = 24;

/// Drive the scripted market on the wall-clock runtime with a live
/// `/metrics` endpoint, then print the scrape address and a summary.
fn wall_clock_market() -> Result<(), ProcessError> {
    const SCALE: u64 = 200; // 200 logical seconds ≈ 1 real second
    let (mut world, script) = solid_usage_control::core::market_world(8, 42);
    let hub = MetricsHub::new();
    let server =
        MetricsServer::serve(hub.clone(), "127.0.0.1:0").expect("bind loopback metrics socket");
    println!(
        "wall-clock mode ({SCALE}× compression); scrape {} while it runs",
        server.url()
    );

    let requests = script.len();
    let started = std::time::Instant::now();
    let run = run_scripted(
        &mut world,
        script,
        RuntimeMode::Wall { scale: SCALE },
        Some(hub.clone()),
        &ShutdownSignal::new(),
        &DriveConfig::default(),
    );
    let elapsed = started.elapsed();
    for (_, outcome) in &run.outcomes {
        outcome.as_ref().map_err(|e| e.clone())?;
    }
    println!(
        "{requests} requests → {} outcomes in {:.2} real s ({:.1} req/s), drained: {}",
        run.outcomes.len(),
        elapsed.as_secs_f64(),
        run.report.admitted as f64 / elapsed.as_secs_f64(),
        run.report.drained,
    );
    let scrape = hub.render();
    let families = scrape.lines().filter(|l| l.starts_with("# TYPE ")).count();
    println!(
        "final scrape: {families} metric families, {} bytes",
        scrape.len()
    );
    Ok(())
}

fn main() -> Result<(), ProcessError> {
    if std::env::args().any(|arg| arg == "--wall-clock") {
        return wall_clock_market();
    }
    let mut world = World::new(WorldConfig::default());

    // One data owner, two datasets, two dozen consumer devices.
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..DEVICES {
        world.add_device(format!("device-{i}"), format!("https://consumer-{i}.id/me"));
    }
    world.pod_initiation(OWNER)?;
    let mut resources = Vec::new();
    for (path, days) in [("data/telemetry.csv", 30), ("data/survey.csv", 7)] {
        let iri = world.owner(OWNER).pod_manager.pod().iri_of(path);
        let policy = UsagePolicy::builder(format!("{iri}#policy"), &iri, OWNER)
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(days))),
            )
            .duty(Duty::DeleteWithin(SimDuration::from_days(days)))
            .duty(Duty::LogAccesses)
            .build();
        let resource = world.resource_initiation(
            OWNER,
            path,
            Body::Text("ts,value\n".repeat(512)),
            policy,
            vec![("domain".into(), "iot".into())],
        )?;
        resources.push(resource);
    }

    // Phase 1 — every device subscribes and indexes both resources, all in
    // flight at once.
    let mut setup = Vec::new();
    for i in 0..DEVICES {
        setup.push(world.submit(Request::MarketSubscribe {
            device: format!("device-{i}"),
        }));
        for resource in &resources {
            setup.push(world.submit(Request::ResourceIndexing {
                device: format!("device-{i}"),
                resource: resource.clone(),
            }));
        }
    }
    println!("phase 1: {} requests in flight", world.in_flight());
    world.run_until_idle();
    for ticket in setup {
        ticket.poll(&mut world).expect("completed")?;
    }
    println!(
        "phase 1 done at {} (chain height {})",
        world.clock.now(),
        world.chain.height()
    );

    // Phase 2 — every device fetches both resources while the owner runs a
    // monitoring round per resource, all concurrently.
    let t0 = world.clock.now();
    let mut accesses = Vec::new();
    for i in 0..DEVICES {
        for resource in &resources {
            accesses.push(world.submit(Request::ResourceAccess {
                device: format!("device-{i}"),
                resource: resource.clone(),
            }));
        }
    }
    let rounds: Vec<Ticket> = ["data/telemetry.csv", "data/survey.csv"]
        .into_iter()
        .map(|path| {
            world.submit(Request::PolicyMonitoring {
                webid: OWNER.into(),
                path: path.into(),
            })
        })
        .collect();
    println!("phase 2: {} requests in flight", world.in_flight());
    world.run_until_idle();

    let mut fetched = 0usize;
    for ticket in accesses {
        if let Some(Ok(Outcome::Accessed(outcome))) = ticket.poll(&mut world) {
            fetched += outcome.bytes;
        }
    }
    for ticket in rounds {
        if let Some(Ok(Outcome::Monitored(outcome))) = ticket.poll(&mut world) {
            println!(
                "monitoring round {}: {}/{} evidence submissions, {} violator(s)",
                outcome.round,
                outcome.evidence,
                outcome.expected,
                outcome.violators.len()
            );
        }
    }
    let makespan = world.clock.now() - t0;
    let batch = DEVICES * resources.len();
    println!(
        "phase 2 done: {batch} accesses ({fetched} bytes) + 2 rounds in {makespan} \
         ({:.1} req/s)",
        (batch + 2) as f64 / makespan.as_secs_f64()
    );

    // Tail latency under contention, straight from the metrics registry.
    let h = world.metrics.histogram_mut("process.access.e2e");
    println!("access e2e under contention: {}", h.summary());
    Ok(())
}
