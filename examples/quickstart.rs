//! Quickstart: spin up the architecture and run one owner/consumer pair
//! through all six processes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use solid_usage_control::prelude::*;
use solid_usage_control::solid::Body;

fn main() -> Result<(), ProcessError> {
    // One simulated deployment: 4-validator PoA chain hosting the
    // DistExchange app, oracles, and a deterministic network.
    let mut world = World::new(WorldConfig::default());

    // Participants: Bob owns a pod; Alice consumes from her laptop.
    world.add_owner("https://bob.id/me", "https://bob.pod/");
    world.add_device("alice-laptop", "https://alice.id/me");

    // Process 1 — pod initiation.
    world.pod_initiation("https://bob.id/me")?;
    println!(
        "1. pod registered on-chain (height {})",
        world.chain.height()
    );

    // Process 2 — resource initiation with a usage policy:
    // medical purposes only, delete after 30 days.
    let policy_src = r#"
        policy "https://bob.pod/data/medical.ttl#policy"
            for "https://bob.pod/data/medical.ttl"
            owner "https://bob.id/me" {
            permit use where purpose in [medical] and max-retention 30d;
            prohibit distribute;
            duty delete-within 30d;
            duty log-accesses;
        }
    "#;
    let policy = solid_usage_control::policy::dsl::parse(policy_src)
        .map_err(|e| ProcessError::Policy(e.to_string()))?;
    let resource = world.resource_initiation(
        "https://bob.id/me",
        "data/medical.ttl",
        Body::Text("patient_id,measurement\n42,healthy\n".into()),
        policy,
        vec![("domain".into(), "health".into())],
    )?;
    println!("2. resource indexed: {resource}");

    // Alice pays the market fee and discovers the resource (process 3).
    world.market_subscribe("alice-laptop")?;
    let entry = world.resource_indexing("alice-laptop", &resource)?;
    println!(
        "3. indexed at {} (policy v{})",
        entry.location, entry.policy.version
    );

    // Process 4 — fetch into the TEE's sealed storage.
    let outcome = world.resource_access("alice-laptop", &resource)?;
    println!(
        "4. {} bytes sealed in the TEE ({} end-to-end)",
        outcome.bytes, outcome.e2e
    );

    // Local use is policy-mediated: medical research is fine, marketing
    // is not.
    {
        let device = world.devices.get_mut("alice-laptop").expect("registered");
        let now = world.clock.now();
        assert!(device
            .tee
            .access(
                &resource,
                Action::Read,
                Purpose::new("medical-research"),
                now
            )
            .is_ok());
        let denied = device
            .tee
            .access(&resource, Action::Read, Purpose::new("marketing"), now)
            .unwrap_err();
        println!("   marketing use denied: {denied}");
    }

    // Process 5 — Bob narrows the allowed purpose to academic work.
    let propagation = world.policy_modification(
        "https://bob.id/me",
        "data/medical.ttl",
        vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::Purpose(vec![Purpose::new("academic")]))],
        vec![Duty::LogAccesses],
    )?;
    println!(
        "5. policy v{} propagated to {} device(s) in {}",
        propagation.version, propagation.devices_notified, propagation.e2e
    );

    // Process 6 — Bob audits who is using his data, and how.
    let monitoring = world.policy_monitoring("https://bob.id/me", "data/medical.ttl")?;
    println!(
        "6. monitoring round {}: {}/{} evidence submissions, {} violator(s), {}",
        monitoring.round,
        monitoring.evidence,
        monitoring.expected,
        monitoring.violators.len(),
        monitoring.duration
    );

    println!(
        "\ntotal gas spent: {}",
        world
            .chain
            .gas_ledger()
            .iter()
            .map(|r| r.gas_used)
            .sum::<u64>()
    );
    Ok(())
}
