//! The paper's §II motivating scenario, narrated end to end: Alice and Bob
//! trade datasets on the decentralized market, tighten policies mid-flight,
//! and the TEEs enforce the consequences.
//!
//! ```sh
//! cargo run --example data_market
//! ```

use solid_usage_control::core::scenario::{self, ALICE, BOB, BOB_DEVICE};
use solid_usage_control::prelude::*;

fn main() {
    let mut world = scenario::build_world(WorldConfig {
        trace: true,
        ..WorldConfig::default()
    });

    println!("== The data market scenario (paper §II) ==\n");
    let report = scenario::run(&mut world).expect("fault-free run succeeds");

    println!(
        "Alice retrieved Bob's medical dataset: {} bytes",
        report.alice_got_bytes
    );
    println!(
        "Bob retrieved Alice's browsing dataset: {} bytes",
        report.bob_got_bytes
    );
    println!();
    println!(
        "After Alice tightened retention (30d → 7d), Bob's copy was deleted: {}",
        report.bob_copy_deleted
    );
    println!(
        "After Bob narrowed the purpose to academic, Alice (university hospital) kept access: {}",
        report.alice_still_permitted
    );
    println!();
    println!(
        "Monitoring of Alice's browsing data: round {}, {} evidence, violators: {:?}",
        report.browsing_monitoring.round,
        report.browsing_monitoring.evidence,
        report.browsing_monitoring.violators
    );
    println!(
        "Monitoring of Bob's medical data:  round {}, {} evidence, violators: {:?}",
        report.medical_monitoring.round,
        report.medical_monitoring.evidence,
        report.medical_monitoring.violators
    );
    println!(
        "\nTotal gas spent across the scenario: {}",
        report.total_gas
    );

    // Show the structured trace the architecture recorded.
    println!("\n== Trace (process hops) ==");
    for event in world.trace.events() {
        println!("  {event}");
    }

    // The TEE still refuses out-of-policy use on what remains.
    let now = world.clock.now();
    if let Some(device) = world.devices.get_mut(BOB_DEVICE) {
        let attempt = device.tee.access(
            &report.browsing_iri,
            Action::Read,
            Purpose::new("web-analytics"),
            now,
        );
        println!("\nBob's attempt to reuse the deleted browsing data: {attempt:?}");
        assert!(attempt.is_err(), "the copy is gone");
    }

    // Who paid what (affordability, §V-4).
    println!("\n== Gas by DE App method ==");
    for ((contract, method), (calls, total, mean)) in world.chain.gas_by_method() {
        println!("  {contract:>14} {method:<20} calls={calls:<3} total={total:<9} mean={mean}");
    }

    let _ = (ALICE, BOB); // re-exported identities, used by the assertions above
}
