//! Compliance monitoring at scale, with an injected violator.
//!
//! One owner shares a dataset with many devices; one device's "TEE" is a
//! rogue build that skips the deletion obligation. A monitoring round
//! (paper process 6) catches it: the rogue device either fails attestation
//! (if its code differs) or its own signed evidence reveals the overdue
//! copy.
//!
//! ```sh
//! cargo run --example policy_monitoring
//! ```

use solid_usage_control::prelude::*;
use solid_usage_control::solid::Body;

const OWNER: &str = "https://owner.id/me";
const DEVICES: usize = 8;

fn main() -> Result<(), ProcessError> {
    let mut world = World::new(WorldConfig::default());
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..DEVICES {
        world.add_device(format!("device-{i}"), format!("https://consumer-{i}.id/me"));
    }

    world.pod_initiation(OWNER)?;
    let iri = world.owner(OWNER).pod_manager.pod().iri_of("data/set.csv");
    let policy = UsagePolicy::builder(format!("{iri}#policy"), iri.clone(), OWNER)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7))),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
        .duty(Duty::LogAccesses)
        .build();
    let resource = world.resource_initiation(
        OWNER,
        "data/set.csv",
        Body::Text("row\n".repeat(256)),
        policy,
        vec![],
    )?;

    // Every device subscribes, indexes and fetches a copy.
    for i in 0..DEVICES {
        let device = format!("device-{i}");
        world.market_subscribe(&device)?;
        world.resource_indexing(&device, &resource)?;
        world.resource_access(&device, &resource)?;
    }
    println!("{DEVICES} devices hold governed copies of {resource}");

    // Round 1: everyone is compliant.
    let round1 = world.policy_monitoring(OWNER, "data/set.csv")?;
    println!(
        "round {}: {}/{} evidence, violators: {:?} ({})",
        round1.round, round1.evidence, round1.expected, round1.violators, round1.duration
    );
    assert!(round1.violators.is_empty());

    // Ten days pass. Compliant TEEs delete their copies when their timers
    // fire at the 7-day deadline — except device-3, whose rogue host
    // suppresses the enclave's timer interrupt.
    world.set_rogue_host("device-3", true);
    world.advance(SimDuration::from_days(10));
    let deletions = world.metrics.counter("enforcement.deletions");
    println!("\n10 days later: {deletions} compliant deletions; device-3 suppressed its timer");

    // Round 2: the rogue copy is exposed. The enclave itself cannot lie —
    // its signed self-audit reports the retention violation (the host can
    // only suppress *timers*, not forge evidence, per the TEE trust model).
    let round2 = world.policy_monitoring(OWNER, "data/set.csv")?;
    println!(
        "round {}: {}/{} evidence, violators: {:?}",
        round2.round, round2.evidence, round2.expected, round2.violators
    );
    assert_eq!(round2.violators, vec!["device-3".to_string()]);

    // The owner can also see evidence volume and per-round gas.
    println!(
        "\nevidence bytes shipped: round1={} round2={}",
        round1.evidence_bytes, round2.evidence_bytes
    );
    println!(
        "monitoring gas so far: {}",
        world.metrics.counter("process.monitoring.gas")
    );
    Ok(())
}
