//! Robustness: the architecture under crash faults (paper §V-2).
//!
//! Shows (i) chain liveness while a minority of validators crash — and the
//! stall with a crashed majority-of-slots; (ii) oracle retry riding over a
//! lossy network; (iii) immediate revocation: a policy update that sets the
//! retention to zero erases every outstanding copy on delivery.
//!
//! ```sh
//! cargo run --example revocation_and_faults
//! ```

use solid_usage_control::prelude::*;
use solid_usage_control::sim::{LatencyModel, LinkConfig};
use solid_usage_control::solid::Body;

const OWNER: &str = "https://owner.id/me";

fn main() -> Result<(), ProcessError> {
    // A WAN-ish, 2%-lossy network: oracle retries become visible.
    let mut world = World::new(WorldConfig {
        link: LinkConfig {
            latency: LatencyModel::Exponential {
                base: SimDuration::from_millis(20),
                mean_extra: SimDuration::from_millis(10),
            },
            drop_probability: 0.02,
            bandwidth_bps: Some(10_000_000),
        },
        validators: 5,
        ..WorldConfig::default()
    });
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..4 {
        world.add_device(format!("device-{i}"), format!("https://c{i}.id/me"));
    }

    world.pod_initiation(OWNER)?;
    let policy_src = format!(
        r#"policy "https://owner.pod/data/feed.json#policy"
               for "https://owner.pod/data/feed.json"
               owner "{OWNER}" {{
               permit use where max-retention 30d;
               duty delete-within 30d;
               duty log-accesses;
           }}"#
    );
    let policy = solid_usage_control::policy::dsl::parse(&policy_src)
        .map_err(|e| ProcessError::Policy(e.to_string()))?;
    let resource = world.resource_initiation(
        OWNER,
        "data/feed.json",
        Body::Text("{\"entries\": []}".into()),
        policy,
        vec![],
    )?;
    for i in 0..4 {
        let d = format!("device-{i}");
        world.market_subscribe(&d)?;
        world.resource_indexing(&d, &resource)?;
        world.resource_access(&d, &resource)?;
    }
    println!("4 devices hold copies; network is lossy (2%)");
    let (submissions, retries) = world.push_in.stats();
    println!("push-in oracle so far: {submissions} submissions, {retries} retries\n");

    // --- Crash a minority of validators: the chain stays live, block
    // --- production just skips the dead proposers' slots.
    world.chain.set_validator_down(1, true);
    world.chain.set_validator_down(2, true);
    let t0 = world.clock.now();
    let round = world.policy_monitoring(OWNER, "data/feed.json")?;
    println!(
        "monitoring with 2/5 validators down: round {} finished in {} (slots missed: {})",
        round.round,
        world.clock.now() - t0,
        world.chain.slots_missed()
    );
    world.chain.set_validator_down(1, false);
    world.chain.set_validator_down(2, false);

    // --- Immediate revocation: retention zero. Every copy is erased the
    // --- moment the push-out delivery arrives.
    let propagation = world.policy_modification(
        OWNER,
        "data/feed.json",
        vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::MaxRetention(SimDuration::ZERO))],
        vec![Duty::DeleteWithin(SimDuration::ZERO)],
    )?;
    let deletions = propagation
        .enforcement
        .iter()
        .filter(|(_, a)| {
            matches!(
                a,
                solid_usage_control::tee::EnforcementAction::Deleted { .. }
            )
        })
        .count();
    println!(
        "\nrevocation: policy v{} reached {} devices, {} copies erased, e2e {}",
        propagation.version, propagation.devices_notified, deletions, propagation.e2e
    );
    assert_eq!(deletions, 4, "all copies revoked");
    for i in 0..4 {
        assert!(!world.device(&format!("device-{i}")).tee.has_copy(&resource));
    }

    // --- Partition one device away from the oracle relay: monitoring
    // --- keeps working, the unreachable device is simply reported missing.
    let dev0 = world.device("device-0").endpoint;
    world.net.partition(dev0, world.push_in.relay);
    let round = world.policy_monitoring(OWNER, "data/feed.json")?;
    println!(
        "\nmonitoring after revocation + partition: expected {} devices, {} answered",
        round.expected, round.evidence
    );

    let (submissions, retries) = world.push_in.stats();
    let (delivered, dropped) = world.push_out.stats();
    println!("\noracle totals: push-in {submissions} submissions / {retries} retries; push-out {delivered} delivered / {dropped} dropped");
    Ok(())
}
